//! Input-language genericity: GMDF "could accept all types of system
//! model that follow the MOF specification" (paper §II) — the GDM,
//! abstraction and engine layers must work for *any* metamodel, not just
//! COMDES. This suite debugs a Petri-net-flavoured model that the
//! framework has never seen, and exercises the multi-metamodel registry
//! ("multiple-type and multiple-instance input models").

use gmdf_engine::DebuggerEngine;
use gmdf_gdm::{default_bindings, AbstractionGuide, EdgeRule, EventKind, GdmPattern, ModelEvent};
use gmdf_metamodel::{
    model_to_json, DataType, Metamodel, MetamodelBuilder, MetamodelRegistry, Model, Value,
};
use std::sync::Arc;

/// A minimal Petri-net metamodel: places, transitions, arcs.
fn petri_metamodel() -> Metamodel {
    let mut b = MetamodelBuilder::new("petri");
    b.class("Net")
        .unwrap()
        .attribute("name", DataType::Str, true)
        .unwrap()
        .containment_many("places", "Place")
        .unwrap()
        .containment_many("transitions", "Transition")
        .unwrap()
        .containment_many("arcs", "Arc")
        .unwrap();
    b.class("Place")
        .unwrap()
        .attribute("name", DataType::Str, true)
        .unwrap()
        .attribute_with_default("tokens", DataType::Int, Value::Int(0))
        .unwrap();
    b.class("Transition")
        .unwrap()
        .attribute("name", DataType::Str, true)
        .unwrap();
    b.class("Arc")
        .unwrap()
        .cross_required("from", "Place")
        .unwrap()
        .cross_required("to", "Transition")
        .unwrap();
    b.build().unwrap()
}

fn petri_model(mm: Arc<Metamodel>) -> Model {
    let mut m = Model::new(mm);
    let net = m.create("Net").unwrap();
    m.set_attr(net, "name", "mutex".into()).unwrap();
    let mut places = Vec::new();
    for p in ["idle", "waiting", "critical"] {
        let obj = m.create("Place").unwrap();
        m.set_attr(obj, "name", p.into()).unwrap();
        m.add_child(net, "places", obj).unwrap();
        places.push(obj);
    }
    let mut transitions = Vec::new();
    for t in ["request", "enter"] {
        let obj = m.create("Transition").unwrap();
        m.set_attr(obj, "name", t.into()).unwrap();
        m.add_child(net, "transitions", obj).unwrap();
        transitions.push(obj);
    }
    for (p, t) in [(0usize, 0usize), (1, 1)] {
        let arc = m.create("Arc").unwrap();
        m.add_ref(arc, "from", places[p]).unwrap();
        m.add_ref(arc, "to", transitions[t]).unwrap();
        m.add_child(net, "arcs", arc).unwrap();
    }
    m
}

#[test]
fn foreign_metamodel_flows_through_abstraction_and_engine() {
    let mm = Arc::new(petri_metamodel());
    let model = petri_model(mm.clone());
    assert!(gmdf_metamodel::validate(&model).is_conformant());

    // Abstraction guide on a metamodel the framework has never seen.
    let mut guide = AbstractionGuide::new(mm);
    assert_eq!(guide.element_list(), ["Net", "Place", "Transition", "Arc"]);
    guide.pair("Net", GdmPattern::Rectangle).unwrap();
    guide.pair("Place", GdmPattern::Circle).unwrap();
    guide.pair("Transition", GdmPattern::Diamond).unwrap();
    guide
        .edge_rule(EdgeRule::ByReferences {
            metaclass: "Arc".into(),
            source: "from".into(),
            target: "to".into(),
            label_attr: None,
        })
        .unwrap();
    let gdm = guide.finish().unwrap().derive(&model, "petri debug model");
    assert!(gdm.check().is_empty());
    assert_eq!(gdm.elements.len(), 6); // net + 3 places + 2 transitions
    assert_eq!(gdm.edges.len(), 2);

    // The engine animates it from a (synthetic) command stream: a token
    // game reported as watch-change + state-enter style events.
    let mut gdm = gdm;
    gdm.bindings = default_bindings();
    let mut engine = DebuggerEngine::new(gdm);
    engine.feed(ModelEvent::new(10, EventKind::StateEnter, "mutex").with_to("waiting"));
    assert!(engine.visual()["mutex/waiting"].highlighted);
    engine.feed(ModelEvent::new(20, EventKind::StateEnter, "mutex").with_to("critical"));
    assert!(engine.visual()["mutex/critical"].highlighted);
    assert!(engine.visual()["mutex/waiting"].dimmed);
    let svg = engine.frame_svg();
    assert!(svg.contains("critical"));
}

#[test]
fn registry_hosts_multiple_metamodels_simultaneously() {
    // "Input models may consist of more than one type of model" (§II).
    let mut registry = MetamodelRegistry::new();
    let petri = registry.register(petri_metamodel());
    registry.register(gmdf_comdes::comdes_metamodel());
    assert_eq!(registry.names(), ["comdes", "petri"]);

    // A petri document round-trips through the registry loader…
    let model = petri_model(petri);
    let json = model_to_json(&model).unwrap();
    let loaded = registry.load_model(&json).unwrap();
    assert_eq!(loaded.len(), model.len());

    // …and so does a COMDES export, resolved by its own metamodel name.
    let system = {
        let net = gmdf_comdes::NetworkBuilder::new()
            .output(gmdf_comdes::Port::real("y"))
            .block(
                "c",
                gmdf_comdes::BasicOp::Const(gmdf_comdes::SignalValue::Real(1.0)),
            )
            .connect("c.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let actor = gmdf_comdes::ActorBuilder::new("A", net)
            .output("y", "one")
            .build()
            .unwrap();
        let mut node = gmdf_comdes::NodeSpec::new("n", 1_000_000);
        node.actors.push(actor);
        gmdf_comdes::System::new("tiny").with_node(node)
    };
    let (_, comdes_model) = gmdf_comdes::export_system(&system).unwrap();
    let comdes_json = model_to_json(&comdes_model).unwrap();
    let loaded = registry.load_model(&comdes_json).unwrap();
    assert_eq!(loaded.len(), comdes_model.len());
}

#[test]
fn multiple_instances_of_one_metamodel_coexist() {
    // "complex input models may contain more than one instance of specific
    // input models" (§II): two independent petri models, one guide, two
    // derived debug models driven by interleaved event streams.
    let mm = Arc::new(petri_metamodel());
    let model_a = petri_model(mm.clone());
    let model_b = petri_model(mm.clone());

    let mut guide = AbstractionGuide::new(mm);
    guide.pair("Place", GdmPattern::Circle).unwrap();
    let abstraction = guide.finish().unwrap();

    let gdm_a = {
        let mut g = abstraction.derive(&model_a, "instance A");
        g.bindings = default_bindings();
        g
    };
    let gdm_b = {
        let mut g = abstraction.derive(&model_b, "instance B");
        g.bindings = default_bindings();
        g
    };
    let mut engine_a = DebuggerEngine::new(gdm_a);
    let mut engine_b = DebuggerEngine::new(gdm_b);
    engine_a.feed(ModelEvent::new(1, EventKind::StateEnter, "mutex").with_to("idle"));
    engine_b.feed(ModelEvent::new(2, EventKind::StateEnter, "mutex").with_to("critical"));
    assert!(engine_a.visual()["mutex/idle"].highlighted);
    // Engine A only dimmed `critical` as a sibling; B highlighted its own.
    assert!(!engine_a.visual()["mutex/critical"].highlighted);
    assert!(engine_b.visual()["mutex/critical"].highlighted);
    assert!(!engine_b.visual()["mutex/idle"].highlighted);
}
