//! Experiment T4 as a test suite: detection and classification of both
//! bug classes the paper names — design errors (wrong model) and
//! implementation errors (wrong model transformation).

use gmdf::{comdes_allowed_transitions, ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, Fault, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_engine::{BugClass, Expectation};
use gmdf_target::SimConfig;

fn sequencer(skip_a_phase_in_model: bool) -> System {
    // A four-phase sequencer; the "design error" variant wires Rinse to be
    // skipped in the MODEL (requirements demand it).
    let mut fb = FsmBuilder::new()
        .output(Port::int("phase"))
        .state("Fill", |s| s.entry("phase", Expr::Int(0)))
        .state("Wash", |s| s.entry("phase", Expr::Int(1)))
        .state("Rinse", |s| s.entry("phase", Expr::Int(2)))
        .state("Spin", |s| s.entry("phase", Expr::Int(3)))
        .transition(
            "Fill",
            "Wash",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.2)),
        );
    if skip_a_phase_in_model {
        fb = fb.transition(
            "Wash",
            "Spin",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.2)),
        );
    } else {
        fb = fb
            .transition(
                "Wash",
                "Rinse",
                Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.2)),
            )
            .transition(
                "Rinse",
                "Spin",
                Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.2)),
            );
    }
    let fsm = fb
        .transition(
            "Spin",
            "Fill",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.2)),
        )
        .initial("Fill")
        .build()
        .unwrap();
    let net = NetworkBuilder::new()
        .output(Port::int("phase"))
        .state_machine("cycle", fsm)
        .connect("cycle.phase", "phase")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Washer", net)
        .output("phase", "phase")
        .timing(Timing::periodic(50_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("mcu", 50_000_000);
    node.actors.push(actor);
    System::new("washer").with_node(node)
}

fn requirements() -> Expectation {
    // Requirement: every cycle passes through all four phases in order.
    Expectation::StateSequence {
        fsm_path: "Washer/cycle".into(),
        sequence: vec!["Wash".into(), "Rinse".into(), "Spin".into(), "Fill".into()],
        cyclic: true,
    }
}

fn run(system: System, faults: Vec<Fault>) -> gmdf::DebugSession {
    let mut session = Workflow::from_system(system)
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults,
            },
            SimConfig::default(),
        )
        .unwrap();
    session.engine_mut().add_expectation(requirements());
    for e in comdes_allowed_transitions(session.system()).unwrap() {
        session.engine_mut().add_expectation(e);
    }
    session.run_for(3_000_000_000).unwrap();
    session
}

#[test]
fn clean_build_of_correct_model_has_no_findings() {
    let s = run(sequencer(false), vec![]);
    assert!(s.engine().violations().is_empty());
    let (_, divergence) = s.classify_against_model().unwrap();
    assert!(divergence.is_none());
}

#[test]
fn design_error_detected_and_classified() {
    // The model skips Rinse; the generated code faithfully skips it too.
    let s = run(sequencer(true), vec![]);
    assert!(
        !s.engine().violations().is_empty(),
        "requirement violation expected"
    );
    let (class, divergence) = s.classify_against_model().unwrap();
    assert_eq!(class, BugClass::DesignError);
    assert!(divergence.is_none(), "code matches the (wrong) model");
}

#[test]
fn swapped_transitions_detected_as_implementation_error() {
    let s = run(
        sequencer(false),
        vec![Fault::SwapTransitionTargets {
            block_path: "Washer/cycle".into(),
        }],
    );
    assert!(!s.engine().violations().is_empty());
    let (class, divergence) = s.classify_against_model().unwrap();
    assert_eq!(class, BugClass::ImplementationError);
    assert!(divergence.is_some());
}

#[test]
fn negated_guard_detected_as_implementation_error() {
    let s = run(
        sequencer(false),
        vec![Fault::NegateGuard {
            block_path: "Washer/cycle".into(),
            transition: 1,
        }],
    );
    let (class, _) = s.classify_against_model().unwrap();
    assert_eq!(class, BugClass::ImplementationError);
}

#[test]
fn skipped_entry_actions_change_signal_values() {
    // Entry actions write the phase output; skipping them freezes it at 0.
    let clean = run(sequencer(false), vec![]);
    let faulty = run(
        sequencer(false),
        vec![Fault::SkipEntryActions {
            block_path: "Washer/cycle".into(),
        }],
    );
    let last_phase = |s: &gmdf::DebugSession| {
        s.simulator()
            .read_signal("mcu", "phase")
            .unwrap()
            .as_int()
            .unwrap()
    };
    // Clean run has progressed beyond phase 0 at some point; faulty stays 0.
    assert_eq!(last_phase(&faulty), 0);
    let _ = last_phase(&clean); // clean one is whatever phase it's in
                                // The transitions still FIRE in the faulty build (guards unaffected),
                                // so the stream diverges from the model only in values, not behaviour
                                // — this fault class needs signal monitoring to catch:
    let observed_transitions = faulty.engine().trace().len();
    assert!(observed_transitions > 0);
}

#[test]
fn gain_error_detected_by_signal_range() {
    // Dataflow actor: y = 2x with requirement |y| <= 30 for |x| <= 10.
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("g", BasicOp::Gain { k: 2.0 })
        .connect("x", "g.x")
        .unwrap()
        .connect("g.y", "y")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Amp", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    let system = System::new("amp").with_node(node);

    let mut session = Workflow::from_system(system)
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::full(), // signal writes too
                faults: vec![Fault::GainError {
                    block_path: "Amp/g".into(),
                    factor: 10.0,
                }],
            },
            SimConfig::default(),
        )
        .unwrap();
    session
        .engine_mut()
        .add_expectation(Expectation::SignalRange {
            path_prefix: "Amp/out/y".into(),
            min: -30.0,
            max: 30.0,
        });
    session
        .schedule_signal(0, "in", gmdf_comdes::SignalValue::Real(5.0))
        .unwrap();
    let report = session.run_for(10_000_000).unwrap();
    assert!(report.violations > 0, "5 * 2 * 10 = 100 > 30 must violate");
}
