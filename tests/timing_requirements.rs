//! Response-time requirements through the full debugging pipeline: the
//! `ResponseWithin` monitor over task-boundary commands, and deadline-miss
//! visibility.

use gmdf_suite::prelude::*;

fn loaded_system(blocks: usize, cpu_hz: u64) -> System {
    let mut b = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"));
    let mut prev = "x".to_owned();
    for i in 0..blocks {
        let name = format!("p{i}");
        b = b.block(
            &name,
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.1,
                kd: 0.01,
                lo: -1e9,
                hi: 1e9,
            },
        );
        b = b.connect(&prev, &format!("{name}.sp")).unwrap();
        prev = format!("{name}.u");
    }
    let net = b.connect(&prev, "y").unwrap().build().unwrap();
    let actor = ActorBuilder::new("Ctl", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", cpu_hz);
    node.actors.push(actor);
    System::new("loaded").with_node(node)
}

fn session(system: System) -> DebugSession {
    Workflow::from_system(system)
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::full(), // task boundaries on
                faults: vec![],
            },
            // Response times are measured from frame *delivery* instants,
            // so the debug link must be fast enough that wire time does
            // not dominate (at 115200 baud the fully-instrumented frame
            // stream saturates the line and the measurement reflects UART
            // queueing — itself a realistic observation-channel artifact).
            SimConfig {
                uart_baud: 10_000_000,
                ..SimConfig::default()
            },
        )
        .unwrap()
}

#[test]
fn fast_cpu_meets_the_response_budget() {
    let mut s = session(loaded_system(10, 50_000_000));
    s.engine_mut().add_expectation(Expectation::ResponseWithin {
        task_path: "Ctl".into(),
        max_ns: 500_000,
    });
    let report = s.run_for(20_000_000).unwrap();
    assert!(report.events_fed > 0);
    assert_eq!(report.violations, 0, "{:?}", s.engine().violations());
}

#[test]
fn slow_cpu_violates_the_response_budget() {
    // Same code, 1 MHz clock: each activation takes far longer.
    let mut s = session(loaded_system(10, 1_000_000));
    s.engine_mut().add_expectation(Expectation::ResponseWithin {
        task_path: "Ctl".into(),
        max_ns: 500_000,
    });
    let report = s.run_for(20_000_000).unwrap();
    assert!(
        report.violations > 0,
        "a 1 MHz CPU cannot finish within 0.5 ms: {:?}",
        s.engine().violations()
    );
    let v = &s.engine().violations()[0];
    assert!(v.expectation.contains("response-within"));
}

#[test]
fn deadline_misses_are_visible_in_simulator_events() {
    // Overload hard enough to blow the deadline entirely.
    let system = loaded_system(60, 1_000_000);
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::none(),
            faults: vec![],
        },
    )
    .unwrap();
    let mut sim = Simulator::new(image, SimConfig::default()).unwrap();
    sim.run_until(10_000_000).unwrap();
    let misses = sim
        .events()
        .iter()
        .filter(|e| matches!(e, SimEvent::DeadlineMiss { .. }))
        .count();
    assert!(misses > 0);
}

#[test]
fn response_time_scales_with_clock() {
    let max_response = |hz: u64| -> u64 {
        let system = loaded_system(10, hz);
        let image = compile_system(
            &system,
            &CompileOptions {
                instrument: InstrumentOptions::none(),
                faults: vec![],
            },
        )
        .unwrap();
        let mut sim = Simulator::new(image, SimConfig::default()).unwrap();
        sim.run_until(10_000_000).unwrap();
        sim.events()
            .iter()
            .filter_map(|e| match e {
                SimEvent::Completion { response_ns, .. } => Some(*response_ns),
                _ => None,
            })
            .max()
            .expect("completions")
    };
    let slow = max_response(10_000_000);
    let fast = max_response(100_000_000);
    assert_eq!(
        slow,
        fast * 10,
        "pure-compute response scales inversely with clock"
    );
}
