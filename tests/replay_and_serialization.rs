//! Replay determinism and cross-crate serialization round trips,
//! including property-based tests over generated models.

use gmdf::{ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_engine::{timing_diagram, Replayer};
use gmdf_gdm::DebuggerModel;
use gmdf_metamodel::{model_from_json, model_to_json};
use gmdf_target::SimConfig;
use proptest::prelude::*;

fn ring_system(n_states: usize, dwell_ms: u64) -> System {
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..n_states {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(0)));
    }
    for i in 0..n_states {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % n_states),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_ms as f64 / 1e3)),
        );
    }
    let fsm = fb.initial("S0").build().unwrap();
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("ring_sys").with_node(node)
}

fn debugged_session(system: System) -> gmdf::DebugSession {
    let mut s = Workflow::from_system(system)
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )
        .unwrap();
    s.run_for(100_000_000).unwrap();
    s
}

#[test]
fn replay_reconstructs_the_live_animation_exactly() {
    let s = debugged_session(ring_system(4, 5));
    let gdm = s.engine().gdm().clone();
    let trace = s.engine().trace().clone();
    assert!(trace.len() >= 10, "need a substantial trace");

    let mut replay = Replayer::new(&gdm, &trace);
    while replay.step_forward().is_some() {}
    assert_eq!(replay.visual(), s.engine().visual());
    // Frames identical too.
    assert_eq!(replay.frame_svg(), s.engine().frame_svg());
}

#[test]
fn replay_through_saved_trace_file() {
    let s = debugged_session(ring_system(3, 7));
    let gdm_json = s.engine().gdm().to_json();
    let trace_json = s.engine().trace().to_json();

    // A later session loads both files and replays.
    let gdm = DebuggerModel::from_json(&gdm_json).unwrap();
    let trace = gmdf_engine::ExecutionTrace::from_json(&trace_json).unwrap();
    let mut replay = Replayer::new(&gdm, &trace);
    replay.play_to_time(50_000_000);
    let mid_frame = replay.frame_ascii();
    assert!(mid_frame.contains("S"), "{mid_frame}");

    // Seeking back and forward is deterministic.
    let mut a = Replayer::new(&gdm, &trace);
    a.seek(trace.len() as u64);
    let mut b = Replayer::new(&gdm, &trace);
    while b.step_forward().is_some() {}
    assert_eq!(a.visual(), b.visual());
}

#[test]
fn timing_diagram_covers_every_state_in_the_ring() {
    let s = debugged_session(ring_system(5, 4));
    let d = timing_diagram(s.engine().trace(), "ring");
    let lane = d.lanes.iter().find(|l| l.name == "Ring/ring").unwrap();
    let labels: std::collections::BTreeSet<&str> =
        lane.segments.iter().map(|s| s.label.as_str()).collect();
    assert!(
        labels.len() >= 5,
        "all ring states should appear: {labels:?}"
    );
    // Segments tile the window without overlap.
    for w in lane.segments.windows(2) {
        assert!(w[0].to_ns <= w[1].from_ns);
    }
}

#[test]
fn comdes_export_round_trips_through_json() {
    let system = ring_system(3, 5);
    let (mm, model) = gmdf_comdes::export_system(&system).unwrap();
    let json = model_to_json(&model).unwrap();
    let back = model_from_json(mm, &json).unwrap();
    assert_eq!(back.len(), model.len());
    // The round-tripped model still validates and still derives the same
    // debug model (modulo object identity).
    let report = gmdf_metamodel::validate(&back);
    assert!(report.is_conformant(), "{report}");
    let gdm_a = gmdf::comdes_gdm_default(&model, "x");
    let gdm_b = gmdf::comdes_gdm_default(&back, "x");
    assert_eq!(gdm_a.elements.len(), gdm_b.elements.len());
    assert_eq!(gdm_a.edges.len(), gdm_b.edges.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any ring FSM system: full pipeline runs, behaviour matches the
    /// reference interpreter, replay is lossless.
    #[test]
    fn pipeline_holds_for_generated_ring_systems(
        n_states in 2usize..6,
        dwell_ms in 2u64..12,
    ) {
        let s = debugged_session(ring_system(n_states, dwell_ms));
        // Matches interpreter.
        let reference = s.reference_events().unwrap();
        let observed: Vec<_> = s
            .engine()
            .trace()
            .entries()
            .iter()
            .map(|e| e.event.clone())
            .collect();
        prop_assert!(gmdf_engine::compare_behavior(&observed, &reference).is_none());
        // Replay lossless.
        let gdm = s.engine().gdm().clone();
        let trace = s.engine().trace().clone();
        let mut replay = Replayer::new(&gdm, &trace);
        while replay.step_forward().is_some() {}
        prop_assert_eq!(replay.visual(), s.engine().visual());
    }

    /// GDM JSON round trip is the identity for derived models.
    #[test]
    fn gdm_json_round_trip(n_states in 2usize..7) {
        let wf = Workflow::from_system(ring_system(n_states, 5)).unwrap();
        let gdm = wf.default_abstraction().default_commands().gdm().clone();
        let back = DebuggerModel::from_json(&gdm.to_json()).unwrap();
        prop_assert_eq!(gdm, back);
    }

    /// A full-state checkpoint taken mid-run is lossless: a fresh
    /// session restored from its **JSON round-tripped** image and run
    /// on records exactly the entries the uninterrupted run recorded
    /// past the cut — and the stitched full trace is byte-identical —
    /// over random ring images, cut points, slice partitions, and with
    /// a stimulus still pending (and a breakpoint installed) at the
    /// cut. This is the property O(interval) time travel leans on.
    #[test]
    fn checkpoint_restore_then_run_is_byte_identical(
        n_states in 2usize..6,
        dwell_ms in 1u64..6,
        cut_ns in 3_000_000u64..45_000_000,
        slice in prop_oneof![Just(333_333u64), Just(1_000_000u64), Just(7_777_777u64)],
    ) {
        use gmdf_comdes::SignalValue;
        use gmdf_engine::{ExecutionTrace, MemStore, OffsetMemStore};

        let horizon = 50_000_000u64;
        let build = || {
            Workflow::from_system(ring_system(n_states, dwell_ms))
                .unwrap()
                .default_abstraction()
                .default_commands()
                .connect(
                    ChannelMode::Active,
                    CompileOptions {
                        instrument: InstrumentOptions::behavior(),
                        faults: vec![],
                    },
                    SimConfig::default(),
                )
                .unwrap()
        };

        // Uninterrupted reference, pumped to the cut in ragged slices,
        // with state the checkpoint must capture beyond the simulator:
        // a stimulus scheduled past the cut and a live breakpoint.
        let mut reference = build();
        reference
            .schedule_signal(horizon - 2_000_000, "state_sig", SignalValue::Int(7))
            .unwrap();
        reference
            .engine_mut()
            .add_breakpoint(gmdf_gdm::CommandMatcher::kind(
                gmdf_gdm::EventKind::StateEnter,
            ), false);
        reference.engine_mut().resume();
        while reference.now_ns() < cut_ns {
            reference.run_slice(slice.min(cut_ns - reference.now_ns())).unwrap();
            reference.engine_mut().resume();
        }
        let image = reference.save_state();
        let round_tripped: gmdf::SessionCheckpoint =
            serde_json::from_str(&serde_json::to_string(&image).unwrap()).unwrap();
        while reference.now_ns() < horizon {
            reference.run_slice(slice.min(horizon - reference.now_ns())).unwrap();
            reference.engine_mut().resume();
        }
        let full_entries = reference.engine().trace().entries();
        let full_json = reference.engine().trace().to_json();

        // Restore into a fresh identical session; its store holds only
        // the regenerated suffix, at absolute sequence numbers.
        let base = round_tripped.trace_len();
        let mut replica = build();
        replica.restore_state(&round_tripped).unwrap();
        replica.resume_trace_store(Box::new(OffsetMemStore::new(base)));
        prop_assert_eq!(replica.now_ns(), cut_ns, "clock restored");
        while replica.now_ns() < horizon {
            replica.run_slice(slice.min(horizon - replica.now_ns())).unwrap();
            replica.engine_mut().resume();
        }
        prop_assert_eq!(replica.now_ns(), reference.now_ns());

        let suffix = replica.engine().trace().entries();
        prop_assert_eq!(
            &suffix[..],
            &full_entries[base as usize..],
            "restore-then-run must regenerate exactly the post-cut entries"
        );
        let mut stitched = full_entries[..base as usize].to_vec();
        stitched.extend(suffix);
        prop_assert_eq!(
            ExecutionTrace::with_store(Box::new(MemStore::from_entries(stitched))).to_json(),
            full_json,
            "stitched trace must be byte-identical to the uninterrupted run"
        );
    }
}
