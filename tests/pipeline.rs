//! End-to-end pipeline tests spanning every crate (paper Fig. 2: the
//! three parts of GMDF wired together over both channel types).

use gmdf::{comdes_allowed_transitions, ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System,
    Timing, VAR_TIME_IN_STATE,
};
use gmdf_gdm::EventKind;
use gmdf_target::SimConfig;

fn blinker(period_ms: u64) -> System {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.004)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.004)),
        )
        .build()
        .unwrap();
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(period_ms * 1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("blink").with_node(node)
}

fn session(system: System, channel: ChannelMode) -> gmdf::DebugSession {
    Workflow::from_system(system)
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            channel,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )
        .unwrap()
}

/// Behavioural subsequence (path, to) of a session's trace.
fn behavior(s: &gmdf::DebugSession) -> Vec<(String, String)> {
    s.engine()
        .trace()
        .entries()
        .iter()
        .filter(|e| matches!(e.event.kind, EventKind::StateEnter | EventKind::ModeSwitch))
        .map(|e| (e.event.path.clone(), e.event.to.clone().unwrap_or_default()))
        .collect()
}

#[test]
fn active_and_passive_channels_observe_identical_behavior() {
    let mut active = session(blinker(1), ChannelMode::Active);
    active.run_for(50_000_000).unwrap();
    let mut passive = session(
        blinker(1),
        // Poll fast enough to catch every 4 ms dwell.
        ChannelMode::Passive {
            poll_period_ns: 500_000,
            tck_hz: 20_000_000,
        },
    );
    passive.run_for(50_000_000).unwrap();

    let a = behavior(&active);
    let p = behavior(&passive);
    assert!(!a.is_empty());
    // The passive channel's first poll also reports the initial state;
    // align on the first common element and compare sequences.
    let p_aligned: Vec<_> = p
        .iter()
        .skip_while(|(path, to)| (path.as_str(), to.as_str()) != (a[0].0.as_str(), a[0].1.as_str()))
        .cloned()
        .collect();
    let n = a.len().min(p_aligned.len());
    assert!(
        n >= 4,
        "need several transitions to compare ({a:?} vs {p:?})"
    );
    assert_eq!(&a[..n], &p_aligned[..n]);
}

#[test]
fn observed_behavior_matches_reference_interpreter() {
    let mut s = session(blinker(1), ChannelMode::Active);
    s.run_for(50_000_000).unwrap();
    let reference = s.reference_events().unwrap();
    let observed: Vec<_> = s
        .engine()
        .trace()
        .entries()
        .iter()
        .map(|e| e.event.clone())
        .collect();
    assert!(gmdf_engine::compare_behavior(&observed, &reference).is_none());
}

#[test]
fn multi_node_dataflow_session() {
    // Producer (node A) feeds a hysteresis FSM (node B).
    let producer_net = NetworkBuilder::new()
        .output(Port::real("wave"))
        .block(
            "pulse",
            BasicOp::PulseGen {
                period: 0.02,
                duty: 0.5,
            },
        )
        .block("sel", BasicOp::Select)
        .block("hi", BasicOp::Const(SignalValue::Real(10.0)))
        .block("lo", BasicOp::Const(SignalValue::Real(-10.0)))
        .connect("pulse.q", "sel.sel")
        .unwrap()
        .connect("hi.y", "sel.a")
        .unwrap()
        .connect("lo.y", "sel.b")
        .unwrap()
        .connect("sel.y", "wave")
        .unwrap()
        .build()
        .unwrap();
    let producer = ActorBuilder::new("Gen", producer_net)
        .output("wave", "wave")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let fsm = FsmBuilder::new()
        .input(Port::real("x"))
        .output(Port::boolean("q"))
        .state("Low", |s| s.entry("q", Expr::Bool(false)))
        .state("High", |s| s.entry("q", Expr::Bool(true)))
        .transition("Low", "High", Expr::var("x").gt(Expr::Real(5.0)))
        .transition("High", "Low", Expr::var("x").lt(Expr::Real(-5.0)))
        .build()
        .unwrap();
    let watcher_net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::boolean("q"))
        .state_machine("trig", fsm)
        .connect("x", "trig.x")
        .unwrap()
        .connect("trig.q", "q")
        .unwrap()
        .build()
        .unwrap();
    let watcher = ActorBuilder::new("Trigger", watcher_net)
        .input("x", "wave")
        .output("q", "detect")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut na = NodeSpec::new("gen_node", 50_000_000);
    na.actors.push(producer);
    let mut nb = NodeSpec::new("trig_node", 50_000_000);
    nb.actors.push(watcher);
    let system = System::new("wave_sys").with_node(na).with_node(nb);

    let mut s = session(system, ChannelMode::Active);
    s.run_for(100_000_000).unwrap();
    let b = behavior(&s);
    // The trigger follows the square wave across the node boundary.
    let highs = b.iter().filter(|(_, to)| to == "High").count();
    let lows = b.iter().filter(|(_, to)| to == "Low").count();
    assert!(highs >= 2, "{b:?}");
    assert!(lows >= 2, "{b:?}");
}

#[test]
fn expectations_pass_on_clean_runs_across_channels() {
    for channel in [
        ChannelMode::Active,
        ChannelMode::Passive {
            poll_period_ns: 500_000,
            tck_hz: 20_000_000,
        },
    ] {
        let mut s = session(blinker(1), channel);
        for e in comdes_allowed_transitions(s.system()).unwrap() {
            s.engine_mut().add_expectation(e);
        }
        let report = s.run_for(50_000_000).unwrap();
        assert_eq!(report.violations, 0, "{channel:?}");
        assert!(report.events_fed > 0, "{channel:?}");
    }
}

#[test]
fn gdm_export_is_conformant_metamodel_instance() {
    // The GDM itself reifies as an instance of the Fig. 3 metamodel.
    let wf = Workflow::from_system(blinker(1)).unwrap();
    let gdm = wf.default_abstraction().default_commands().gdm().clone();
    let (_, model) = gmdf_gdm::export_gdm(&gdm).unwrap();
    let report = gmdf_metamodel::validate(&model);
    assert!(report.is_conformant(), "{report}");
    assert!(!model.objects_of_class("GraphicalElement").is_empty());
}

#[test]
fn uninstrumented_active_session_is_silent_passive_is_not() {
    // Active channel with no instrumentation sees nothing…
    let mut silent = session_with_instrument(InstrumentOptions::none(), ChannelMode::Active);
    let r = silent.run_for(50_000_000).unwrap();
    assert_eq!(r.events_fed, 0);
    // …while the passive channel on the same clean image sees everything.
    let mut passive = session_with_instrument(
        InstrumentOptions::none(),
        ChannelMode::Passive {
            poll_period_ns: 500_000,
            tck_hz: 20_000_000,
        },
    );
    let r = passive.run_for(50_000_000).unwrap();
    assert!(r.events_fed > 0);
}

fn session_with_instrument(
    instrument: InstrumentOptions,
    channel: ChannelMode,
) -> gmdf::DebugSession {
    Workflow::from_system(blinker(1))
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            channel,
            CompileOptions {
                instrument,
                faults: vec![],
            },
            SimConfig::default(),
        )
        .unwrap()
}
