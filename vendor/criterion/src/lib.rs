//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking surface the `gmdf-bench` crate uses —
//! groups, parameterized benchmark ids, throughput annotations and the
//! timing loop — with a simple fixed-iteration measurement instead of
//! criterion's statistical engine. `cargo bench --no-run` compiles the
//! benches; running them prints mean wall-clock per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measured-quantity annotation (reported, not otherwise used).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();
        // Aim for ~200 ms of measurement, capped for slow routines.
        let iters =
            (Duration::from_millis(200).as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.last_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { last_ns: 0.0 };
    f(&mut b);
    if b.last_ns >= 1e6 {
        println!("{name:<50} {:>12.3} ms/iter", b.last_ns / 1e6);
    } else {
        println!("{name:<50} {:>12.1} ns/iter", b.last_ns);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates the measured throughput (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }

    /// Runs a single parameterized stand-alone benchmark.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&id.to_string(), |b| f(b, input));
        self
    }
}

/// Re-export for `use criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
