//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking surface the `gmdf-bench` crate uses —
//! groups, parameterized benchmark ids, throughput annotations and the
//! timing loop — with a simple batched-sample measurement instead of
//! criterion's statistical engine. `cargo bench --no-run` compiles the
//! benches; running them prints median wall-clock per iteration.
//!
//! Extensions over the upstream surface (used by the JSON-emitting
//! benches): every completed benchmark is recorded in a process-global
//! registry; [`take_results`] drains it so a custom `main` can persist
//! machine-readable `BENCH_*.json` artifacts. Setting the
//! `GMDF_BENCH_QUICK` environment variable shrinks the measurement
//! window (~40 ms instead of ~200 ms per benchmark) for CI smoke runs.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Measured-quantity annotation (reported, not otherwise used).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One completed benchmark, as recorded in the results registry.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully-qualified benchmark name (`group/id`).
    pub name: String,
    /// Median of the per-batch mean nanoseconds per iteration.
    pub median_ns: f64,
    /// Grand-mean nanoseconds per iteration across all batches.
    pub mean_ns: f64,
}

/// Every benchmark completed by this process, in execution order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains the registry of results recorded so far — for custom bench
/// `main`s that persist machine-readable artifacts after the groups run.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// `true` when the `GMDF_BENCH_QUICK` environment variable is set —
/// CI smoke mode with a shorter measurement window.
pub fn quick_mode() -> bool {
    std::env::var_os("GMDF_BENCH_QUICK").is_some()
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    median_ns: f64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over several batches of iterations and records
    /// the median batch mean — robust to one-off scheduling hiccups.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();
        // Aim for ~200 ms of measurement (~40 ms in quick mode), capped
        // for slow routines.
        let budget = Duration::from_millis(if quick_mode() { 40 } else { 200 });
        let iters = (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64;
        // Split into up to 9 sample batches (odd count → true median).
        let batches = iters.min(9);
        let per_batch = iters / batches;
        let mut samples = Vec::with_capacity(batches as usize);
        let mut total_ns = 0f64;
        for _ in 0..batches {
            let t1 = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            let ns = t1.elapsed().as_nanos() as f64 / per_batch as f64;
            total_ns += ns * per_batch as f64;
            samples.push(ns);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
        self.mean_ns = total_ns / (batches * per_batch) as f64;
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        median_ns: 0.0,
        mean_ns: 0.0,
    };
    f(&mut b);
    if b.median_ns >= 1e6 {
        println!("{name:<50} {:>12.3} ms/iter (median)", b.median_ns / 1e6);
    } else {
        println!("{name:<50} {:>12.1} ns/iter (median)", b.median_ns);
    }
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            name: name.to_owned(),
            median_ns: b.median_ns,
            mean_ns: b.mean_ns,
        });
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates the measured throughput (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }

    /// Runs a single parameterized stand-alone benchmark.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&id.to_string(), |b| f(b, input));
        self
    }
}

/// Re-export for `use criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
