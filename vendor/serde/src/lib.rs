//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched. This shim keeps the public surface the repository actually
//! uses — the `Serialize`/`Deserialize` traits and their derive macros —
//! on top of a small self-describing [`Content`] tree that `serde_json`
//! (the sibling shim) renders to and parses from JSON text.
//!
//! It is intentionally *not* the real serde data model: there are no
//! `Serializer`/`Deserializer` visitors, no zero-copy borrowing, and no
//! format independence beyond the `Content` tree. Round-tripping through
//! the sibling `serde_json` shim is lossless for every type this
//! repository serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A self-describing serialized value — the interchange tree between the
/// derive macros and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key/value map (keys serialize as strings).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in serialized map entries (string keys only).
pub fn content_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find_map(|(k, v)| match k {
        Content::Str(s) if s == key => Some(v),
        _ => None,
    })
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// An error with a free-form message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// A "missing field" error.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `content`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the tree shape does not match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range"))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range"))),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if let Ok(v) = i64::try_from(*self) {
            Content::I64(v)
        } else {
            Content::U64(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::I64(v) => {
                u64::try_from(*v).map_err(|_| DeError::custom(format!("{v} out of range")))
            }
            Content::U64(v) => Ok(*v),
            other => Err(DeError::custom(format!("expected integer, got {other:?}"))),
        }
    }
}

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        if let Ok(v) = u64::try_from(*self) {
            v.to_content()
        } else {
            Content::Str(self.to_string())
        }
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => s.parse().map_err(|_| DeError::custom("bad u128")),
            other => u64::from_content(other).map(u128::from),
        }
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = c.as_map().ok_or_else(|| DeError::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = k
                    .as_str()
                    .ok_or_else(|| DeError::custom("expected string key"))?
                    .to_owned();
                Ok((key, V::from_content(v)?))
            })
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = c.as_map().ok_or_else(|| DeError::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = k
                    .as_str()
                    .ok_or_else(|| DeError::custom("expected string key"))?
                    .to_owned();
                Ok((key, V::from_content(v)?))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::custom("expected tuple"))?;
                Ok(($(
                    $t::from_content(
                        s.get($n).ok_or_else(|| DeError::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )+};
}

tuple_impl!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}
