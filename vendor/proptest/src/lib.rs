//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this repository's property
//! tests use — [`Strategy`] with `prop_map` / `prop_filter` /
//! `prop_flat_map` / `boxed`, `any::<T>()`, numeric range strategies,
//! `collection::vec`, `option::of`, `sample::Index`, `Just`,
//! `prop_oneof!`, and the `proptest!` test macro — on a deterministic
//! xorshift RNG. There is no shrinking: failures report the failing
//! values via the panic message of the underlying `assert!`.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a seed (zero is remapped).
    pub fn seeded(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a string — used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, up to a retry cap).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: ToString,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.to_string(),
            pred,
        }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Object-safe strategy view.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies — the engine of `prop_oneof!`.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() and Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`Arbitrary`].
#[derive(Debug, Clone)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes (no NaN/inf: most
        // callers want comparable values; use an explicit range strategy
        // when specific bounds matter).
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

macro_rules! arb_tuple {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )+};
}

arb_tuple!((A), (A, B), (A, B, C), (A, B, C, D));

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple / Vec composition of strategies
// ---------------------------------------------------------------------------

macro_rules! strat_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

strat_tuple!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Simplified regex string strategy: supports `[a-z]`-style classes with
/// an optional `{m,n}` / `{n}` repetition; anything else is taken
/// literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '[' {
                // Character class.
                let mut class = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            class.push(c);
                        }
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ]
                        // Optional repetition.
                let (mut lo, mut hi) = (1usize, 1usize);
                if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    if let Some((a, b)) = spec.split_once(',') {
                        lo = a.trim().parse().unwrap_or(0);
                        hi = b.trim().parse().unwrap_or(lo);
                    } else {
                        lo = spec.trim().parse().unwrap_or(1);
                        hi = lo;
                    }
                    i = close + 1;
                }
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    if !class.is_empty() {
                        out.push(class[rng.below(class.len() as u64) as usize]);
                    }
                }
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// collection / option / sample
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — vectors with sizes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option` values (≈50 % `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A random index into collections of any length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Maps onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property assertion (no shrinking — plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Property-test harness: each `fn` runs `cases` times over freshly
/// generated inputs from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::seeded($crate::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)),
                ));
                for __case in 0..__cfg.cases {
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}
