//! Offline stand-in for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without `syn`/`quote`.
//!
//! The macro hand-parses the item token stream (structs and enums without
//! generics — the only shapes this repository serializes) and emits the
//! trait impls as formatted source text parsed back into a `TokenStream`.
//! Supported `#[serde(...)]` field attributes: `skip`, `default`, and
//! `skip_serializing_if = "path"` — the subset the repository uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// A minimal item model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String, // empty for tuple fields
    attrs: FieldAttrs,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Extracts serde attributes from one `#[...]` group, if it is one.
fn serde_attrs_of(group: &TokenTree, attrs: &mut FieldAttrs) {
    let TokenTree::Group(g) = group else { return };
    let mut it = g.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = it.next() else {
        return;
    };
    let toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "skip" | "skip_deserializing" => attrs.skip = true,
                    "default" => attrs.default = true,
                    "skip_serializing_if" => {
                        // skip_serializing_if = "Path::to::fn"
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (toks.get(i + 1), toks.get(i + 2))
                        {
                            if eq.as_char() == '=' {
                                let raw = lit.to_string();
                                let path = raw.trim_matches('"').to_owned();
                                attrs.skip_serializing_if = Some(path);
                                i += 2;
                            }
                        }
                    }
                    other => panic!("unsupported serde attribute `{other}`"),
                }
            }
            TokenTree::Punct(_) => {}
            other => panic!("unsupported serde attribute token `{other}`"),
        }
        i += 1;
    }
}

/// Consumes leading `#[...]` attributes, collecting serde ones.
fn take_attrs(toks: &[TokenTree], mut i: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs::default();
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), g @ TokenTree::Group(_)) if p.as_char() == '#' => {
                serde_attrs_of(g, &mut attrs);
                i += 2;
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Consumes an optional visibility modifier (`pub`, `pub(crate)`, …).
fn take_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips a type expression: everything until a top-level `,` (or the end).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, attrs) = take_attrs(&toks, i);
        let j = take_vis(&toks, j);
        let Some(TokenTree::Ident(name)) = toks.get(j) else {
            break;
        };
        let name = name.to_string();
        // Expect `:` then the type.
        let mut k = j + 1;
        match toks.get(k) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => k += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        k = skip_type(&toks, k);
        fields.push(Field { name, attrs });
        // Skip the separating comma.
        if let Some(TokenTree::Punct(p)) = toks.get(k) {
            if p.as_char() == ',' {
                k += 1;
            }
        }
        i = k;
    }
    fields
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, attrs) = take_attrs(&toks, i);
        let j = take_vis(&toks, j);
        if j >= toks.len() {
            break;
        }
        let k = skip_type(&toks, j);
        fields.push(Field {
            name: String::new(),
            attrs,
        });
        i = k;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _attrs) = take_attrs(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(j) else {
            break;
        };
        let name = name.to_string();
        let mut k = j + 1;
        let shape = match toks.get(k) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                k += 1;
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                k += 1;
                Shape::Tuple(parse_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant `= expr` (none in this repo) and
        // the separating comma.
        while k < toks.len() {
            if let TokenTree::Punct(p) = &toks[k] {
                if p.as_char() == ',' {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
        variants.push(Variant { name, shape });
        i = k;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = take_attrs(&toks, 0);
    i = take_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the serde shim ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let variants = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_named_ser(fields: &[Field], access: &str, out: &mut String) {
    out.push_str("let mut __m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let push = format!(
            "__m.push((::serde::Content::Str(\"{n}\".to_owned()), \
             ::serde::Serialize::to_content({access}{n})));\n",
            n = f.name,
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!(
                "if !{pred}({access}{n}) {{ {push} }}\n",
                n = f.name
            ));
        } else {
            out.push_str(&push);
        }
    }
}

fn gen_named_de(fields: &[Field], entries: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name
            ));
        } else if f.attrs.default || f.attrs.skip_serializing_if.is_some() {
            out.push_str(&format!(
                "{n}: match ::serde::content_get({entries}, \"{n}\") {{\n\
                     Some(v) => ::serde::Deserialize::from_content(v)?,\n\
                     None => ::std::default::Default::default(),\n\
                 }},\n",
                n = f.name,
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_content(\
                     ::serde::content_get({entries}, \"{n}\")\
                     .ok_or_else(|| ::serde::DeError::missing(\"{n}\"))?,\
                 )?,\n",
                n = f.name,
            ));
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Map(Vec::new())".to_owned(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_content(&self.0)".to_owned()
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let mut b = String::from("{\n");
                    gen_named_ser(fields, "&self.", &mut b);
                    b.push_str("::serde::Content::Map(__m)\n}");
                    b
                }
            };
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_owned()),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_content(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(\"{vn}\".to_owned()), {inner})]),\n",
                            binds = binders.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut body = String::new();
                        gen_named_ser(fields, "", &mut body);
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{body}\
                                 ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(\"{vn}\".to_owned()), \
                                 ::serde::Content::Map(__m))])\n}}\n",
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_content(\
                                 __s.get({i}).ok_or_else(|| \
                                 ::serde::DeError::custom(\"tuple struct too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __s = __c.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected sequence for {name}\"))?;\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits = gen_named_de(fields, "__e");
                    format!(
                        "let __e = __c.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected map for {name}\"))?;\n\
                         Ok({name} {{\n{inits}}})"
                    )
                }
            };
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) \
                         -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_content(__v)?)),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let items: Vec<String> = (0..fields.len())
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_content(\
                                     __s.get({i}).ok_or_else(|| \
                                     ::serde::DeError::custom(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __s = __v.as_seq().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected sequence\"))?;\n\
                                 return Ok({name}::{vn}({}));\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits = gen_named_de(fields, "__f");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __f = __v.as_map().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected map\"))?;\n\
                                 return Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         if let Some(__tag) = __c.as_str() {{\n\
                             match __tag {{\n{unit_arms}\
                                 _ => return Err(::serde::DeError::custom(format!(\
                                     \"unknown variant `{{__tag}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         let __e = __c.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected variant map for {name}\"))?;\n\
                         if let Some((__k, __v)) = __e.first() {{\n\
                             if let Some(__tag) = __k.as_str() {{\n\
                                 match __tag {{\n{tagged_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::custom(\"no matching variant of {name}\"))\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
