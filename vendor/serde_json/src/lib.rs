//! Offline stand-in for `serde_json`: JSON text ↔ the shim `serde`'s
//! [`Content`] tree.
//!
//! Covers the API surface this repository uses: [`to_string`],
//! [`to_string_pretty`], [`write_to_string`] (append into a caller-owned
//! buffer, for allocation-free steady-state encoding), and [`from_str`].
//! Finite floats round-trip
//! bit-exactly (shortest-representation printing + correctly rounded
//! parsing); non-finite floats serialize as `null`, matching real
//! serde_json.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization / parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON value (alias for the serde shim's content tree).
pub type Value = Content;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the types this repository serializes; the `Result`
/// mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Appends the compact JSON serialization of `value` to `out` without
/// allocating a fresh string — the buffer-reuse form of [`to_string`]
/// (a hot encode loop keeps one buffer warm instead of growing a new
/// allocation per message). Infallible for the types this repository
/// serializes, like [`to_string`].
pub fn write_to_string<T: Serialize + ?Sized>(value: &T, out: &mut String) {
    write_content(&value.to_content(), None, 0, out);
}

/// Serializes `value` to a pretty-printed JSON string.
///
/// # Errors
///
/// Never fails for the types this repository serializes.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // and is always a valid JSON number for finite values.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_content(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_content(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                match k {
                    Content::Str(s) => write_escaped(s, out),
                    other => {
                        // Non-string keys stringify (serde_json would error;
                        // nothing in this repo hits the path).
                        let mut ks = String::new();
                        write_content(other, None, 0, &mut ks);
                        write_escaped(&ks, out);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{word}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => return Err(Error::new(format!("expected , or ], got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => return Err(Error::new(format!("expected , or }}, got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&-42i64).unwrap(), "-42");
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        let v = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\tе".to_owned();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<i64>> = vec![Some(1), None, Some(-3)];
        assert_eq!(
            from_str::<Vec<Option<i64>>>(&to_string(&v).unwrap()).unwrap(),
            v
        );
        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_owned(), vec![1u32, 2]);
        let json = to_string_pretty(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<u32>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn write_to_string_appends_and_matches_to_string() {
        let v: Vec<u32> = vec![1, 2, 3];
        let mut buf = String::from("prefix:");
        write_to_string(&v, &mut buf);
        assert_eq!(buf, format!("prefix:{}", to_string(&v).unwrap()));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<i64>>("[1, 2").is_err());
        assert!(from_str::<i64>("1 2").is_err());
    }
}
