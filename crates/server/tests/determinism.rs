//! The determinism contract: the scheduler decides *when* a session
//! advances, never *what* it observes. The same system pumped
//! (a) in one big synchronous `run_for`, (b) in many small server
//! slices, and (c) on a contended multi-worker server among noisy
//! sibling sessions must record **byte-identical**
//! `ExecutionTrace::to_json` output.

mod common;

use common::{active_session, blinker_system, ring_system};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig};
use std::time::Duration;

/// Target horizon every variant runs to (20 ms).
const HORIZON_NS: u64 = 20_000_000;
/// Generous wall-clock allowance for scheduler completion.
const WAIT: Duration = Duration::from_secs(60);

/// Variant (a): the synchronous ground truth.
fn one_shot_trace() -> String {
    let mut session = active_session(blinker_system("det", 0.002, 1_000_000));
    session.run_for(HORIZON_NS).unwrap();
    session.engine().trace().to_json()
}

#[test]
fn sliced_server_run_matches_one_big_run_for() {
    let reference = one_shot_trace();
    // Variant (b): a single worker pumping deliberately small slices —
    // 80 scheduling turns for the same horizon, with UART frames
    // regularly straddling slice boundaries.
    let server = DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("det", 0.002, 1_000_000)));
    handle.run_for(HORIZON_NS).unwrap();
    handle.wait_idle(WAIT).unwrap();
    let snapshot = handle.snapshot(WAIT).unwrap();
    assert_eq!(snapshot.now_ns, HORIZON_NS);
    assert_eq!(snapshot.trace_json.as_deref(), Some(reference.as_str()));
}

#[test]
fn contended_multi_worker_run_matches_one_big_run_for() {
    let reference = one_shot_trace();
    // Variant (c): 4 workers, the probe session among 16 noisy siblings
    // generating heavy event traffic on every shard.
    let server = DebugServer::start(ServerConfig {
        workers: 4,
        slice_ns: 500_000,
        ..ServerConfig::default()
    });
    let probe = server.add_session(active_session(blinker_system("det", 0.002, 1_000_000)));
    let siblings: Vec<_> = (0..16)
        .map(|i| {
            let system = ring_system(
                &format!("noise{i}"),
                3 + i % 5,
                0.001 + 0.0005 * (i % 4) as f64,
                500_000 + 100_000 * (i % 3) as u64,
            );
            server.add_session(active_session(system))
        })
        .collect();
    assert_eq!(server.session_count(), 17);
    assert_eq!(server.worker_count(), 4);
    // Kick everything off before waiting on anyone, so the probe shares
    // its worker pool with live traffic the whole way.
    for sibling in &siblings {
        sibling.run_for(HORIZON_NS).unwrap();
    }
    probe.run_for(HORIZON_NS).unwrap();
    probe.wait_idle(WAIT).unwrap();
    for sibling in &siblings {
        sibling.wait_idle(WAIT).unwrap();
    }
    let snapshot = probe.snapshot(WAIT).unwrap();
    assert_eq!(snapshot.trace_json.as_deref(), Some(reference.as_str()));
    // The siblings really did produce traffic (contention was real).
    for sibling in &siblings {
        let s = sibling.stats(WAIT).unwrap();
        assert!(s.trace_len > 0, "sibling {} recorded nothing", s.session);
        assert_eq!(s.now_ns, HORIZON_NS);
    }
}

#[test]
fn broadcast_trace_deltas_reassemble_the_exact_trace() {
    let reference = one_shot_trace();
    let server = DebugServer::start(ServerConfig {
        workers: 2,
        slice_ns: 333_333, // not a divisor of anything interesting
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("det", 0.002, 1_000_000)));
    let events = handle.subscribe();
    handle.run_for(HORIZON_NS).unwrap();
    handle.wait_idle(WAIT).unwrap();
    // Reassemble the trace purely from broadcast deltas.
    let mut entries = Vec::new();
    for event in events.try_iter() {
        if let EngineEvent::TraceDelta { entries: delta, .. } = event {
            entries.extend(delta);
        }
    }
    // Dense, gap-free sequence numbers: nothing dropped, nothing
    // duplicated, nothing reordered.
    for (i, entry) in entries.iter().enumerate() {
        assert_eq!(entry.seq, i as u64);
    }
    let snapshot = handle.snapshot(WAIT).unwrap();
    assert_eq!(snapshot.trace_len, entries.len());
    assert_eq!(snapshot.trace_json.as_deref(), Some(reference.as_str()));
}

#[test]
fn two_identical_server_runs_are_byte_identical() {
    let run = || {
        let server = DebugServer::start(ServerConfig {
            workers: 3,
            slice_ns: 777_777,
            ..ServerConfig::default()
        });
        let handle = server.add_session(active_session(blinker_system("det", 0.002, 1_000_000)));
        handle.run_for(HORIZON_NS).unwrap();
        handle.wait_idle(WAIT).unwrap();
        handle.snapshot(WAIT).unwrap().trace_json.unwrap()
    };
    assert_eq!(run(), run());
}
