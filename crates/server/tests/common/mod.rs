//! Shared builders for the server test suites: small COMDES systems and
//! fully wired debug sessions.
// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_target::SimConfig;

/// A two-state blinker dwelling `dwell_s` seconds per state.
pub fn blinker_system(name: &str, dwell_s: f64, period_ns: u64) -> System {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        )
        .build()
        .expect("blinker fsm");
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")
        .expect("endpoint")
        .build()
        .expect("blinker net");
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .expect("blinker actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new(name).with_node(node)
}

/// A ring state machine with `n_states` states — a noisier workload for
/// sibling sessions.
pub fn ring_system(name: &str, n_states: usize, dwell_s: f64, period_ns: u64) -> System {
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..n_states {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
    }
    for i in 0..n_states {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % n_states),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        );
    }
    let fsm = fb.initial("S0").build().expect("ring fsm");
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .expect("endpoint")
        .build()
        .expect("ring net");
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .expect("ring actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new(name).with_node(node)
}

/// Wires `system` into an active-channel session with behavior-level
/// instrumentation — the standard subject for determinism checks.
pub fn active_session(system: System) -> DebugSession {
    Workflow::from_system(system)
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )
        .expect("session boots")
}
