//! Ground-truth tests for the fleet observability layer.
//!
//! Metrics are only worth shipping if they are *true*: every counter in
//! a [`MetricsSnapshot`] must equal a quantity independently recoverable
//! from the run itself. These suites pin that down:
//!
//! * a property test runs random system images under random slice
//!   partitions and checks each session's counters against the trace
//!   (events fed == entries recorded, violations == per-entry sum,
//!   store appends == entries appended);
//! * a wire test fetches the snapshot over TCP and asserts it equals
//!   the in-process read-out **exactly** (after stripping wall-clock
//!   fields, which cannot be equal across two instants);
//! * a quarantine test corrupts a durable session and checks the
//!   restore failure surfaces over the wire, reason included;
//! * a lag test checks cumulative subscriber drops reach both the
//!   [`SessionSnapshot`] and the metrics row, and agree.
//!
//! [`MetricsSnapshot`]: gmdf_server::MetricsSnapshot
//! [`SessionSnapshot`]: gmdf_server::SessionSnapshot

mod common;

use common::{active_session, blinker_system, ring_system};
use gmdf::{ChannelMode, SessionSpec, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_engine::TraceEntry;
use gmdf_server::{
    DebugServer, HealthState, PersistConfig, ServerConfig, SessionHandle, WireClient, WireServer,
};
use gmdf_target::SimConfig;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

fn tmp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!(
        "gmdf-metrics-{tag}-{}-{n}-{nanos}",
        std::process::id()
    ))
}

fn spec_of(system: gmdf_comdes::System) -> SessionSpec {
    Workflow::from_system(system)
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .into_spec(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )
}

/// Pages the whole trace out through the replay API — the independent
/// record the counters are checked against.
fn full_trace(handle: &SessionHandle) -> Vec<TraceEntry> {
    let mut out = Vec::new();
    let mut from = 0u64;
    loop {
        let page = handle.replay_from(from, 0, WAIT).expect("replay page");
        from = page.first_seq + page.entries.len() as u64;
        let complete = page.complete;
        out.extend(page.entries);
        if complete {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the image and however the horizon is partitioned into
    /// run budgets, the snapshot's counters equal the quantities
    /// recoverable from the recorded trace itself.
    #[test]
    fn counters_match_trace_ground_truth(
        workers in 1usize..4,
        slice_ns in 200_000u64..2_000_000,
        ring_states in 2usize..6,
        splits in proptest::collection::vec(500_000u64..6_000_000, 2..10),
    ) {
        let server = DebugServer::start(ServerConfig {
            workers,
            slice_ns,
            ..ServerConfig::default()
        });
        let blinker =
            server.add_session(active_session(blinker_system("mx-blink", 0.002, 1_000_000)));
        let ring = server.add_session(active_session(ring_system(
            "mx-ring",
            ring_states,
            0.001,
            500_000,
        )));
        for dt in &splits {
            blinker.run_for(*dt).unwrap();
            ring.run_for(*dt).unwrap();
        }
        blinker.wait_idle(WAIT).unwrap();
        ring.wait_idle(WAIT).unwrap();

        // Snapshot first: the replay reads below bump the store's read
        // counters, and the append counters must already be settled.
        let snapshot = server.metrics_snapshot();
        prop_assert_eq!(snapshot.fleet.sessions, 2);
        prop_assert_eq!(snapshot.fleet.workers, workers as u64);
        let mut total_entries = 0u64;
        for handle in [&blinker, &ring] {
            let row = snapshot
                .sessions
                .iter()
                .find(|s| s.session == handle.id())
                .expect("session row");
            let trace = full_trace(handle);
            // Every fed model event records exactly one trace entry.
            prop_assert_eq!(row.events_fed, trace.len() as u64);
            prop_assert_eq!(row.trace_len, trace.len() as u64);
            // The violation counter equals the per-entry sum.
            let violations: u64 = trace.iter().map(|e| e.violations.len() as u64).sum();
            prop_assert_eq!(row.violations, violations);
            prop_assert_eq!(row.state, HealthState::Parked);
            prop_assert_eq!(row.remaining_ns, 0);
            total_entries += trace.len() as u64;
        }
        prop_assert_eq!(snapshot.fleet.events_fed, total_entries);
        // One store append per recorded entry, fleet-wide.
        prop_assert_eq!(snapshot.fleet.store_appends, total_entries);
        prop_assert_eq!(snapshot.fleet.store_append_ns.count, total_entries);
        // Shard breakdowns sum to the merged fleet totals.
        let shard_slices: u64 = snapshot.fleet.shards.iter().map(|s| s.slices).sum();
        prop_assert_eq!(snapshot.fleet.slices, shard_slices);
        prop_assert_eq!(snapshot.fleet.slice_wall_ns.count, shard_slices);
        prop_assert_eq!(snapshot.fleet.events_per_slice.count, shard_slices);
        prop_assert_eq!(snapshot.fleet.events_per_slice.sum, total_entries);
        // Idle fleet: nothing queued anywhere.
        prop_assert_eq!(snapshot.fleet.mailbox_depth, 0);
        prop_assert_eq!(snapshot.fleet.subscriber_depth, 0);
        prop_assert_eq!(snapshot.fleet.lagged_drops, 0);
    }
}

/// The acceptance check for wire-exported telemetry: a remote client's
/// [`WireClient::metrics`] equals the in-process
/// [`DebugServer::metrics_snapshot`] *exactly* once wall-clock fields
/// are stripped. The only other exclusion is the tx byte/frame pair:
/// the `Metrics` reply is written *after* the remote snapshot is built,
/// so its own bytes can only ever appear in the later local read-out.
#[test]
fn wire_snapshot_matches_in_process_exactly() {
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }));
    let a = server.add_session(active_session(blinker_system("wx-blink", 0.002, 1_000_000)));
    let b = server.add_session(active_session(ring_system("wx-ring", 4, 0.001, 500_000)));
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("wire server");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");

    a.run_for(20_000_000).unwrap();
    b.run_for(20_000_000).unwrap();
    a.wait_idle(WAIT).unwrap();
    b.wait_idle(WAIT).unwrap();

    let mut remote = client.metrics(WAIT).expect("remote snapshot");
    let mut local = server.metrics_snapshot();
    remote.strip_wall_clock();
    local.strip_wall_clock();
    remote.fleet.wire_frames_tx = 0;
    remote.fleet.wire_bytes_tx = 0;
    local.fleet.wire_frames_tx = 0;
    local.fleet.wire_bytes_tx = 0;
    // Same story for the per-connection rows: the Metrics reply itself
    // bumps this connection's tx counters between the two snapshots.
    for conn in remote
        .fleet
        .wire_conns
        .iter_mut()
        .chain(local.fleet.wire_conns.iter_mut())
    {
        conn.frames_tx = 0;
        conn.bytes_tx = 0;
    }
    assert_eq!(remote, local);
    // And the counters are non-trivial — this was a live fleet.
    assert!(remote.fleet.events_fed > 0);
    assert!(remote.fleet.slices > 0);
    assert_eq!(remote.fleet.wire_connections, 1);
    assert!(remote.fleet.wire_frames_rx > 0);
    // The per-connection row for this one live client exists, carries
    // its received traffic, and reaches the Prometheus exposition.
    assert_eq!(remote.fleet.wire_conns.len(), 1);
    assert!(remote.fleet.wire_conns[0].frames_rx > 0);
    let text = server.metrics_text();
    assert!(
        text.contains("gmdf_wire_conn_frames_rx{connection="),
        "per-connection rows missing from the exposition"
    );
}

/// A durable session that fails to restore is reported over the wire —
/// in the handshake, in the telemetry snapshot, and as a `Quarantined`
/// health row — with the server's restore-failure reason attached.
#[test]
fn quarantined_sessions_surface_over_the_wire() {
    let root = tmp_root("wire-quarantine");
    let spec = spec_of(blinker_system("wq-blink", 0.001, 1_000_000));
    let config = ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    };
    let (good, bad) = {
        let server = DebugServer::start_persistent(config.clone(), PersistConfig::new(&root))
            .expect("persistent server boots");
        let a = server.add_durable_session(&spec).expect("a");
        let b = server.add_durable_session(&spec).expect("b");
        a.run_for(2_000_000).expect("send");
        b.run_for(2_000_000).expect("send");
        a.wait_idle(WAIT).expect("idle");
        b.wait_idle(WAIT).expect("idle");
        (a.id(), b.id())
    };
    let spec_path = root
        .join("sessions")
        .join(format!("{bad:016}"))
        .join("spec.json");
    std::fs::write(&spec_path, b"{ not json").expect("corrupt spec");

    let server = Arc::new(
        DebugServer::start_persistent(config, PersistConfig::new(&root)).expect("restart"),
    );
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("wire server");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");

    // The handshake names the survivors and the casualties.
    assert_eq!(client.sessions(), &[good]);
    let quarantined = client.quarantined().to_vec();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].session, bad);
    assert!(
        !quarantined[0].reason.is_empty(),
        "the restore-failure reason must travel with the id"
    );

    // The telemetry snapshot agrees, and health rows mark the state.
    let snapshot = client.metrics(WAIT).expect("remote snapshot");
    assert_eq!(snapshot.quarantined, quarantined);
    assert_eq!(snapshot.fleet.sessions, 1, "quarantined ids are not hosted");
    assert!(snapshot.sessions.iter().any(|s| s.session == bad
        && s.state == HealthState::Quarantined
        && s.detail.as_deref() == Some(quarantined[0].reason.as_str())));
    assert!(snapshot
        .sessions
        .iter()
        .any(|s| s.session == good && s.state == HealthState::Parked));

    drop(client);
    drop(wire);
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// Cumulative subscriber drops reach the counter-only session snapshot
/// and the metrics row, and the two agree — a lagging viewer's losses
/// no longer die inside the queue that suffered them.
#[test]
fn lagged_drops_reach_snapshot_and_metrics() {
    let server = DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        subscriber_capacity: 2,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("lag", 0.002, 1_000_000)));
    // Never drained: with a 2-slot queue and 40 ms of 250 µs slices,
    // this subscriber must overflow.
    let stalled = handle.subscribe();
    handle.run_for(40_000_000).unwrap();
    handle.wait_idle(WAIT).unwrap();

    let snapshot = handle.stats(WAIT).expect("stats");
    assert!(
        snapshot.lagged_drops > 0,
        "a stalled 2-slot subscriber must drop"
    );
    let metrics = server.metrics_snapshot();
    let row = metrics
        .sessions
        .iter()
        .find(|s| s.session == handle.id())
        .expect("session row");
    assert_eq!(row.lagged_drops, snapshot.lagged_drops);
    assert_eq!(metrics.fleet.lagged_drops, snapshot.lagged_drops);
    drop(stalled);
}

/// `ServerConfig { metrics: false }` skips every registry-side record,
/// yet the snapshot still reports true per-session counters — the
/// always-on session state is independent of the observability layer.
#[test]
fn disabled_registry_still_reports_session_truth() {
    let server = DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 500_000,
        metrics: false,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("off", 0.002, 1_000_000)));
    handle.run_for(10_000_000).unwrap();
    handle.wait_idle(WAIT).unwrap();

    let snapshot = server.metrics_snapshot();
    // Registry-side counters never recorded…
    assert_eq!(snapshot.fleet.slices, 0);
    assert_eq!(snapshot.fleet.store_appends, 0);
    assert_eq!(snapshot.fleet.slice_wall_ns.count, 0);
    // …but the session rows still carry the truth.
    let row = snapshot
        .sessions
        .iter()
        .find(|s| s.session == handle.id())
        .expect("session row");
    assert!(row.events_fed > 0);
    assert_eq!(row.trace_len, row.events_fed);
    assert_eq!(row.state, HealthState::Parked);
    assert_eq!(snapshot.fleet.events_fed, row.events_fed);
}
