//! Concurrency soak: a fleet of sessions on a small worker pool runs to
//! completion in bounded time, and tearing the server down mid-run is
//! crash-free (no panics, every worker thread joins).

mod common;

use common::{active_session, blinker_system, ring_system};
use gmdf_server::{DebugServer, ServerConfig, ServerError};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn soak_64_sessions_on_4_workers_run_to_completion() {
    let server = DebugServer::start(ServerConfig {
        workers: 4,
        slice_ns: 500_000,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = (0..64)
        .map(|i| {
            // Mixed fleet: blinkers and rings with varied rates, so the
            // shards see heterogeneous slice costs.
            let session = if i % 2 == 0 {
                active_session(blinker_system(
                    &format!("soak{i}"),
                    0.001 + 0.0002 * (i % 5) as f64,
                    1_000_000,
                ))
            } else {
                active_session(ring_system(
                    &format!("soak{i}"),
                    3 + i % 4,
                    0.001,
                    500_000 + 250_000 * (i % 2) as u64,
                ))
            };
            server.add_session(session)
        })
        .collect();
    assert_eq!(server.session_count(), 64);
    assert_eq!(server.worker_count(), 4);
    for handle in &handles {
        handle.run_for(10_000_000).unwrap(); // 10 ms of target time each
    }
    for handle in &handles {
        handle.wait_idle(WAIT).unwrap();
        let snapshot = handle.stats(WAIT).unwrap();
        assert_eq!(snapshot.now_ns, 10_000_000);
        assert_eq!(snapshot.remaining_ns, 0);
        assert!(
            snapshot.trace_len > 0,
            "session {} recorded nothing",
            snapshot.session
        );
    }
}

#[test]
fn dropping_the_server_mid_run_is_crash_free() {
    let server = DebugServer::start(ServerConfig {
        workers: 4,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = (0..16)
        .map(|i| {
            server.add_session(active_session(blinker_system(
                &format!("drop{i}"),
                0.002,
                1_000_000,
            )))
        })
        .collect();
    for handle in &handles {
        // A budget no pool can consume in the drop window: an hour of
        // target time is ~14M slices — a memoized quiescent blinker
        // pumps ~1M slices/s, so even on a stalled CI box the sessions
        // are guaranteed still mid-run when the drop lands. (2 s of
        // budget flaked here: the first session could finish its whole
        // run while the posting loop contended for the other 15.)
        handle.run_for(3_600_000_000_000).unwrap();
    }
    // Drop while every shard is busy. Drop::drop signals shutdown and
    // joins all 4 workers — returning at all proves the join. (Worker
    // panics are contained per-session by design: a panicking turn
    // parks that session as failed instead of killing its shard, so a
    // clean drop here also means no session was parked by a panic —
    // checked below via the error kind: Shutdown, not SessionFailed.)
    drop(server);
    // Outstanding handles fail fast instead of hanging.
    for handle in &handles {
        assert_eq!(handle.run_for(1).unwrap_err(), ServerError::Shutdown);
        assert_eq!(
            handle.wait_idle(Duration::from_secs(5)).unwrap_err(),
            ServerError::Shutdown
        );
        assert_eq!(
            handle.stats(Duration::from_secs(5)).unwrap_err(),
            ServerError::Shutdown
        );
    }
}

#[test]
fn shutdown_is_idempotent_and_immediate_when_idle() {
    let mut server = DebugServer::start(ServerConfig {
        workers: 2,
        slice_ns: 1_000_000,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("idem", 0.002, 1_000_000)));
    handle.run_for(5_000_000).unwrap();
    handle.wait_idle(WAIT).unwrap();
    server.shutdown();
    server.shutdown(); // second call is a no-op
    assert_eq!(handle.resume().unwrap_err(), ServerError::Shutdown);
}
