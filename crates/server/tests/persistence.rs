//! Durable sessions: restart round-trips, disk-backed history paging,
//! and backend equivalence under the scheduler.
//!
//! The headline property: a persistent server stopped **mid-run** and
//! restarted over the same registry finishes the run with an
//! `ExecutionTrace::to_json` and a subscriber-visible entry stream
//! **byte-identical** to an uninterrupted in-memory run of the same
//! command history — the restart is unobservable in the record.

mod common;

use common::{blinker_system, ring_system};
use gmdf::{ChannelMode, SessionSpec, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_engine::{Codec, Retention, SegmentStore, TraceEntry};
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::{
    DebugServer, EngineEvent, EventReceiver, PersistConfig, ServerConfig, ServerError,
    SessionHandle, WireClient, WireServer,
};
use gmdf_target::SimConfig;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tmp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gmdf-persist-{tag}-{}-{n}", std::process::id()))
}

fn spec_of(system: gmdf_comdes::System) -> SessionSpec {
    Workflow::from_system(system)
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .into_spec(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }
}

/// Drains every `TraceDelta` entry currently buffered on `events`.
fn drain_delta_entries(events: &EventReceiver, out: &mut Vec<TraceEntry>) {
    for event in events.try_iter() {
        if let EngineEvent::TraceDelta { entries, .. } = event {
            out.extend(entries);
        }
    }
}

/// The scripted command history both the reference and the durable run
/// execute. `wait_idle` barriers pin every command's application
/// instant, so the two runs are commanded identically.
fn drive_history(handle: &SessionHandle) {
    handle.run_for(3_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    handle
        .add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), true)
        .expect("send");
    handle.run_for(3_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    handle.step().expect("send");
    handle.resume().expect("send");
    handle.wait_idle(WAIT).expect("idle");
}

/// Stop a persistent server mid-run, restart it over the same registry,
/// and prove the finished trace and the subscriber-visible entry stream
/// are byte-identical to an uninterrupted in-memory run.
#[test]
fn restart_mid_run_is_unobservable_in_the_record() {
    let system = || blinker_system("persist-blinker", 0.0005, 500_000);

    // Reference: uninterrupted, in-memory, same command history.
    let reference = DebugServer::start(server_config());
    let ref_handle = reference.add_session(spec_of(system()).build().expect("builds"));
    let ref_events = ref_handle.subscribe();
    drive_history(&ref_handle);
    ref_handle.run_for(10_000_000).expect("send");
    ref_handle.wait_idle(WAIT).expect("idle");
    let ref_snapshot = ref_handle.snapshot(WAIT).expect("snapshot");
    let mut ref_stream = Vec::new();
    drain_delta_entries(&ref_events, &mut ref_stream);
    drop(reference);

    // Durable run: same history, but the server dies mid-way through
    // the final run budget.
    let root = tmp_root("restart");
    let (session_id, mut pre_stream) = {
        let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
            .expect("persistent server boots");
        let handle = server
            .add_durable_session(&spec_of(system()))
            .expect("durable session");
        let events = handle.subscribe();
        drive_history(&handle);
        handle.run_for(10_000_000).expect("send");
        // Barrier on the mailbox (stats round-trips behind the RunFor)
        // so the command is *accepted* — applied and journaled —
        // before the kill; the drop below must interrupt the run, not
        // outrace the command. No idle wait: budget stays outstanding.
        handle.stats(WAIT).expect("stats");
        // Drop the server with run budget outstanding — the "kill
        // mid-run". (Workers stop after at most one more slice.)
        let mut pre = Vec::new();
        drain_delta_entries(&events, &mut pre);
        (handle.id(), pre)
        // server dropped here
    };

    // Restart over the same registry: the session is recreated, its
    // history replayed, and the outstanding budget finished.
    let server =
        DebugServer::start_persistent(server_config(), PersistConfig::new(&root)).expect("restart");
    assert_eq!(server.session_ids(), vec![session_id], "id preserved");
    let handle = server.handle(session_id).expect("restored handle");
    handle.wait_idle(WAIT).expect("restored run finishes");
    let snapshot = handle.snapshot(WAIT).expect("snapshot");

    // The record is byte-identical to the uninterrupted run.
    assert_eq!(
        snapshot.trace_json, ref_snapshot.trace_json,
        "restarted trace must be byte-identical to the uninterrupted run"
    );
    assert_eq!(snapshot.trace_len, ref_snapshot.trace_len);
    assert_eq!(snapshot.now_ns, ref_snapshot.now_ns);
    assert_eq!(snapshot.engine_state, ref_snapshot.engine_state);
    assert_eq!(snapshot.events_fed, ref_snapshot.events_fed);
    assert_eq!(snapshot.violations, ref_snapshot.violations);
    assert_eq!(snapshot.breakpoint_hits, ref_snapshot.breakpoint_hits);
    assert!(snapshot.trace_len > 0, "the run actually recorded");

    // Stream equivalence: what subscribers saw before the kill, plus
    // the historical backfill served from disk, is the uninterrupted
    // stream. (Pages of 7 force multiple ReplayFrom round trips.)
    let seen = pre_stream.len() as u64;
    let mut next = seen;
    loop {
        let slice = handle.replay_from(next, 7, WAIT).expect("replay page");
        assert_eq!(slice.first_seq, next);
        next += slice.entries.len() as u64;
        pre_stream.extend(slice.entries);
        if slice.complete {
            break;
        }
    }
    let as_json = |entries: &[TraceEntry]| serde_json::to_string(&entries.to_vec()).expect("json");
    assert_eq!(
        as_json(&pre_stream),
        as_json(&ref_stream),
        "pre-kill stream + disk backfill must equal the uninterrupted stream"
    );

    // The delta stream entries are the trace itself.
    assert_eq!(pre_stream.len(), snapshot.trace_len);
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A durable session's disk-backed `window`/`entries_since` answers
    /// are identical to an in-memory session of the same run — over
    /// random ring images, segment capacities, slice partitions and
    /// query points.
    #[test]
    fn disk_backed_session_queries_equal_memory(
        n_states in 2usize..5,
        capacity in 1usize..9,
        slices in proptest::collection::vec(
            prop_oneof![Just(333u64), Just(70_001u64), Just(1_250_000u64), Just(5_000_000u64)],
            1..5,
        ),
        cursors in proptest::collection::vec(0u64..200, 1..5),
    ) {
        let system = |name: &str| ring_system(name, n_states, 0.0008, 500_000);
        let horizon = 12_000_000u64;

        // In-memory run, one-shot.
        let mut mem = spec_of(system("ring-mem")).build().expect("builds");
        mem.run_for(horizon).expect("runs");

        // Disk-backed run, pumped in a ragged slice partition.
        let root = tmp_root("equiv");
        let mut disk = spec_of(system("ring-mem")).build().expect("builds");
        disk.set_trace_store(Box::new(
            SegmentStore::open(root.join("trace"), capacity).expect("store"),
        ));
        let mut k = 0usize;
        while disk.now_ns() < horizon {
            let dt = slices[k % slices.len()].min(horizon - disk.now_ns());
            disk.run_slice(dt).expect("slice");
            k += 1;
        }
        disk.sync_trace().expect("sync");

        let mem_trace = mem.engine().trace();
        let disk_trace = disk.engine().trace();
        prop_assert_eq!(mem_trace.to_json(), disk_trace.to_json(), "whole-trace identity");
        for &cursor in &cursors {
            prop_assert_eq!(
                mem_trace.entries_since(cursor),
                disk_trace.entries_since(cursor),
                "entries_since({})", cursor
            );
        }
        let (t0, t1) = mem_trace.time_range().unwrap_or((0, 1));
        let mid = t0 + (t1 - t0) / 2;
        for (a, b) in [(t0, t1), (t0, mid), (mid, t1), (mid, mid), (t1 + 1, u64::MAX), (0, t0)] {
            prop_assert_eq!(
                mem_trace.window_bounds(a, b).expect("mem window_bounds"),
                disk_trace.window_bounds(a, b).expect("disk window_bounds"),
                "window_bounds({}, {})", a, b
            );
            let mem_win: Vec<TraceEntry> = mem_trace.window(a, b).collect();
            let disk_win: Vec<TraceEntry> = disk_trace.window(a, b).collect();
            prop_assert_eq!(mem_win, disk_win, "window({}, {})", a, b);
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

/// `FetchRange` and `ReplayFrom` page history correctly — in-process
/// and over the wire, against both live and restored sessions.
#[test]
fn history_paging_in_process_and_over_wire() {
    let server = std::sync::Arc::new(DebugServer::start(server_config()));
    let handle = server.add_session(
        spec_of(ring_system("page-ring", 3, 0.0008, 500_000))
            .build()
            .expect("builds"),
    );
    handle.run_for(50_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    let snapshot = handle.snapshot(WAIT).expect("snapshot");
    let full: Vec<TraceEntry> =
        gmdf_engine::ExecutionTrace::from_json(&snapshot.trace_json.expect("trace"))
            .expect("parses")
            .entries();
    assert!(
        full.len() > 10,
        "need a non-trivial trace, got {}",
        full.len()
    );

    // ReplayFrom pages concatenate to the full trace.
    let mut paged = Vec::new();
    let mut next = 0u64;
    loop {
        let slice = handle.replay_from(next, 4, WAIT).expect("page");
        assert!(slice.entries.len() <= 4);
        assert_eq!(slice.end_seq, full.len() as u64);
        next += slice.entries.len() as u64;
        let done = slice.complete;
        paged.extend(slice.entries);
        if done {
            break;
        }
    }
    assert_eq!(paged, full);

    // FetchRange equals the in-memory window on a mid-run time span.
    let t_mid = full[full.len() / 2].event.time_ns;
    let t_end = full[full.len() - 1].event.time_ns;
    let in_window: Vec<TraceEntry> = full
        .iter()
        .filter(|e| e.event.time_ns >= t_mid && e.event.time_ns <= t_end)
        .cloned()
        .collect();
    let slice = handle.fetch_range(t_mid, t_end, WAIT).expect("fetch");
    assert!(slice.complete);
    assert_eq!(slice.entries, in_window);
    assert_eq!(slice.first_seq, in_window[0].seq);
    // end_seq is the continuation limit: the window's exclusive upper
    // bound by sequence number (a truncated page resumes via
    // ReplayFrom(first_seq + entries.len()) until end_seq).
    assert_eq!(slice.end_seq, in_window[in_window.len() - 1].seq + 1);

    // The same pair over TCP: byte-identical after the JSON round trip.
    let wire = WireServer::start(std::sync::Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    let remote = client
        .fetch_range(handle.id(), t_mid, t_end, WAIT)
        .expect("remote fetch");
    assert_eq!(
        serde_json::to_string(&remote).expect("json"),
        serde_json::to_string(&slice).expect("json")
    );
    let mut remote_paged = Vec::new();
    let mut next = 0u64;
    loop {
        let slice = client
            .replay_from(handle.id(), next, 5, WAIT)
            .expect("remote page");
        next += slice.entries.len() as u64;
        let done = slice.complete;
        remote_paged.extend(slice.entries);
        if done {
            break;
        }
    }
    assert_eq!(remote_paged, full);

    // An empty window is a clean, complete, empty page.
    let empty = handle
        .fetch_range(t_end + 1, u64::MAX, WAIT)
        .expect("fetch");
    assert!(empty.complete);
    assert!(empty.entries.is_empty());
}

/// Restored servers keep persisted ids and allocate fresh ones above
/// them; durable sessions on a non-persistent server are rejected.
#[test]
fn registry_ids_and_misuse() {
    let root = tmp_root("ids");
    let spec = spec_of(blinker_system("ids-blinker", 0.001, 1_000_000));
    {
        let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
            .expect("boots");
        let a = server.add_durable_session(&spec).expect("a");
        let b = server.add_durable_session(&spec).expect("b");
        assert_eq!((a.id(), b.id()), (0, 1));
        a.run_for(2_000_000).expect("send");
        b.run_for(1_000_000).expect("send");
        a.wait_idle(WAIT).expect("idle");
        b.wait_idle(WAIT).expect("idle");
    }
    let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
        .expect("restarts");
    assert_eq!(server.session_ids(), vec![0, 1]);
    let c = server.add_durable_session(&spec).expect("c");
    assert_eq!(c.id(), 2, "fresh ids continue above restored ones");
    // Mixed registries restore all durable sessions; in-memory siblings
    // simply do not come back.
    let transient = server.add_session(spec.build().expect("builds"));
    assert_eq!(transient.id(), 3);
    drop(server);

    let plain = DebugServer::start(server_config());
    match plain.add_durable_session(&spec) {
        Err(ServerError::Persist(_)) => {}
        other => panic!("expected Persist error, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A client-triggerable command failure (a stimulus with an unknown
/// label) must never enter the journal: the session fails *live*, but
/// a restart over the same registry still restores it — the rejected
/// command is not part of the replayable history, so the registry is
/// never bricked by one bad client call.
#[test]
fn rejected_stimulus_does_not_brick_the_registry() {
    let root = tmp_root("bad-stimulus");
    let spec = spec_of(blinker_system("bad-stim-blinker", 0.001, 1_000_000));
    let id = {
        let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
            .expect("boots");
        let handle = server.add_durable_session(&spec).expect("durable");
        handle.run_for(2_000_000).expect("send");
        handle.wait_idle(WAIT).expect("idle");
        // A stimulus on a label that does not exist fails the session.
        handle
            .schedule_signal(
                3_000_000,
                "no-such-label",
                gmdf_comdes::SignalValue::Real(1.0),
            )
            .expect("send accepts; the failure surfaces at apply time");
        match handle.wait_idle(WAIT) {
            Err(ServerError::SessionFailed(_)) => {}
            other => panic!("expected SessionFailed, got {other:?}"),
        }
        handle.id()
    };

    // The restart must succeed and restore the session to its last
    // good state — nothing quarantined, nothing bricked.
    let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
        .expect("restart survives a rejected command");
    assert!(
        server.quarantined_sessions().is_empty(),
        "rejected commands are not journaled, so restore cannot re-fail: {:?}",
        server.quarantined_sessions()
    );
    let handle = server.handle(id).expect("restored");
    // The restored session is healthy and keeps working.
    handle.run_for(1_000_000).expect("send");
    handle.wait_idle(WAIT).expect("restored session still runs");
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// One damaged session directory quarantines that session only: the
/// restarted server boots, restores every healthy sibling, reports the
/// failure, and never reuses the quarantined id.
#[test]
fn damaged_session_is_quarantined_not_fatal() {
    let root = tmp_root("quarantine");
    let spec = spec_of(blinker_system("quarantine-blinker", 0.001, 1_000_000));
    let (good, bad) = {
        let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
            .expect("boots");
        let a = server.add_durable_session(&spec).expect("a");
        let b = server.add_durable_session(&spec).expect("b");
        a.run_for(2_000_000).expect("send");
        b.run_for(2_000_000).expect("send");
        a.wait_idle(WAIT).expect("idle");
        b.wait_idle(WAIT).expect("idle");
        (a.id(), b.id())
    };
    // Corrupt the second session's spec beyond repair.
    let spec_path = root
        .join("sessions")
        .join(format!("{bad:016}"))
        .join("spec.json");
    std::fs::write(&spec_path, b"{ not json").expect("corrupt spec");

    let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
        .expect("one damaged session must not brick the registry");
    assert_eq!(server.session_ids(), vec![good], "healthy sibling restored");
    let quarantined = server.quarantined_sessions();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, bad);
    assert!(
        spec_path.exists(),
        "the quarantined directory is kept for inspection"
    );
    // The quarantined id is reserved: fresh sessions continue above it.
    let fresh = server.add_durable_session(&spec).expect("fresh");
    assert!(fresh.id() > bad, "quarantined ids are never reused");
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// A torn journal tail (a command cut mid-append by a kill) is dropped
/// on restart; the session still restores and keeps serving.
#[test]
fn torn_journal_tail_is_recovered() {
    let root = tmp_root("torn-journal");
    let spec = spec_of(blinker_system("torn-blinker", 0.001, 1_000_000));
    let id = {
        let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
            .expect("boots");
        let handle = server.add_durable_session(&spec).expect("durable");
        handle.run_for(3_000_000).expect("send");
        handle.wait_idle(WAIT).expect("idle");
        handle.id()
    };
    // Damage the journal: append garbage, then also cut into the last
    // record's bytes.
    let journal = root
        .join("sessions")
        .join(format!("{id:016}"))
        .join("journal.log");
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    bytes.truncate(bytes.len() - 2);
    bytes.extend_from_slice(&[0xde, 0xad]);
    std::fs::write(&journal, &bytes).expect("write");

    let server = DebugServer::start_persistent(server_config(), PersistConfig::new(&root))
        .expect("restart survives a torn journal");
    let handle = server.handle(id).expect("restored");
    // The torn RunFor was dropped, so the restored session is idle with
    // whatever prefix survived; it still accepts new work.
    handle.run_for(1_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    let snapshot = handle.stats(WAIT).expect("stats");
    assert_eq!(snapshot.remaining_ns, 0);
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// Retention soak: a durable session driven far past its disk budget
/// keeps a bounded on-disk footprint — the compactor thread compresses
/// sealed segments and evicts the oldest ones — while `ReplayFrom`
/// transparently pages the retained history across the compressed cold
/// tier and the hot tail, and a restart over the compacted registry
/// restores a session that still answers.
#[test]
fn retention_budget_bounds_disk_while_replay_spans_tiers() {
    const BUDGET: u64 = 8 * 1024;
    // The budget bounds *sealed* segments; the hot tail plus segments
    // appended since the last compactor sweep ride on top.
    const SLACK: u64 = 8 * 1024;
    const CHUNK_NS: u64 = 25_000_000;
    let root = tmp_root("retention");
    let persist = || {
        PersistConfig::new(&root)
            .with_segment_capacity(16)
            .with_codec(Codec::Binary)
            .with_retention(Retention {
                compress_after: Some(1),
                max_disk_bytes: Some(BUDGET),
            })
            .with_compact_interval(Duration::from_millis(5))
    };
    let system = || ring_system("retain-ring", 3, 0.0008, 500_000);
    let server = DebugServer::start_persistent(server_config(), persist()).expect("boots");
    let handle = server
        .add_durable_session(&spec_of(system()))
        .expect("durable");
    let id = handle.id();

    // Drive in fixed chunks until the run has recorded several budgets'
    // worth of history, counting the chunks so a reference run can
    // repeat the exact same command schedule.
    let mut chunks = 0usize;
    loop {
        handle.run_for(CHUNK_NS).expect("send");
        handle.wait_idle(WAIT).expect("idle");
        chunks += 1;
        let len = handle.stats(WAIT).expect("stats").trace_len;
        if len >= 600 {
            break;
        }
        assert!(
            chunks < 64,
            "ring system too quiet: {len} entries after {chunks} chunks"
        );
    }

    // Let the compactor settle: disk under budget *and* a compressed
    // cold tier present among the retained segments. (During the run
    // eviction consumes the oldest — compressed — segments; once
    // appends stop, the next sweeps re-compress the retained tail.)
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let fleet = loop {
        let fleet = server.metrics_snapshot().fleet;
        if fleet.trace_disk_bytes <= BUDGET + SLACK && fleet.trace_compacted_segments > 0 {
            break fleet;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "store never settled: {} disk bytes, {} compressed segments",
            fleet.trace_disk_bytes,
            fleet.trace_compacted_segments
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        fleet.store_compactions > 0,
        "compactor never compressed a segment"
    );
    assert!(
        fleet.store_evicted_segments > 0,
        "the budget never forced an eviction"
    );
    assert!(fleet.store_reclaimed_bytes > 0, "nothing was reclaimed");

    // Reference: the same image under the same command schedule, fully
    // in memory — determinism makes its trace the ground truth for what
    // the retained suffix must contain.
    let reference = DebugServer::start(server_config());
    let ref_handle = reference.add_session(spec_of(system()).build().expect("builds"));
    for _ in 0..chunks {
        ref_handle.run_for(CHUNK_NS).expect("send");
        ref_handle.wait_idle(WAIT).expect("idle");
    }
    let ref_snapshot = ref_handle.snapshot(WAIT).expect("snapshot");
    let full: Vec<TraceEntry> =
        gmdf_engine::ExecutionTrace::from_json(&ref_snapshot.trace_json.expect("trace"))
            .expect("parses")
            .entries();
    drop(reference);

    // ReplayFrom(0) pages the retained history: the first page starts
    // at the eviction floor (not at 0), pages stay contiguous across
    // the cold/hot tier seam, and the concatenation is byte-identical
    // to the reference suffix.
    let pages = |handle: &SessionHandle| {
        let mut paged = Vec::new();
        let mut next = 0u64;
        let mut floor = None;
        loop {
            let slice = handle.replay_from(next, 7, WAIT).expect("page");
            match floor {
                None => floor = Some(slice.first_seq),
                Some(_) => assert_eq!(slice.first_seq, next, "pages must stay contiguous"),
            }
            assert_eq!(slice.end_seq, full.len() as u64);
            next = slice.entries.last().map_or(slice.first_seq, |e| e.seq + 1);
            let done = slice.complete;
            paged.extend(slice.entries);
            if done {
                break;
            }
        }
        (floor.expect("at least one page"), paged)
    };
    let (floor, paged) = pages(&handle);
    assert!(floor > 0, "eviction should have moved the replay floor");
    assert!(
        (floor as usize) < full.len(),
        "something must remain retained"
    );
    assert_eq!(
        serde_json::to_string(&paged).expect("json"),
        serde_json::to_string(&full[floor as usize..]).expect("json"),
        "retained suffix must match the in-memory reference"
    );

    // A restart over the compacted, partially-evicted registry restores
    // the session and serves the same retained history.
    drop(server);
    let server = DebugServer::start_persistent(server_config(), persist()).expect("restart");
    let handle = server.handle(id).expect("restored");
    handle.wait_idle(WAIT).expect("restored catch-up finishes");
    let (floor_after, paged_after) = pages(&handle);
    assert_eq!(floor_after, floor, "restart must not move the floor");
    assert_eq!(
        serde_json::to_string(&paged_after).expect("json"),
        serde_json::to_string(&paged).expect("json"),
        "restart must not change the retained history"
    );
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}
