//! Checkpointed time travel: `SeekTo` / `StepBack` / `ReplayWindow`
//! over a durable session.
//!
//! The headline property: a seek served from the nearest persisted
//! checkpoint plus O(interval) deterministic replay produces a trace
//! **byte-identical** to replaying the whole journal from zero — the
//! checkpoint is an accelerator, never an oracle. The suite also pins
//! the crash story (a checkpoint torn at an arbitrary byte falls back
//! to an older image or to zero), the retention clamp (eviction never
//! outruns the oldest retained checkpoint), the wire round trip, and
//! the checkpoint metrics.

mod common;

use common::ring_system;
use gmdf::SessionSpec;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::SignalValue;
use gmdf_engine::{Codec, ExecutionTrace, Retention};
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::{
    DebugServer, PersistConfig, ServerConfig, SessionHandle, WireClient, WireServer,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// Checkpoint every 32 trace entries — small enough that a ~30 ms ring
/// run writes several images, so seeks genuinely restore rather than
/// replay from zero.
const INTERVAL: u64 = 32;

fn tmp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gmdf-tt-{tag}-{}-{n}", std::process::id()))
}

fn spec_of(system: gmdf_comdes::System) -> SessionSpec {
    gmdf::Workflow::from_system(system)
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .into_spec(
            gmdf::ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            gmdf_target::SimConfig::default(),
        )
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }
}

fn tt_system(name: &str) -> gmdf_comdes::System {
    ring_system(name, 3, 0.0008, 500_000)
}

/// Drives a history that exercises every journaled command class the
/// seek replay must reproduce: scheduled stimuli, breakpoints (hit and
/// cleared), step, resume and plain run budget. `wait_idle` barriers
/// pin each command's application instant so reruns are identical.
fn drive_history(handle: &SessionHandle) {
    handle.run_for(6_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    handle
        .schedule_signal(9_000_000, "state_sig", SignalValue::Int(5))
        .expect("send");
    handle
        .add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), true)
        .expect("send");
    handle.run_for(6_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    handle.step().expect("send");
    handle.resume().expect("send");
    handle.run_for(9_000_000).expect("send");
    handle.wait_idle(WAIT).expect("idle");
    handle.clear_breakpoints().expect("send");
    // Then pump until the trace spans several checkpoint intervals, so
    // seeks genuinely restore instead of degenerating to from-zero.
    let mut chunks = 0usize;
    while (handle.stats(WAIT).expect("stats").trace_len as u64) < 5 * INTERVAL {
        handle.run_for(25_000_000).expect("send");
        handle.wait_idle(WAIT).expect("idle");
        chunks += 1;
        assert!(chunks < 64, "ring too quiet after {chunks} chunks");
    }
}

/// The directory of one durable session's checkpoints.
fn checkpoint_dir(root: &std::path::Path, id: u64) -> PathBuf {
    root.join("sessions")
        .join(format!("{id:016}"))
        .join("checkpoints")
}

/// Lists `(seq, path)` of the `.ck` files on disk, ascending by seq.
fn checkpoint_files(dir: &std::path::Path) -> Vec<(u64, PathBuf)> {
    let mut out: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .expect("checkpoint dir exists")
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            let seq: u64 = name
                .strip_prefix("ckpt-")?
                .strip_suffix(".ck")?
                .split('-')
                .next()?
                .parse()
                .ok()?;
            Some((seq, e.path()))
        })
        .collect();
    out.sort();
    out
}

/// A seek to the live instant is served from a checkpoint (restoring
/// and replaying only the O(interval) tail) and its serialized trace is
/// byte-identical to the live session's own snapshot.
#[test]
fn seek_to_now_matches_the_live_snapshot_byte_for_byte() {
    let root = tmp_root("seek-now");
    let server = DebugServer::start_persistent(
        server_config(),
        PersistConfig::new(&root).with_checkpoint_interval(INTERVAL),
    )
    .expect("boots");
    let handle = server
        .add_durable_session(&spec_of(tt_system("tt-now")))
        .expect("durable");
    drive_history(&handle);

    let snapshot = handle.snapshot(WAIT).expect("snapshot");
    assert!(
        snapshot.trace_len as u64 > 2 * INTERVAL,
        "need several checkpoint intervals, got {} entries",
        snapshot.trace_len
    );
    let report = handle.seek_to(snapshot.now_ns, true, WAIT).expect("seek");
    assert_eq!(report.target_ns, snapshot.now_ns);
    assert_eq!(report.now_ns, snapshot.now_ns);
    assert!(
        report.checkpoint_seq.is_some(),
        "a long trace must seek via a checkpoint"
    );
    assert!(
        report.replayed_entries < report.trace_len,
        "checkpoint restore must shortcut the replay: regenerated {} of {}",
        report.replayed_entries,
        report.trace_len
    );
    assert_eq!(report.trace_len as usize, snapshot.trace_len);
    assert_eq!(
        report.trace_json.expect("trace requested"),
        snapshot.trace_json.expect("trace requested"),
        "seek trace must be byte-identical to the live snapshot"
    );
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// The acceptance property: seeks served from checkpoints are
/// byte-identical to the same seeks replayed from zero. The registry is
/// probed at several instants, then its checkpoints are deleted and the
/// server restarted with checkpointing disabled — every probe must
/// reproduce the exact same trace the checkpointed seek produced.
#[test]
fn checkpointed_seek_is_byte_identical_to_replay_from_zero() {
    let root = tmp_root("vs-zero");
    let (id, probes) = {
        let server = DebugServer::start_persistent(
            server_config(),
            PersistConfig::new(&root).with_checkpoint_interval(INTERVAL),
        )
        .expect("boots");
        let handle = server
            .add_durable_session(&spec_of(tt_system("tt-zero")))
            .expect("durable");
        drive_history(&handle);
        let now = handle.stats(WAIT).expect("stats").now_ns;
        let mut probes = Vec::new();
        let mut via_checkpoint = 0;
        for t in [now / 4, now / 2, now - now / 4, now] {
            let report = handle.seek_to(t, true, WAIT).expect("seek");
            via_checkpoint += u32::from(report.checkpoint_seq.is_some());
            probes.push((t, report.trace_json.expect("trace requested")));
        }
        assert!(
            via_checkpoint >= 2,
            "late probes must be served from checkpoints, got {via_checkpoint}/4"
        );
        (handle.id(), probes)
        // Server dropped here, registry left on disk.
    };
    std::fs::remove_dir_all(checkpoint_dir(&root, id)).expect("delete checkpoints");

    // Restart without checkpoints: the journal alone is the truth.
    let server = DebugServer::start_persistent(
        server_config(),
        PersistConfig::new(&root).with_checkpoint_interval(0),
    )
    .expect("restart");
    let handle = server.handle(id).expect("restored");
    handle.wait_idle(WAIT).expect("catch-up");
    for (t, via_checkpoint) in &probes {
        let report = handle.seek_to(*t, true, WAIT).expect("seek from zero");
        assert_eq!(
            report.checkpoint_seq, None,
            "checkpoints were deleted, this must be a from-zero replay"
        );
        assert_eq!(
            report.trace_json.as_deref(),
            Some(via_checkpoint.as_str()),
            "checkpointed seek to {t} ns must equal replay-from-zero"
        );
    }
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// `StepBack { entries: k }` rewinds to the instant of the entry `k`
/// places before the end of the trace, and is the same replica a
/// `SeekTo` of that instant builds.
#[test]
fn step_back_lands_on_the_pivot_entrys_instant() {
    let root = tmp_root("step-back");
    let server = DebugServer::start_persistent(
        server_config(),
        PersistConfig::new(&root).with_checkpoint_interval(INTERVAL),
    )
    .expect("boots");
    let handle = server
        .add_durable_session(&spec_of(tt_system("tt-step")))
        .expect("durable");
    drive_history(&handle);

    let snapshot = handle.snapshot(WAIT).expect("snapshot");
    let entries = ExecutionTrace::from_json(&snapshot.trace_json.expect("trace"))
        .expect("parses")
        .entries();
    let len = entries.len();
    for k in [1usize, 7, len / 2] {
        let report = handle.step_back(k as u64, true, WAIT).expect("step back");
        let pivot = &entries[len - k - 1];
        assert_eq!(
            report.target_ns, pivot.event.time_ns,
            "stepping back {k} entries must land on the pivot's instant"
        );
        let same = handle.seek_to(report.target_ns, true, WAIT).expect("seek");
        assert_eq!(
            report.trace_json, same.trace_json,
            "StepBack and SeekTo at the same instant must agree"
        );
    }
    // Rewinding the whole trace lands at t = 0.
    let zero = handle.step_back(len as u64, false, WAIT).expect("rewind");
    assert_eq!(zero.target_ns, 0);
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// `ReplayWindow` regenerates exactly what `FetchRange` pages out of
/// the live store — in-process and across the wire (which also pins the
/// v6 serde arms for the whole seek vocabulary).
#[test]
fn replay_window_matches_fetch_range_in_process_and_over_the_wire() {
    let root = tmp_root("window");
    let server = Arc::new(
        DebugServer::start_persistent(
            server_config(),
            PersistConfig::new(&root).with_checkpoint_interval(INTERVAL),
        )
        .expect("boots"),
    );
    let handle = server
        .add_durable_session(&spec_of(tt_system("tt-window")))
        .expect("durable");
    drive_history(&handle);

    let now = handle.stats(WAIT).expect("stats").now_ns;
    let (t0, t1) = (now / 4, now / 2);
    let fetched = handle.fetch_range(t0, t1, WAIT).expect("fetch");
    assert!(!fetched.entries.is_empty(), "window must not be empty");
    let replayed = handle.replay_window(t0, t1, WAIT).expect("replay window");
    assert_eq!(
        serde_json::to_string(&replayed).expect("json"),
        serde_json::to_string(&fetched).expect("json"),
        "a regenerated window must be byte-identical to the paged one"
    );

    // The same vocabulary over TCP: replies survive the JSON framing.
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    let id = handle.id();
    let remote = client
        .replay_window(id, t0, t1, WAIT)
        .expect("remote window");
    assert_eq!(
        serde_json::to_string(&remote).expect("json"),
        serde_json::to_string(&fetched).expect("json")
    );
    let local_seek = handle.seek_to(now, true, WAIT).expect("seek");
    let remote_seek = client.seek_to(id, now, true, WAIT).expect("remote seek");
    assert_eq!(remote_seek.trace_json, local_seek.trace_json);
    assert_eq!(remote_seek.checkpoint_seq, local_seek.checkpoint_seq);
    let local_back = handle.step_back(5, true, WAIT).expect("step back");
    let remote_back = client.step_back(id, 5, true, WAIT).expect("remote back");
    assert_eq!(remote_back.target_ns, local_back.target_ns);
    assert_eq!(remote_back.trace_json, local_back.trace_json);
    drop(client);
    drop(wire);
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// The crash story: a checkpoint file cut at an **arbitrary byte** (a
/// kill mid-write, disk damage…) is discarded on the next open and the
/// seek falls back to an older image — or all the way to a from-zero
/// replay — still producing the byte-identical trace. Stale `.tmp`
/// spool files are swept too.
#[test]
fn torn_checkpoint_falls_back_to_an_older_image() {
    let root = tmp_root("torn");
    let persist = || PersistConfig::new(&root).with_checkpoint_interval(INTERVAL);
    let (id, now, reference) = {
        let server = DebugServer::start_persistent(server_config(), persist()).expect("boots");
        let handle = server
            .add_durable_session(&spec_of(tt_system("tt-torn")))
            .expect("durable");
        drive_history(&handle);
        let snapshot = handle.snapshot(WAIT).expect("snapshot");
        (
            handle.id(),
            snapshot.now_ns,
            snapshot.trace_json.expect("trace"),
        )
    };
    let dir = checkpoint_dir(&root, id);
    let files = checkpoint_files(&dir);
    assert!(files.len() >= 2, "need a fallback image: {files:?}");
    let (newest_seq, newest_path) = files.last().expect("newest").clone();
    let intact = std::fs::read(&newest_path).expect("read newest");

    for cut in [3usize, intact.len() / 3, intact.len() - 1] {
        // Tear the newest checkpoint at `cut` bytes, and leave a stale
        // spool file behind as an interrupted write would.
        std::fs::write(&newest_path, &intact[..cut]).expect("tear");
        let stale = newest_path.with_extension("ck.tmp");
        std::fs::write(&stale, b"half-written").expect("spool");

        let server = DebugServer::start_persistent(server_config(), persist()).expect("restart");
        let handle = server.handle(id).expect("restored");
        handle.wait_idle(WAIT).expect("catch-up");
        let report = handle.seek_to(now, true, WAIT).expect("seek");
        assert_ne!(
            report.checkpoint_seq,
            Some(newest_seq),
            "the torn image must not serve the seek (cut at {cut} bytes)"
        );
        assert_eq!(
            report.trace_json.as_deref(),
            Some(reference.as_str()),
            "fallback must still be byte-identical (cut at {cut} bytes)"
        );
        drop(server);
        assert!(
            !newest_path.exists(),
            "the damaged file must be swept on open"
        );
        assert!(!stale.exists(), "stale .tmp spool must be swept on open");
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The retention clamp: under disk-budget eviction pressure the replay
/// floor never passes the oldest retained checkpoint's sequence — a
/// seek can always restore that checkpoint and page forward out of
/// still-retained segments — and history older than the floor stays
/// reachable through `ReplayWindow` regeneration.
#[test]
fn eviction_never_outruns_the_oldest_checkpoint() {
    const BUDGET: u64 = 8 * 1024;
    const CHUNK_NS: u64 = 25_000_000;
    let root = tmp_root("clamp");
    let server = DebugServer::start_persistent(
        server_config(),
        PersistConfig::new(&root)
            .with_segment_capacity(16)
            .with_codec(Codec::Binary)
            .with_retention(Retention {
                compress_after: Some(1),
                max_disk_bytes: Some(BUDGET),
            })
            .with_compact_interval(Duration::from_millis(5))
            .with_checkpoint_interval(48),
    )
    .expect("boots");
    let handle = server
        .add_durable_session(&spec_of(tt_system("tt-clamp")))
        .expect("durable");
    let mut chunks = 0usize;
    loop {
        handle.run_for(CHUNK_NS).expect("send");
        handle.wait_idle(WAIT).expect("idle");
        chunks += 1;
        if handle.stats(WAIT).expect("stats").trace_len >= 600 {
            break;
        }
        assert!(chunks < 64, "ring too quiet after {chunks} chunks");
    }
    // Wait for the budget to actually force evictions.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if server.metrics_snapshot().fleet.store_evicted_segments > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the budget never forced an eviction"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let oldest_ck = checkpoint_files(&checkpoint_dir(&root, handle.id()))
        .first()
        .expect("checkpoints written")
        .0;
    let floor = handle.replay_from(0, 7, WAIT).expect("page").first_seq;
    assert!(floor > 0, "eviction should have moved the replay floor");
    assert!(
        floor <= oldest_ck,
        "eviction passed the oldest checkpoint: floor {floor} > checkpoint {oldest_ck}"
    );

    // A seek pinned just past the oldest checkpoint restores *that*
    // image and replays O(interval), even under eviction pressure.
    let stats = handle.stats(WAIT).expect("stats");
    let report = handle.seek_to(stats.now_ns / 2, false, WAIT).expect("seek");
    assert!(report.checkpoint_seq.is_some());
    assert!(report.replayed_entries < report.trace_len);
    // And a window that predates the floor regenerates from scratch.
    let window = handle
        .replay_window(0, stats.now_ns / 8, WAIT)
        .expect("pre-floor window");
    assert!(
        window.entries.first().map_or(0, |e| e.seq) < floor,
        "the regenerated window must reach below the eviction floor"
    );
    assert!(window
        .entries
        .iter()
        .all(|e| e.event.time_ns <= stats.now_ns / 8));
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}

/// Checkpoint activity is measured: writes, payload bytes and restores
/// count up in the fleet snapshot consistently with the trace length
/// and the on-disk registry, the latency histograms tally one sample
/// per operation, and everything reaches the Prometheus exposition.
#[test]
fn checkpoint_metrics_flow_through_registry_and_prometheus() {
    let root = tmp_root("metrics");
    let server = DebugServer::start_persistent(
        server_config(),
        PersistConfig::new(&root).with_checkpoint_interval(INTERVAL),
    )
    .expect("boots");
    let handle = server
        .add_durable_session(&spec_of(tt_system("tt-metrics")))
        .expect("durable");
    drive_history(&handle);
    let stats = handle.stats(WAIT).expect("stats");
    for t in [stats.now_ns / 2, stats.now_ns] {
        handle.seek_to(t, false, WAIT).expect("seek");
    }

    let fleet = server.metrics_snapshot().fleet;
    assert!(fleet.checkpoint_writes > 0, "no checkpoints written");
    assert!(
        fleet.checkpoint_writes <= stats.trace_len as u64 / INTERVAL,
        "at most one write per interval of entries: {} writes for {} entries",
        fleet.checkpoint_writes,
        stats.trace_len
    );
    assert!(
        fleet.checkpoint_bytes > fleet.checkpoint_writes,
        "payloads are non-trivial"
    );
    assert!(
        fleet.checkpoint_restores >= 1,
        "checkpointed seeks must count restores"
    );
    assert_eq!(fleet.checkpoint_write_ns.count, fleet.checkpoint_writes);
    assert_eq!(fleet.checkpoint_restore_ns.count, fleet.checkpoint_restores);
    // One on-disk image per counted write (nothing prunes them yet).
    let files = checkpoint_files(&checkpoint_dir(&root, handle.id()));
    assert_eq!(files.len() as u64, fleet.checkpoint_writes);

    let text = server.metrics_text();
    for needle in [
        "gmdf_checkpoint_writes_total",
        "gmdf_checkpoint_bytes",
        "gmdf_checkpoint_restores_total",
        "gmdf_checkpoint_write_ns",
        "gmdf_checkpoint_restore_ns",
    ] {
        assert!(text.contains(needle), "{needle} missing from exposition");
    }
    drop(server);
    std::fs::remove_dir_all(&root).ok();
}
