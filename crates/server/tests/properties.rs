//! Property tests for the server's two fragile seams:
//!
//! * **slice boundaries vs UART framing** — batched per-slice decode
//!   must never split a frame incorrectly: any chunking of the byte
//!   stream, and any random partition of the run horizon, yields the
//!   same `ModelEvent` sequence / trace as the unsliced run;
//! * **mailbox interleavings** — any command sequence settles without
//!   deadlock, and the broadcast stream neither drops nor duplicates
//!   trace entries.

mod common;

use common::{active_session, blinker_system};
use gmdf::ActiveChannel;
use gmdf_codegen::{CommandKind, DebugInfo, EventSpec, Frame};
use gmdf_comdes::SignalValue;
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig, SessionCommand};
use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

/// Debug info with a handful of realistic event specs for ids 0..=2.
fn debug_info() -> DebugInfo {
    let mut d = DebugInfo::default();
    d.register(EventSpec {
        kind: CommandKind::StateEnter,
        path: "A/fsm".into(),
        from: Some("Idle".into()),
        to: Some("Run".into()),
        label: None,
        value_type: None,
    });
    d.register(EventSpec {
        kind: CommandKind::SignalWrite,
        path: "A/out/u".into(),
        from: None,
        to: None,
        label: Some("u".into()),
        value_type: Some(gmdf_comdes::SignalType::Real),
    });
    d.register(EventSpec {
        kind: CommandKind::TaskEnd,
        path: "A".into(),
        from: None,
        to: None,
        label: None,
        value_type: None,
    });
    d
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (0u16..3, proptest::collection::vec(any::<u64>(), 0..2))
        .prop_map(|(event, args)| Frame::new(event, args))
}

/// One-shot reference trace for the slicing property (computed once;
/// every case compares against the same bytes).
fn reference_trace() -> &'static String {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        let mut session = active_session(blinker_system("prop", 0.002, 1_000_000));
        session.run_for(12_000_000).unwrap();
        session.engine().trace().to_json()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched decode (bytes grouped into arbitrary chunks, as the
    /// server does per slice) produces the same model-event sequence as
    /// feeding the decoder one byte at a time — frames that straddle
    /// chunk boundaries are completed, not split.
    #[test]
    fn batched_uart_decode_equals_per_byte_decode(
        frames in proptest::collection::vec(arb_frame(), 0..10),
        chunk_sizes in proptest::collection::vec(1usize..23, 1..32),
    ) {
        // Timestamped wire: one nanosecond per byte, like a slow UART.
        let mut wire: Vec<(u64, u8)> = Vec::new();
        for f in &frames {
            for b in f.encode() {
                wire.push((wire.len() as u64, b));
            }
        }
        let mut batched = ActiveChannel::new(debug_info());
        let mut got_batched = Vec::new();
        let mut pos = 0;
        let mut k = 0;
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            got_batched.extend(batched.feed(&wire[pos..pos + n]));
            pos += n;
            k += 1;
        }
        let mut per_byte = ActiveChannel::new(debug_info());
        let mut got_single = Vec::new();
        for b in &wire {
            got_single.extend(per_byte.feed(std::slice::from_ref(b)));
        }
        prop_assert_eq!(got_batched, got_single);
        prop_assert_eq!(batched.crc_errors(), per_byte.crc_errors());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random partitions of the run horizon into slices never change
    /// the recorded trace: every slice schedule reproduces the one-shot
    /// run byte for byte.
    #[test]
    fn random_slice_partitions_preserve_the_trace(
        slices in proptest::collection::vec(1_000u64..3_000_000, 4..40),
    ) {
        let mut session = active_session(blinker_system("prop", 0.002, 1_000_000));
        let mut k = 0usize;
        while session.now_ns() < 12_000_000 {
            let dt = slices[k % slices.len()].min(12_000_000 - session.now_ns());
            session.run_slice(dt).unwrap();
            k += 1;
        }
        prop_assert_eq!(&session.engine().trace().to_json(), reference_trace());
    }
}

/// The command alphabet for mailbox interleavings (durations kept small
/// so each case stays fast).
fn arb_command() -> impl Strategy<Value = SessionCommand> {
    prop_oneof![
        (1u64..2_000_000).prop_map(|duration_ns| SessionCommand::RunFor { duration_ns }),
        Just(SessionCommand::AddBreakpoint {
            matcher: CommandMatcher::kind(EventKind::StateEnter),
            one_shot: false,
        }),
        Just(SessionCommand::AddBreakpoint {
            matcher: CommandMatcher::kind(EventKind::StateEnter),
            one_shot: true,
        }),
        Just(SessionCommand::ClearBreakpoints),
        Just(SessionCommand::Step),
        Just(SessionCommand::Resume),
        (0u64..10_000_000).prop_map(|t| SessionCommand::ScheduleSignal {
            time_ns: t,
            label: "lamp".into(),
            value: SignalValue::Bool(true),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of mailbox commands settles (no deadlock: the
    /// final wait_idle succeeds) and the broadcast stream carries every
    /// trace entry exactly once, in order.
    #[test]
    fn mailbox_interleavings_never_deadlock_or_drop_events(
        script in proptest::collection::vec(arb_command(), 1..24),
        workers in 1usize..5,
    ) {
        let server = DebugServer::start(ServerConfig {
            workers,
            slice_ns: 400_000,
            ..ServerConfig::default()
        });
        let handle = server.add_session(active_session(blinker_system("prop", 0.002, 1_000_000)));
        let events = handle.subscribe();
        // A snapshot request sprinkled mid-script must also be serviced.
        let (snap_tx, snap_rx) = mpsc::channel();
        let mid = script.len() / 2;
        for (i, command) in script.into_iter().enumerate() {
            if i == mid {
                handle
                    .send(SessionCommand::Snapshot {
                        reply: snap_tx.clone(),
                        include_trace: false,
                    })
                    .unwrap();
            }
            handle.send(command).unwrap();
        }
        // Settle: no breakpoints left, engine drained, budget consumed.
        handle.clear_breakpoints().unwrap();
        handle.resume().unwrap();
        handle.wait_idle(WAIT).unwrap();
        let snapshot = handle.stats(WAIT).unwrap();
        prop_assert_eq!(snapshot.remaining_ns, 0);
        prop_assert_eq!(snapshot.pending, 0);
        // The mid-script snapshot arrived.
        prop_assert!(snap_rx.recv_timeout(WAIT).is_ok());
        // Broadcast deltas: dense seq, no drops, no duplicates.
        let mut expected_seq = 0u64;
        for event in events.try_iter() {
            if let EngineEvent::TraceDelta { entries, .. } = event {
                for entry in entries {
                    prop_assert_eq!(entry.seq, expected_seq);
                    expected_seq += 1;
                }
            }
        }
        prop_assert_eq!(expected_seq as usize, snapshot.trace_len);
    }
}
