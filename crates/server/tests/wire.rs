//! The wire layer's contracts:
//!
//! * **codec** — every `ClientFrame`/`ServerFrame` variant round-trips
//!   through encode → arbitrary chunking → decode (the per-byte-vs-
//!   batched UART pattern, applied to the TCP framing);
//! * **fidelity** — a remote client driving a session over localhost
//!   TCP receives an event stream byte-identical (after JSON
//!   round-trip) to an in-process subscriber of the same run, and the
//!   snapshot trace matches byte for byte;
//! * **backpressure** — a deliberately stalled client overflows its own
//!   bounded queue (coalesce, then drop + `Lagged`), while the
//!   scheduler pump finishes on time and the recorded trace is
//!   unaffected.

mod common;

use common::{active_session, blinker_system};
use gmdf_comdes::SignalValue;
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::proto::{
    decode_payload, encode_frame, ClientFrame, FrameDecoder, ServerFrame, WIRE_VERSION,
};
use gmdf_server::{
    DebugServer, EngineEvent, ServerConfig, SessionCommand, WireClient, WireError, WireServer,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(60);
const HORIZON_NS: u64 = 20_000_000;

fn wired_server(config: ServerConfig) -> (Arc<DebugServer>, WireServer) {
    let server = Arc::new(DebugServer::start(config));
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    (server, wire)
}

/// JSON text of a frame — the canonical comparison form (commands have
/// no `PartialEq`; events get the same treatment for symmetry).
fn json_of<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

// ---------------------------------------------------------------------------
// Codec properties
// ---------------------------------------------------------------------------

fn arb_command() -> impl Strategy<Value = SessionCommand> {
    prop_oneof![
        (0u64..u64::MAX / 2, any::<bool>()).prop_map(|(t, b)| SessionCommand::ScheduleSignal {
            time_ns: t,
            label: format!("sig{}", t % 7),
            value: if b {
                SignalValue::Bool(t % 2 == 0)
            } else {
                SignalValue::Real(t as f64 * 0.125)
            },
        }),
        any::<bool>().prop_map(|one_shot| SessionCommand::AddBreakpoint {
            matcher: CommandMatcher::kind(EventKind::StateEnter).under("A/fsm"),
            one_shot,
        }),
        Just(SessionCommand::ClearBreakpoints),
        Just(SessionCommand::Step),
        Just(SessionCommand::Resume),
        (1u64..u64::MAX / 2).prop_map(|duration_ns| SessionCommand::RunFor { duration_ns }),
        any::<bool>().prop_map(|include_trace| {
            let (reply, _) = mpsc::channel();
            SessionCommand::Snapshot {
                reply,
                include_trace,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(t0_ns, t1_ns)| {
            let (reply, _) = mpsc::channel();
            SessionCommand::FetchRange {
                t0_ns,
                t1_ns,
                reply,
            }
        }),
        (any::<u64>(), 0u64..8192).prop_map(|(seq, limit)| {
            let (reply, _) = mpsc::channel();
            SessionCommand::ReplayFrom { seq, limit, reply }
        }),
    ]
}

fn arb_client_frame() -> impl Strategy<Value = ClientFrame> {
    prop_oneof![
        any::<u32>().prop_map(|version| ClientFrame::Hello { version }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, session)| ClientFrame::Attach { seq, session }),
        (any::<u64>(), arb_command())
            .prop_map(|(seq, command)| ClientFrame::Command { seq, command }),
    ]
}

fn arb_event() -> impl Strategy<Value = EngineEvent> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(session, now_ns)| EngineEvent::SliceCompleted {
            session,
            now_ns,
            report: gmdf::RunReport {
                events_fed: (session % 100) as usize,
                violations: (now_ns % 3) as usize,
                breakpoint_hit: session % 2 == 0,
            },
        }),
        (any::<u64>(), 0u64..5).prop_map(|(session, n)| EngineEvent::TraceDelta {
            session,
            entries: (0..n)
                .map(|seq| gmdf_engine::TraceEntry {
                    seq,
                    event: gmdf_gdm::ModelEvent::new(seq * 17, EventKind::StateEnter, "A/fsm")
                        .with_to("Run"),
                    reactions: vec![],
                    violations: if seq % 2 == 0 {
                        vec![format!("violation {seq}")]
                    } else {
                        vec![]
                    },
                })
                .collect(),
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(session, seq)| EngineEvent::Violation {
            session,
            seq,
            message: format!("out of range at {seq}"),
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, seq, time_ns)| {
            EngineEvent::BreakpointHit {
                session,
                seq,
                time_ns,
            }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, now_ns)| EngineEvent::Idle { session, now_ns }),
        any::<u64>().prop_map(|session| EngineEvent::Error {
            session,
            message: "boom \"quoted\"\nline".to_owned(),
        }),
        (any::<u64>(), 1u64..u64::MAX)
            .prop_map(|(session, dropped)| EngineEvent::Lagged { session, dropped }),
    ]
}

fn arb_server_frame() -> impl Strategy<Value = ServerFrame> {
    prop_oneof![
        (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..5)).prop_map(
            |(version, sessions)| ServerFrame::HelloAck {
                version,
                sessions,
                quarantined: vec![gmdf_server::QuarantinedSession {
                    session: 9,
                    reason: "journal truncated".to_owned(),
                }],
            }
        ),
        any::<u64>().prop_map(|seq| ServerFrame::Ack { seq }),
        proptest::option::of(any::<u64>()).prop_map(|seq| ServerFrame::Error {
            seq,
            message: "unknown session 9".to_owned(),
        }),
        arb_event().prop_map(|event| ServerFrame::Event { event }),
        (any::<u64>(), any::<u64>(), 0u64..4, any::<bool>()).prop_map(
            |(seq, session, n, complete)| ServerFrame::Trace {
                seq,
                slice: gmdf_server::TraceSlice {
                    session,
                    first_seq: seq,
                    entries: (0..n)
                        .map(|i| gmdf_engine::TraceEntry {
                            seq: seq + i,
                            event: gmdf_gdm::ModelEvent::new(
                                i * 31,
                                EventKind::SignalWrite,
                                "A/out/u",
                            ),
                            reactions: vec![],
                            violations: vec![],
                        })
                        .collect(),
                    end_seq: seq.saturating_add(n),
                    complete,
                },
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Client frames survive encode → arbitrary re-chunking → decode:
    /// the deframer completes frames that straddle any read boundary,
    /// and the decoded command serializes back to the same JSON.
    #[test]
    fn client_frames_roundtrip_over_any_chunking(
        frames in proptest::collection::vec(arb_client_frame(), 1..8),
        chunk_sizes in proptest::collection::vec(1usize..37, 1..16),
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&encode_frame(frame).unwrap());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let (mut pos, mut k) = (0, 0);
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            decoder.feed(&wire[pos..pos + n]);
            while let Some(payload) = decoder.next_payload().unwrap() {
                got.push(decode_payload::<ClientFrame>(&payload).unwrap());
            }
            pos += n;
            k += 1;
        }
        prop_assert_eq!(decoder.buffered(), 0);
        prop_assert_eq!(got.len(), frames.len());
        for (sent, received) in frames.iter().zip(&got) {
            prop_assert_eq!(json_of(sent), json_of(received));
        }
    }

    /// Server frames — including every `EngineEvent` variant — survive
    /// the same treatment.
    #[test]
    fn server_frames_roundtrip_over_any_chunking(
        frames in proptest::collection::vec(arb_server_frame(), 1..8),
        chunk_sizes in proptest::collection::vec(1usize..53, 1..16),
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&encode_frame(frame).unwrap());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let (mut pos, mut k) = (0, 0);
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            decoder.feed(&wire[pos..pos + n]);
            while let Some(payload) = decoder.next_payload().unwrap() {
                got.push(decode_payload::<ServerFrame>(&payload).unwrap());
            }
            pos += n;
            k += 1;
        }
        prop_assert_eq!(got.len(), frames.len());
        for (sent, received) in frames.iter().zip(&got) {
            prop_assert_eq!(json_of(sent), json_of(received));
        }
    }
}

#[test]
fn oversized_frame_length_is_rejected() {
    let mut decoder = FrameDecoder::new();
    decoder.feed(&u32::MAX.to_be_bytes());
    assert!(decoder.next_payload().is_err());
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

#[test]
fn handshake_lists_hosted_sessions() {
    let (server, wire) = wired_server(ServerConfig::default());
    let a = server.add_session(active_session(blinker_system("hs_a", 0.002, 1_000_000)));
    let b = server.add_session(active_session(blinker_system("hs_b", 0.002, 1_000_000)));
    let client = WireClient::connect(wire.local_addr()).expect("handshake");
    assert_eq!(client.sessions(), &[a.id(), b.id()]);
}

#[test]
fn version_mismatch_is_rejected() {
    let (_server, wire) = wired_server(ServerConfig::default());
    // A raw socket speaking a future protocol revision.
    let mut raw = std::net::TcpStream::connect(wire.local_addr()).expect("connect");
    raw.write_all(
        &encode_frame(&ClientFrame::Hello {
            version: WIRE_VERSION + 1,
        })
        .expect("encodes"),
    )
    .expect("send hello");
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 1024];
    let reply = loop {
        if let Some(payload) = decoder.next_payload().expect("frame") {
            break decode_payload::<ServerFrame>(&payload).expect("decodes");
        }
        let n = raw.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed without replying");
        decoder.feed(&chunk[..n]);
    };
    let ServerFrame::Error { message, .. } = reply else {
        panic!("expected an error frame, got {reply:?}");
    };
    assert!(message.contains("version"), "unexpected message: {message}");
}

#[test]
fn commands_before_attach_are_rejected_and_unknown_sessions_refused() {
    let (_server, wire) = wired_server(ServerConfig::default());
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    match client.run_for(1_000) {
        Err(WireError::Remote(m)) => assert!(m.contains("attach"), "message: {m}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    match client.attach(99) {
        Err(WireError::Remote(m)) => assert!(m.contains("unknown session"), "message: {m}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Fidelity: the acceptance scenario
// ---------------------------------------------------------------------------

/// A remote client attaches, schedules a signal, sets a breakpoint,
/// runs, resumes — and its event stream (BreakpointHit, TraceDelta,
/// everything) is byte-identical, after the JSON round-trip, to an
/// in-process subscriber of the very same run. So is the final trace.
#[test]
fn wire_stream_is_byte_identical_to_in_process_broadcast() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 333_333,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("fid", 0.002, 1_000_000)));
    let local = handle.subscribe();
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");

    // Drive the whole scenario over the wire.
    client
        .schedule_signal(500_000, "lamp", SignalValue::Bool(true))
        .expect("signal");
    client
        .add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), true)
        .expect("breakpoint");
    client.run_for(HORIZON_NS).expect("run");
    client.wait_idle(WAIT).expect("idle");
    client.resume().expect("resume");
    client.wait_idle(WAIT).expect("drained");

    // In-process ground truth, from this run's own broadcast. Drain
    // until a full second of silence: the final deltas are published
    // moments after the snapshot that ended wait_idle, and a loaded
    // machine may deschedule the worker mid-turn.
    let mut local_events: Vec<EngineEvent> = Vec::new();
    while let Ok(event) = local.recv_timeout(Duration::from_secs(1)) {
        local_events.push(event);
    }
    assert!(
        local_events
            .iter()
            .any(|e| matches!(e, EngineEvent::BreakpointHit { .. })),
        "scenario must hit the breakpoint"
    );
    assert!(
        local_events
            .iter()
            .any(|e| matches!(e, EngineEvent::TraceDelta { .. })),
        "scenario must stream trace deltas"
    );

    // The wire must deliver exactly the same stream: read event-for-
    // event (a generous per-event timeout, robust to load), then prove
    // nothing extra follows.
    let mut wire_events = Vec::new();
    while wire_events.len() < local_events.len() {
        match client.next_event(WAIT) {
            Ok(event) => wire_events.push(event),
            Err(e) => panic!(
                "wire stream ended after {} of {} events: {e}",
                wire_events.len(),
                local_events.len()
            ),
        }
    }
    if let Ok(extra) = client.next_event(Duration::from_millis(300)) {
        panic!("wire stream carries an extra event: {extra:?}");
    }
    assert_eq!(
        json_of(&local_events),
        json_of(&wire_events),
        "wire stream diverged from the in-process broadcast"
    );

    // The snapshot trace also survives the wire byte for byte.
    let remote_snap = client.snapshot(true, WAIT).expect("remote snapshot");
    let local_snap = handle.snapshot(WAIT).expect("local snapshot");
    assert_eq!(remote_snap.trace_json, local_snap.trace_json);
    assert_eq!(remote_snap.trace_len, local_snap.trace_len);
    assert!(remote_snap.breakpoint_hits >= 1);
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

/// An in-process subscriber with a tiny bounded queue: the queue never
/// exceeds its capacity, loss is announced by `Lagged`, surviving
/// deltas stay ordered, and the recorded trace is untouched.
#[test]
fn bounded_subscriber_overflow_is_visible_and_bounded() {
    let reference = {
        let mut session = active_session(blinker_system("bp", 0.002, 1_000_000));
        session.run_for(HORIZON_NS).unwrap();
        session.engine().trace().to_json()
    };
    let server = DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("bp", 0.002, 1_000_000)));
    let capacity = 4;
    let sub = handle.subscribe_with_capacity(capacity);
    handle.run_for(HORIZON_NS).unwrap();
    // Stalled consumer: never drains while the run is live, but keeps
    // checking that the queue respects its bound.
    loop {
        assert!(sub.len() <= capacity, "queue exceeded its capacity");
        match handle.wait_idle(Duration::from_millis(1)) {
            Ok(()) => break,
            Err(gmdf_server::ServerError::Timeout) => continue,
            Err(e) => panic!("wait_idle failed: {e}"),
        }
    }
    let events: Vec<EngineEvent> = sub.try_iter().collect();
    assert!(events.len() <= capacity + 1, "drain exceeded capacity");
    let lagged: u64 = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Lagged { dropped, .. } => Some(*dropped),
            _ => None,
        })
        .sum();
    assert!(lagged > 0, "a stalled subscriber must be told it lagged");
    // Surviving trace entries arrive in order (gaps only at the loss).
    let mut last_seq = None;
    for event in &events {
        if let EngineEvent::TraceDelta { entries, .. } = event {
            for entry in entries {
                assert!(last_seq.is_none_or(|s| entry.seq > s), "reordered delta");
                last_seq = Some(entry.seq);
            }
        }
    }
    // The run itself is untouched: byte-identical trace.
    let snapshot = handle.snapshot(WAIT).unwrap();
    assert_eq!(snapshot.trace_json.as_deref(), Some(reference.as_str()));
}

/// A wire client that attaches and then never reads: its socket stalls,
/// its queue overflows — and the scheduler still finishes the horizon
/// at full cadence with a byte-identical trace. When the client finally
/// drains, it finds a `Lagged` marker in-stream.
#[test]
fn stalled_wire_client_never_wedges_the_pump() {
    let reference = {
        let mut session = active_session(blinker_system("stall", 0.002, 1_000_000));
        session.run_for(HORIZON_NS).unwrap();
        session.engine().trace().to_json()
    };
    let (server, wire) = wired_server(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        // Tiny queues so the stall bites long before TCP buffers could
        // mask it.
        subscriber_capacity: 2,
        metrics: true,
    });
    let handle = server.add_session(active_session(blinker_system("stall", 0.002, 1_000_000)));
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    // Stall: from here on the client reads nothing while the server
    // pumps 80 slices' worth of events at it.
    let t0 = Instant::now();
    handle.run_for(HORIZON_NS).unwrap();
    handle.wait_idle(WAIT).expect("pump must not be wedged");
    let pumped_in = t0.elapsed();
    assert!(
        pumped_in < WAIT,
        "wait_idle returned but took implausibly long: {pumped_in:?}"
    );
    let snapshot = handle.snapshot(WAIT).unwrap();
    assert_eq!(
        snapshot.trace_json.as_deref(),
        Some(reference.as_str()),
        "a stalled subscriber must not change the run"
    );
    // The client wakes up and finds the loss marker in its stream.
    let deadline = Instant::now() + WAIT;
    let mut saw_lagged = false;
    while Instant::now() < deadline {
        match client.next_event(Duration::from_millis(200)) {
            Ok(EngineEvent::Lagged { dropped, .. }) => {
                assert!(dropped > 0);
                saw_lagged = true;
                break;
            }
            Ok(_) => {}
            // Keep waiting out the overall deadline: a loaded machine
            // may open >200 ms gaps mid-stream.
            Err(WireError::Timeout) => {}
            Err(e) => panic!("stream error: {e}"),
        }
    }
    assert!(saw_lagged, "the stalled client was never told it lagged");
}

/// Concurrent wire clients on different sessions do not interfere:
/// each stream reassembles its own session's dense trace.
#[test]
fn two_wire_clients_stream_independent_sessions() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    });
    let h1 = server.add_session(active_session(blinker_system("w1", 0.002, 1_000_000)));
    let h2 = server.add_session(active_session(blinker_system("w2", 0.003, 1_000_000)));
    let mut c1 = WireClient::connect(wire.local_addr()).expect("c1");
    let mut c2 = WireClient::connect(wire.local_addr()).expect("c2");
    c1.attach(h1.id()).expect("attach 1");
    c2.attach(h2.id()).expect("attach 2");
    c1.run_for(HORIZON_NS).expect("run 1");
    c2.run_for(HORIZON_NS).expect("run 2");
    c1.wait_idle(WAIT).expect("idle 1");
    c2.wait_idle(WAIT).expect("idle 2");
    for (client, handle) in [(&mut c1, &h1), (&mut c2, &h2)] {
        // The snapshot tells us how many trace entries the stream must
        // deliver; read until they all arrived (generous per-event
        // timeout — a fixed silence window is flaky under load).
        let snap = client.snapshot(false, WAIT).expect("snapshot");
        let mut seqs = Vec::new();
        while seqs.len() < snap.trace_len {
            match client.next_event(WAIT) {
                Ok(event) => {
                    assert_eq!(event.session(), handle.id(), "cross-session event leak");
                    if let EngineEvent::TraceDelta { entries, .. } = event {
                        seqs.extend(entries.iter().map(|e| e.seq));
                    }
                }
                Err(e) => panic!(
                    "stream ended after {} of {} entries: {e}",
                    seqs.len(),
                    snap.trace_len
                ),
            }
        }
        let expected: Vec<u64> = (0..snap.trace_len as u64).collect();
        assert_eq!(seqs, expected, "stream must carry the dense trace");
    }
}

/// A client that attaches mid-run must not lose post-subscription
/// events — including any the streamer writes ahead of the attach Ack.
/// Received deltas must be gapless from the first seen entry through
/// the end of the recorded trace.
#[test]
fn late_join_stream_is_gapless_from_the_subscription_point() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("late", 0.002, 1_000_000)));
    handle.run_for(10 * HORIZON_NS).unwrap();
    // Attach while the run is (very likely) still in flight.
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    client.wait_idle(WAIT).expect("idle");
    let snap = client.snapshot(false, WAIT).expect("snapshot");
    let mut seqs: Vec<u64> = Vec::new();
    while let Ok(event) = client.next_event(Duration::from_secs(1)) {
        if let EngineEvent::TraceDelta { entries, .. } = event {
            seqs.extend(entries.iter().map(|e| e.seq));
        }
    }
    if let (Some(&first), Some(&last)) = (seqs.first(), seqs.last()) {
        let expected: Vec<u64> = (first..=last).collect();
        assert_eq!(seqs, expected, "late-join stream has gaps or reordering");
        assert_eq!(
            last as usize + 1,
            snap.trace_len,
            "late-join stream must run through the end of the trace"
        );
    }
}

/// A duplicate Hello is a connection-level violation: the server
/// answers a seq-less Error and closes, as the protocol contract says.
#[test]
fn duplicate_hello_closes_the_connection() {
    let (_server, wire) = wired_server(ServerConfig::default());
    let mut raw = std::net::TcpStream::connect(wire.local_addr()).expect("connect");
    raw.write_all(
        &encode_frame(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("encodes"),
    )
    .expect("hello");
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 4096];
    let mut read_frame = |raw: &mut std::net::TcpStream, decoder: &mut FrameDecoder| loop {
        if let Some(payload) = decoder.next_payload().expect("frame") {
            break Some(decode_payload::<ServerFrame>(&payload).expect("decodes"));
        }
        match raw.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => decoder.feed(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    };
    assert!(matches!(
        read_frame(&mut raw, &mut decoder),
        Some(ServerFrame::HelloAck { .. })
    ));
    raw.write_all(
        &encode_frame(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("encodes"),
    )
    .expect("duplicate hello");
    assert!(matches!(
        read_frame(&mut raw, &mut decoder),
        Some(ServerFrame::Error { seq: None, .. })
    ));
    // The server hangs up; the stream drains to EOF.
    assert!(read_frame(&mut raw, &mut decoder).is_none());
}
