//! The wire layer's contracts:
//!
//! * **codec** — every v4 `ClientFrame`/`ServerFrame` variant
//!   (session-tagged envelope, directory frames, auth'd `Hello`)
//!   round-trips through encode → arbitrary chunking → decode (the
//!   per-byte-vs-batched UART pattern, applied to the TCP framing);
//! * **fidelity** — a remote client driving a session over localhost
//!   TCP receives an event stream byte-identical (after JSON
//!   round-trip) to an in-process subscriber of the same run, and the
//!   snapshot trace matches byte for byte;
//! * **multiplexing** — one socket attaches many sessions
//!   (`attach_many`), demultiplexes the merged stream per session,
//!   survives detach/re-attach with straggler filtering, and a
//!   200-client fan-out over a 32-session fleet on a single listener
//!   stays byte-identical per attach with two server threads per
//!   connection;
//! * **backpressure** — a deliberately stalled client (or one stalled
//!   attach among healthy siblings on the same socket) overflows its
//!   own bounded queue (coalesce, then drop + `Lagged`), while the
//!   scheduler pump finishes on time and the recorded trace is
//!   unaffected;
//! * **auth** — a server with a shared-secret token refuses absent and
//!   wrong tokens with one generic message and accepts the right one.

mod common;

use common::{active_session, blinker_system};
use gmdf_comdes::SignalValue;
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::proto::{
    decode_payload, encode_frame, ClientFrame, FrameDecoder, ServerFrame, WIRE_VERSION,
};
use gmdf_server::{
    DebugServer, EngineEvent, HealthState, ServerConfig, SessionCommand, SessionInfo, WireClient,
    WireError, WireServer,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(60);
const HORIZON_NS: u64 = 20_000_000;

fn wired_server(config: ServerConfig) -> (Arc<DebugServer>, WireServer) {
    let server = Arc::new(DebugServer::start(config));
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    (server, wire)
}

/// JSON text of a frame — the canonical comparison form (commands have
/// no `PartialEq`; events get the same treatment for symmetry).
fn json_of<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

// ---------------------------------------------------------------------------
// Codec properties
// ---------------------------------------------------------------------------

fn arb_command() -> impl Strategy<Value = SessionCommand> {
    prop_oneof![
        (0u64..u64::MAX / 2, any::<bool>()).prop_map(|(t, b)| SessionCommand::ScheduleSignal {
            time_ns: t,
            label: format!("sig{}", t % 7),
            value: if b {
                SignalValue::Bool(t % 2 == 0)
            } else {
                SignalValue::Real(t as f64 * 0.125)
            },
        }),
        any::<bool>().prop_map(|one_shot| SessionCommand::AddBreakpoint {
            matcher: CommandMatcher::kind(EventKind::StateEnter).under("A/fsm"),
            one_shot,
        }),
        Just(SessionCommand::ClearBreakpoints),
        Just(SessionCommand::Step),
        Just(SessionCommand::Resume),
        (1u64..u64::MAX / 2).prop_map(|duration_ns| SessionCommand::RunFor { duration_ns }),
        any::<bool>().prop_map(|include_trace| {
            let (reply, _) = mpsc::channel();
            SessionCommand::Snapshot {
                reply,
                include_trace,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(t0_ns, t1_ns)| {
            let (reply, _) = mpsc::channel();
            SessionCommand::FetchRange {
                t0_ns,
                t1_ns,
                reply,
            }
        }),
        (any::<u64>(), 0u64..8192).prop_map(|(seq, limit)| {
            let (reply, _) = mpsc::channel();
            SessionCommand::ReplayFrom { seq, limit, reply }
        }),
    ]
}

fn arb_client_frame() -> impl Strategy<Value = ClientFrame> {
    prop_oneof![
        (any::<u32>(), proptest::option::of("[ -~]{0,24}"))
            .prop_map(|(version, token)| ClientFrame::Hello { version, token }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(seq, session, capacity)| ClientFrame::Attach {
                seq,
                session,
                capacity,
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, session)| ClientFrame::Detach { seq, session }),
        any::<u64>().prop_map(|seq| ClientFrame::ListSessions { seq }),
        any::<u64>().prop_map(|seq| ClientFrame::ListMetrics { seq }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, session)| ClientFrame::Analyze { seq, session }),
        (any::<u64>(), any::<u64>(), arb_command()).prop_map(|(seq, session, command)| {
            ClientFrame::Command {
                seq,
                session,
                command,
            }
        }),
    ]
}

fn arb_event() -> impl Strategy<Value = EngineEvent> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(session, now_ns)| EngineEvent::SliceCompleted {
            session,
            now_ns,
            report: gmdf::RunReport {
                events_fed: (session % 100) as usize,
                violations: (now_ns % 3) as usize,
                breakpoint_hit: session % 2 == 0,
            },
        }),
        (any::<u64>(), 0u64..5).prop_map(|(session, n)| EngineEvent::TraceDelta {
            session,
            entries: (0..n)
                .map(|seq| gmdf_engine::TraceEntry {
                    seq,
                    event: gmdf_gdm::ModelEvent::new(seq * 17, EventKind::StateEnter, "A/fsm")
                        .with_to("Run"),
                    reactions: vec![],
                    violations: if seq % 2 == 0 {
                        vec![format!("violation {seq}")]
                    } else {
                        vec![]
                    },
                })
                .collect(),
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(session, seq)| EngineEvent::Violation {
            session,
            seq,
            message: format!("out of range at {seq}"),
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, seq, time_ns)| {
            EngineEvent::BreakpointHit {
                session,
                seq,
                time_ns,
            }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, now_ns)| EngineEvent::Idle { session, now_ns }),
        any::<u64>().prop_map(|session| EngineEvent::Error {
            session,
            message: "boom \"quoted\"\nline".to_owned(),
        }),
        (any::<u64>(), 1u64..u64::MAX)
            .prop_map(|(session, dropped)| EngineEvent::Lagged { session, dropped }),
    ]
}

fn arb_server_frame() -> impl Strategy<Value = ServerFrame> {
    prop_oneof![
        (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..5)).prop_map(
            |(version, sessions)| ServerFrame::HelloAck {
                version,
                sessions,
                quarantined: vec![gmdf_server::QuarantinedSession {
                    session: 9,
                    reason: "journal truncated".to_owned(),
                }],
            }
        ),
        any::<u64>().prop_map(|seq| ServerFrame::Ack { seq }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..5)
        )
            .prop_map(|(seq, rows)| ServerFrame::Sessions {
                seq,
                sessions: rows
                    .into_iter()
                    .map(|(session, now_ns, trace_len)| SessionInfo {
                        session,
                        state: match session % 3 {
                            0 => HealthState::Running,
                            1 => HealthState::Parked,
                            _ => HealthState::Failed,
                        },
                        now_ns,
                        trace_len,
                        diagnostics: (session % 2, trace_len % 5),
                    })
                    .collect(),
            }),
        (any::<u64>(), any::<u64>(), 0u64..3).prop_map(|(seq, wcrt, n)| {
            ServerFrame::Analysis {
                seq,
                report: Box::new(gmdf_server::AnalysisReport {
                    system: "sys".to_owned(),
                    nodes: vec![gmdf_server::NodeReport {
                        node: "n0".to_owned(),
                        cpu_hz: 50_000_000,
                        utilization_ppm: wcrt % 2_000_000,
                        overutilized: wcrt % 2 == 0,
                        hyperperiod_ns: if wcrt % 3 == 0 {
                            None
                        } else {
                            Some(u128::from(wcrt) << 64)
                        },
                        tasks: (0..n)
                            .map(|i| gmdf_server::TaskReport {
                                actor: format!("A{i}"),
                                period_ns: 1_000_000 + i,
                                deadline_ns: 1_000_000,
                                priority: (i % 4) as u8,
                                wcet_cycles: wcrt % 10_000,
                                wcet_ns: wcrt % 500_000,
                                release_jitter_ns: i * 13,
                                verdict: match i % 3 {
                                    0 => gmdf_server::TaskVerdict::Schedulable { wcrt_ns: wcrt },
                                    1 => gmdf_server::TaskVerdict::DeadlineRisk { bound_ns: wcrt },
                                    _ => gmdf_server::TaskVerdict::Overutilized,
                                },
                            })
                            .collect(),
                    }],
                    diagnostics: (0..n)
                        .map(|i| gmdf_server::Diagnostic {
                            severity: match i % 3 {
                                0 => gmdf_server::Severity::Info,
                                1 => gmdf_server::Severity::Warning,
                                _ => gmdf_server::Severity::Error,
                            },
                            location: format!("n0/A{i}"),
                            message: format!("finding {i} \"quoted\""),
                            pass: match i % 3 {
                                0 => gmdf_server::Pass::Lint,
                                1 => gmdf_server::Pass::Schedulability,
                                _ => gmdf_server::Pass::Routes,
                            },
                        })
                        .collect(),
                }),
            }
        }),
        proptest::option::of(any::<u64>()).prop_map(|seq| ServerFrame::Error {
            seq,
            message: "unknown session 9".to_owned(),
        }),
        arb_event().prop_map(|event| ServerFrame::Event { event }),
        (any::<u64>(), any::<u64>(), 0u64..4, any::<bool>()).prop_map(
            |(seq, session, n, complete)| ServerFrame::Trace {
                seq,
                slice: gmdf_server::TraceSlice {
                    session,
                    first_seq: seq,
                    entries: (0..n)
                        .map(|i| gmdf_engine::TraceEntry {
                            seq: seq + i,
                            event: gmdf_gdm::ModelEvent::new(
                                i * 31,
                                EventKind::SignalWrite,
                                "A/out/u",
                            ),
                            reactions: vec![],
                            violations: vec![],
                        })
                        .collect(),
                    end_seq: seq.saturating_add(n),
                    complete,
                },
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Client frames survive encode → arbitrary re-chunking → decode:
    /// the deframer completes frames that straddle any read boundary,
    /// and the decoded command serializes back to the same JSON.
    #[test]
    fn client_frames_roundtrip_over_any_chunking(
        frames in proptest::collection::vec(arb_client_frame(), 1..8),
        chunk_sizes in proptest::collection::vec(1usize..37, 1..16),
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&encode_frame(frame).unwrap());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let (mut pos, mut k) = (0, 0);
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            decoder.feed(&wire[pos..pos + n]);
            while let Some(payload) = decoder.next_payload().unwrap() {
                got.push(decode_payload::<ClientFrame>(&payload).unwrap());
            }
            pos += n;
            k += 1;
        }
        prop_assert_eq!(decoder.buffered(), 0);
        prop_assert_eq!(got.len(), frames.len());
        for (sent, received) in frames.iter().zip(&got) {
            prop_assert_eq!(json_of(sent), json_of(received));
        }
    }

    /// Server frames — including every `EngineEvent` variant — survive
    /// the same treatment.
    #[test]
    fn server_frames_roundtrip_over_any_chunking(
        frames in proptest::collection::vec(arb_server_frame(), 1..8),
        chunk_sizes in proptest::collection::vec(1usize..53, 1..16),
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&encode_frame(frame).unwrap());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let (mut pos, mut k) = (0, 0);
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            decoder.feed(&wire[pos..pos + n]);
            while let Some(payload) = decoder.next_payload().unwrap() {
                got.push(decode_payload::<ServerFrame>(&payload).unwrap());
            }
            pos += n;
            k += 1;
        }
        prop_assert_eq!(got.len(), frames.len());
        for (sent, received) in frames.iter().zip(&got) {
            prop_assert_eq!(json_of(sent), json_of(received));
        }
    }
}

#[test]
fn oversized_frame_length_is_rejected() {
    let mut decoder = FrameDecoder::new();
    decoder.feed(&u32::MAX.to_be_bytes());
    assert!(decoder.next_payload().is_err());
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

#[test]
fn handshake_lists_hosted_sessions() {
    let (server, wire) = wired_server(ServerConfig::default());
    let a = server.add_session(active_session(blinker_system("hs_a", 0.002, 1_000_000)));
    let b = server.add_session(active_session(blinker_system("hs_b", 0.002, 1_000_000)));
    let client = WireClient::connect(wire.local_addr()).expect("handshake");
    assert_eq!(client.sessions(), &[a.id(), b.id()]);
}

#[test]
fn version_mismatch_is_rejected() {
    let (_server, wire) = wired_server(ServerConfig::default());
    // A raw socket speaking a future protocol revision.
    let mut raw = std::net::TcpStream::connect(wire.local_addr()).expect("connect");
    raw.write_all(
        &encode_frame(&ClientFrame::Hello {
            version: WIRE_VERSION + 1,
            token: None,
        })
        .expect("encodes"),
    )
    .expect("send hello");
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 1024];
    let reply = loop {
        if let Some(payload) = decoder.next_payload().expect("frame") {
            break decode_payload::<ServerFrame>(&payload).expect("decodes");
        }
        let n = raw.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed without replying");
        decoder.feed(&chunk[..n]);
    };
    let ServerFrame::Error { message, .. } = reply else {
        panic!("expected an error frame, got {reply:?}");
    };
    assert!(message.contains("version"), "unexpected message: {message}");
}

/// v4 commands are session-addressed, so no attach is required before a
/// command — but the addressed session must exist, and so must an
/// attach target. Detaching a never-attached session is idempotent.
#[test]
fn unknown_sessions_are_refused_and_detach_is_idempotent() {
    let (_server, wire) = wired_server(ServerConfig::default());
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    match client.run_for(99, 1_000) {
        Err(WireError::Remote(m)) => assert!(m.contains("unknown session"), "message: {m}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    match client.attach(99) {
        Err(WireError::Remote(m)) => assert!(m.contains("unknown session"), "message: {m}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    // Detach acks even for sessions that were never attached (or do
    // not exist): the post-state "not attached" already holds.
    client.detach(99).expect("detach is idempotent");
}

/// Wire v5 `Analyze`: a remote client's report is identical to the
/// in-process cached one, the directory rows carry its
/// `(errors, warnings)` summary, and unknown sessions get a remote
/// error, all without any attach.
#[test]
fn analyze_round_trips_and_directory_carries_diagnostics() {
    let (server, wire) = wired_server(ServerConfig::default());
    let handle = server.add_session(active_session(blinker_system("ana", 0.002, 1_000_000)));
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");

    let remote = client.analyze(handle.id(), WAIT).expect("analysis reply");
    let local = handle.analysis();
    assert_eq!(json_of(&remote), json_of(&*local));
    // The default blinker preset is lightly loaded: verdicts must all
    // be Schedulable and nothing may be refused.
    assert!(remote.all_schedulable(), "report: {remote:?}");

    let rows = client.list_sessions(WAIT).expect("directory");
    let row = rows
        .iter()
        .find(|r| r.session == handle.id())
        .expect("session row");
    assert_eq!(row.diagnostics, local.diagnostic_counts());

    match client.analyze(99, WAIT) {
        Err(WireError::Remote(m)) => assert!(m.contains("unknown session"), "message: {m}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Fidelity: the acceptance scenario
// ---------------------------------------------------------------------------

/// A remote client attaches, schedules a signal, sets a breakpoint,
/// runs, resumes — and its event stream (BreakpointHit, TraceDelta,
/// everything) is byte-identical, after the JSON round-trip, to an
/// in-process subscriber of the very same run. So is the final trace.
#[test]
fn wire_stream_is_byte_identical_to_in_process_broadcast() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 333_333,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("fid", 0.002, 1_000_000)));
    let local = handle.subscribe();
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");

    // Drive the whole scenario over the wire.
    client
        .schedule_signal(handle.id(), 500_000, "lamp", SignalValue::Bool(true))
        .expect("signal");
    client
        .add_breakpoint(
            handle.id(),
            CommandMatcher::kind(EventKind::StateEnter),
            true,
        )
        .expect("breakpoint");
    client.run_for(handle.id(), HORIZON_NS).expect("run");
    client.wait_idle(handle.id(), WAIT).expect("idle");
    client.resume(handle.id()).expect("resume");
    client.wait_idle(handle.id(), WAIT).expect("drained");

    // In-process ground truth, from this run's own broadcast. Drain
    // until a full second of silence: the final deltas are published
    // moments after the snapshot that ended wait_idle, and a loaded
    // machine may deschedule the worker mid-turn.
    let mut local_events: Vec<EngineEvent> = Vec::new();
    while let Ok(event) = local.recv_timeout(Duration::from_secs(1)) {
        local_events.push(event);
    }
    assert!(
        local_events
            .iter()
            .any(|e| matches!(e, EngineEvent::BreakpointHit { .. })),
        "scenario must hit the breakpoint"
    );
    assert!(
        local_events
            .iter()
            .any(|e| matches!(e, EngineEvent::TraceDelta { .. })),
        "scenario must stream trace deltas"
    );

    // The wire must deliver exactly the same stream: read event-for-
    // event (a generous per-event timeout, robust to load), then prove
    // nothing extra follows.
    let mut wire_events = Vec::new();
    while wire_events.len() < local_events.len() {
        match client.next_event(WAIT) {
            Ok(event) => wire_events.push(event),
            Err(e) => panic!(
                "wire stream ended after {} of {} events: {e}",
                wire_events.len(),
                local_events.len()
            ),
        }
    }
    if let Ok(extra) = client.next_event(Duration::from_millis(300)) {
        panic!("wire stream carries an extra event: {extra:?}");
    }
    assert_eq!(
        json_of(&local_events),
        json_of(&wire_events),
        "wire stream diverged from the in-process broadcast"
    );

    // The snapshot trace also survives the wire byte for byte.
    let remote_snap = client
        .snapshot(handle.id(), true, WAIT)
        .expect("remote snapshot");
    let local_snap = handle.snapshot(WAIT).expect("local snapshot");
    assert_eq!(remote_snap.trace_json, local_snap.trace_json);
    assert_eq!(remote_snap.trace_len, local_snap.trace_len);
    assert!(remote_snap.breakpoint_hits >= 1);
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

/// An in-process subscriber with a tiny bounded queue: the queue never
/// exceeds its capacity, loss is announced by `Lagged`, surviving
/// deltas stay ordered, and the recorded trace is untouched.
#[test]
fn bounded_subscriber_overflow_is_visible_and_bounded() {
    let reference = {
        let mut session = active_session(blinker_system("bp", 0.002, 1_000_000));
        session.run_for(HORIZON_NS).unwrap();
        session.engine().trace().to_json()
    };
    let server = DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("bp", 0.002, 1_000_000)));
    let capacity = 4;
    let sub = handle.subscribe_with_capacity(capacity);
    handle.run_for(HORIZON_NS).unwrap();
    // Stalled consumer: never drains while the run is live, but keeps
    // checking that the queue respects its bound.
    loop {
        assert!(sub.len() <= capacity, "queue exceeded its capacity");
        match handle.wait_idle(Duration::from_millis(1)) {
            Ok(()) => break,
            Err(gmdf_server::ServerError::Timeout) => continue,
            Err(e) => panic!("wait_idle failed: {e}"),
        }
    }
    let events: Vec<EngineEvent> = sub.try_iter().collect();
    assert!(events.len() <= capacity + 1, "drain exceeded capacity");
    let lagged: u64 = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Lagged { dropped, .. } => Some(*dropped),
            _ => None,
        })
        .sum();
    assert!(lagged > 0, "a stalled subscriber must be told it lagged");
    // Surviving trace entries arrive in order (gaps only at the loss).
    let mut last_seq = None;
    for event in &events {
        if let EngineEvent::TraceDelta { entries, .. } = event {
            for entry in entries {
                assert!(last_seq.is_none_or(|s| entry.seq > s), "reordered delta");
                last_seq = Some(entry.seq);
            }
        }
    }
    // The run itself is untouched: byte-identical trace.
    let snapshot = handle.snapshot(WAIT).unwrap();
    assert_eq!(snapshot.trace_json.as_deref(), Some(reference.as_str()));
}

/// A wire client that attaches and then never reads: its socket stalls,
/// its queue overflows — and the scheduler still finishes the horizon
/// at full cadence with a byte-identical trace. When the client finally
/// drains, it finds a `Lagged` marker in-stream.
#[test]
fn stalled_wire_client_never_wedges_the_pump() {
    let reference = {
        let mut session = active_session(blinker_system("stall", 0.002, 1_000_000));
        session.run_for(HORIZON_NS).unwrap();
        session.engine().trace().to_json()
    };
    let (server, wire) = wired_server(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        // Tiny queues so the stall bites long before TCP buffers could
        // mask it.
        subscriber_capacity: 2,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("stall", 0.002, 1_000_000)));
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    // Stall: from here on the client reads nothing while the server
    // pumps 80 slices' worth of events at it.
    let t0 = Instant::now();
    handle.run_for(HORIZON_NS).unwrap();
    handle.wait_idle(WAIT).expect("pump must not be wedged");
    let pumped_in = t0.elapsed();
    assert!(
        pumped_in < WAIT,
        "wait_idle returned but took implausibly long: {pumped_in:?}"
    );
    let snapshot = handle.snapshot(WAIT).unwrap();
    assert_eq!(
        snapshot.trace_json.as_deref(),
        Some(reference.as_str()),
        "a stalled subscriber must not change the run"
    );
    // The client wakes up and finds the loss marker in its stream.
    let deadline = Instant::now() + WAIT;
    let mut saw_lagged = false;
    while Instant::now() < deadline {
        match client.next_event(Duration::from_millis(200)) {
            Ok(EngineEvent::Lagged { dropped, .. }) => {
                assert!(dropped > 0);
                saw_lagged = true;
                break;
            }
            Ok(_) => {}
            // Keep waiting out the overall deadline: a loaded machine
            // may open >200 ms gaps mid-stream.
            Err(WireError::Timeout) => {}
            Err(e) => panic!("stream error: {e}"),
        }
    }
    assert!(saw_lagged, "the stalled client was never told it lagged");
}

/// Concurrent wire clients on different sessions do not interfere:
/// each stream reassembles its own session's dense trace.
#[test]
fn two_wire_clients_stream_independent_sessions() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    });
    let h1 = server.add_session(active_session(blinker_system("w1", 0.002, 1_000_000)));
    let h2 = server.add_session(active_session(blinker_system("w2", 0.003, 1_000_000)));
    let mut c1 = WireClient::connect(wire.local_addr()).expect("c1");
    let mut c2 = WireClient::connect(wire.local_addr()).expect("c2");
    c1.attach(h1.id()).expect("attach 1");
    c2.attach(h2.id()).expect("attach 2");
    c1.run_for(h1.id(), HORIZON_NS).expect("run 1");
    c2.run_for(h2.id(), HORIZON_NS).expect("run 2");
    c1.wait_idle(h1.id(), WAIT).expect("idle 1");
    c2.wait_idle(h2.id(), WAIT).expect("idle 2");
    for (client, handle) in [(&mut c1, &h1), (&mut c2, &h2)] {
        // The snapshot tells us how many trace entries the stream must
        // deliver; read until they all arrived (generous per-event
        // timeout — a fixed silence window is flaky under load).
        let snap = client.snapshot(handle.id(), false, WAIT).expect("snapshot");
        let mut seqs = Vec::new();
        while seqs.len() < snap.trace_len {
            match client.next_event(WAIT) {
                Ok(event) => {
                    assert_eq!(event.session(), handle.id(), "cross-session event leak");
                    if let EngineEvent::TraceDelta { entries, .. } = event {
                        seqs.extend(entries.iter().map(|e| e.seq));
                    }
                }
                Err(e) => panic!(
                    "stream ended after {} of {} entries: {e}",
                    seqs.len(),
                    snap.trace_len
                ),
            }
        }
        let expected: Vec<u64> = (0..snap.trace_len as u64).collect();
        assert_eq!(seqs, expected, "stream must carry the dense trace");
    }
}

/// A client that attaches mid-run must not lose post-subscription
/// events — including any the streamer writes ahead of the attach Ack.
/// Received deltas must be gapless from the first seen entry through
/// the end of the recorded trace.
#[test]
fn late_join_stream_is_gapless_from_the_subscription_point() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("late", 0.002, 1_000_000)));
    handle.run_for(10 * HORIZON_NS).unwrap();
    // Attach while the run is (very likely) still in flight.
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    client.wait_idle(handle.id(), WAIT).expect("idle");
    let snap = client.snapshot(handle.id(), false, WAIT).expect("snapshot");
    let mut seqs: Vec<u64> = Vec::new();
    while let Ok(event) = client.next_event(Duration::from_secs(1)) {
        if let EngineEvent::TraceDelta { entries, .. } = event {
            seqs.extend(entries.iter().map(|e| e.seq));
        }
    }
    if let (Some(&first), Some(&last)) = (seqs.first(), seqs.last()) {
        let expected: Vec<u64> = (first..=last).collect();
        assert_eq!(seqs, expected, "late-join stream has gaps or reordering");
        assert_eq!(
            last as usize + 1,
            snap.trace_len,
            "late-join stream must run through the end of the trace"
        );
    }
}

/// A duplicate Hello is a connection-level violation: the server
/// answers a seq-less Error and closes, as the protocol contract says.
#[test]
fn duplicate_hello_closes_the_connection() {
    let (_server, wire) = wired_server(ServerConfig::default());
    let mut raw = std::net::TcpStream::connect(wire.local_addr()).expect("connect");
    raw.write_all(
        &encode_frame(&ClientFrame::Hello {
            version: WIRE_VERSION,
            token: None,
        })
        .expect("encodes"),
    )
    .expect("hello");
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 4096];
    let mut read_frame = |raw: &mut std::net::TcpStream, decoder: &mut FrameDecoder| loop {
        if let Some(payload) = decoder.next_payload().expect("frame") {
            break Some(decode_payload::<ServerFrame>(&payload).expect("decodes"));
        }
        match raw.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => decoder.feed(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    };
    assert!(matches!(
        read_frame(&mut raw, &mut decoder),
        Some(ServerFrame::HelloAck { .. })
    ));
    raw.write_all(
        &encode_frame(&ClientFrame::Hello {
            version: WIRE_VERSION,
            token: None,
        })
        .expect("encodes"),
    )
    .expect("duplicate hello");
    assert!(matches!(
        read_frame(&mut raw, &mut decoder),
        Some(ServerFrame::Error { seq: None, .. })
    ));
    // The server hangs up; the stream drains to EOF.
    assert!(read_frame(&mut raw, &mut decoder).is_none());
}

// ---------------------------------------------------------------------------
// Multiplexing: many sessions per socket
// ---------------------------------------------------------------------------

/// Drain an in-process subscriber until a full second of silence (the
/// final deltas land moments after the snapshot that ended wait_idle).
fn drain_local(sub: &gmdf_server::EventReceiver) -> Vec<EngineEvent> {
    let mut events = Vec::new();
    while let Ok(event) = sub.recv_timeout(Duration::from_secs(1)) {
        events.push(event);
    }
    events
}

/// One socket, two sessions: `attach_many` multiplexes both streams
/// over the connection, `next_event_from` demultiplexes them without
/// disturbing the sibling's buffered events, each demuxed stream is
/// byte-identical to an in-process subscriber of the same run, detach
/// filters out stragglers already buffered client-side, and a
/// re-attach starts a fresh subscription on the same socket.
#[test]
fn multi_attach_demux_is_byte_identical_and_filters_stragglers() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        subscriber_capacity: 0, // unbounded: nothing may lag
        ..ServerConfig::default()
    });
    let a = server.add_session(active_session(blinker_system("mux_a", 0.002, 1_000_000)));
    let b = server.add_session(active_session(blinker_system("mux_b", 0.003, 1_000_000)));
    let local_a = a.subscribe_with_capacity(0);
    let local_b = b.subscribe_with_capacity(0);
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach_many(&[a.id(), b.id()]).expect("attach both");
    assert_eq!(client.attached().collect::<Vec<_>>(), vec![a.id(), b.id()]);

    // The live session directory lists both hosted sessions.
    let directory = client.list_sessions(WAIT).expect("directory");
    let listed: Vec<_> = directory.iter().map(|row| row.session).collect();
    assert!(listed.contains(&a.id()) && listed.contains(&b.id()));

    // Drive both sessions over the one socket.
    client.run_for(a.id(), HORIZON_NS).expect("run a");
    client.run_for(b.id(), HORIZON_NS).expect("run b");
    client.wait_idle(a.id(), WAIT).expect("idle a");
    client.wait_idle(b.id(), WAIT).expect("idle b");

    let reference_a = drain_local(&local_a);
    let reference_b = drain_local(&local_b);
    assert!(!reference_a.is_empty() && !reference_b.is_empty());

    // Demux a first: b's interleaved events must stay buffered.
    let mut wire_a = Vec::new();
    while wire_a.len() < reference_a.len() {
        match client.next_event_from(a.id(), WAIT) {
            Ok(event) => wire_a.push(event),
            Err(e) => panic!(
                "stream a ended after {} of {} events: {e}",
                wire_a.len(),
                reference_a.len()
            ),
        }
    }
    assert_eq!(
        json_of(&reference_a),
        json_of(&wire_a),
        "demuxed stream a diverged from the in-process broadcast"
    );
    // Then b, from the client-side buffer (plus any still in flight).
    let mut wire_b = Vec::new();
    while wire_b.len() < reference_b.len() {
        match client.next_event_from(b.id(), WAIT) {
            Ok(event) => wire_b.push(event),
            Err(e) => panic!(
                "stream b ended after {} of {} events: {e}",
                wire_b.len(),
                reference_b.len()
            ),
        }
    }
    assert_eq!(
        json_of(&reference_b),
        json_of(&wire_b),
        "demuxed stream b diverged from the in-process broadcast"
    );

    // Straggler filter: run b again, then detach it before reading.
    // The detach purges b's buffered stragglers client-side, and the
    // merged stream never surfaces a b event again.
    client.run_for(b.id(), HORIZON_NS).expect("run b again");
    client.wait_idle(b.id(), WAIT).expect("idle b again");
    client.detach(b.id()).expect("detach b");
    assert_eq!(client.attached().collect::<Vec<_>>(), vec![a.id()]);
    match client.next_event(Duration::from_millis(300)) {
        Err(WireError::Timeout) => {}
        Ok(event) => panic!("detached stream leaked an event: {event:?}"),
        Err(e) => panic!("stream error: {e}"),
    }

    // Re-attach on the same socket: a fresh subscription streams b's
    // next run.
    client.attach(b.id()).expect("re-attach b");
    client.run_for(b.id(), HORIZON_NS).expect("run b third");
    client.wait_idle(b.id(), WAIT).expect("idle b third");
    let deadline = Instant::now() + WAIT;
    let mut fresh = 0usize;
    while Instant::now() < deadline {
        match client.next_event_from(b.id(), Duration::from_millis(200)) {
            Ok(_) => {
                fresh += 1;
                break;
            }
            Err(WireError::Timeout) => {}
            Err(e) => panic!("stream error: {e}"),
        }
    }
    assert!(fresh > 0, "re-attached session streamed nothing");
}

/// One stalled attach among healthy siblings on the same socket: the
/// tiny-capacity attach overflows *its own* queue (announced by
/// `Lagged`), while the sibling attach on the very same connection
/// stays byte-identical to an in-process subscriber of the same run.
#[test]
fn stalled_attach_lags_alone_while_sibling_stays_byte_identical() {
    let (server, wire) = wired_server(ServerConfig {
        workers: 1,
        slice_ns: 250_000,
        ..ServerConfig::default()
    });
    let x = server.add_session(active_session(blinker_system("slow", 0.002, 1_000_000)));
    let y = server.add_session(active_session(blinker_system("fast", 0.002, 1_000_000)));
    let local_y = y.subscribe_with_capacity(0);
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    // Same socket, opposite fates: x on a two-slot queue, y unbounded.
    client
        .attach_with_capacity(x.id(), Some(2))
        .expect("attach x");
    client
        .attach_with_capacity(y.id(), Some(0))
        .expect("attach y");

    // Stall: the client reads nothing while the pump throws hundreds
    // of slices' worth of events at the shared socket. x's volume is
    // 10x so its two-slot queue must overflow once TCP backs up.
    x.run_for(10 * HORIZON_NS).unwrap();
    y.run_for(HORIZON_NS).unwrap();
    x.wait_idle(WAIT).expect("pump x must not be wedged");
    y.wait_idle(WAIT).expect("pump y must not be wedged");
    let reference_y = drain_local(&local_y);
    assert!(!reference_y.is_empty());

    // y's stream survives intact despite the sibling's overflow.
    let mut wire_y = Vec::new();
    while wire_y.len() < reference_y.len() {
        match client.next_event_from(y.id(), WAIT) {
            Ok(event) => wire_y.push(event),
            Err(e) => panic!(
                "sibling stream ended after {} of {} events: {e}",
                wire_y.len(),
                reference_y.len()
            ),
        }
    }
    assert_eq!(
        json_of(&reference_y),
        json_of(&wire_y),
        "healthy sibling diverged from the in-process broadcast"
    );

    // x's stream carries the loss marker for its own queue.
    let deadline = Instant::now() + WAIT;
    let mut saw_lagged = false;
    while Instant::now() < deadline && !saw_lagged {
        match client.next_event_from(x.id(), Duration::from_millis(200)) {
            Ok(EngineEvent::Lagged { dropped, .. }) => {
                assert!(dropped > 0);
                saw_lagged = true;
            }
            Ok(_) => {}
            Err(WireError::Timeout) => break,
            Err(e) => panic!("stream error: {e}"),
        }
    }
    assert!(saw_lagged, "the stalled attach was never told it lagged");
}

/// Threads of this process, per the kernel (`/proc/self/status`).
/// `None` off Linux — the soak then skips its thread-count assertion.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|n| n.trim().parse().ok())
}

/// The fan-out soak the wire v4 refactor gates on: 200 concurrent
/// clients on ONE listener, each multiplexing four attaches over a
/// 32-session fleet — 800 attached streams served by two threads per
/// connection (reader + streamer), not two per watched session. Every
/// stream must be byte-identical to an in-process subscriber of the
/// same run.
#[test]
fn fanout_soak_two_hundred_clients_multiplex_a_fleet() {
    const CLIENTS: usize = 200;
    const FLEET: usize = 32;
    const ATTACHES_PER_CLIENT: usize = 4;
    const SOAK_HORIZON_NS: u64 = 2_000_000;

    let (server, wire) = wired_server(ServerConfig {
        workers: 4,
        slice_ns: 500_000,
        subscriber_capacity: 0, // unbounded: byte-identical, no Lagged
        ..ServerConfig::default()
    });
    let handles: Vec<_> = (0..FLEET)
        .map(|i| {
            server.add_session(active_session(blinker_system(
                &format!("fan{i}"),
                0.002,
                1_000_000,
            )))
        })
        .collect();
    let locals: Vec<_> = handles
        .iter()
        .map(|handle| handle.subscribe_with_capacity(0))
        .collect();

    let threads_before = thread_count();
    let mut clients: Vec<(WireClient, Vec<usize>)> = (0..CLIENTS)
        .map(|c| {
            let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
            // Four consecutive fleet slots, striped so every session is
            // watched by many clients.
            let picks: Vec<usize> = (0..ATTACHES_PER_CLIENT)
                .map(|k| (c * ATTACHES_PER_CLIENT + k) % FLEET)
                .collect();
            let ids: Vec<_> = picks.iter().map(|&i| handles[i].id()).collect();
            client.attach_many(&ids).expect("attach_many");
            (client, picks)
        })
        .collect();
    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        let grown = after.saturating_sub(before);
        assert!(
            grown <= 2 * CLIENTS + 8,
            "{grown} new threads for {CLIENTS} connections — more than two per connection"
        );
    }

    // One short burst per session, then every one of the 800 attached
    // streams must replay its sessions exactly.
    for handle in &handles {
        handle.run_for(SOAK_HORIZON_NS).unwrap();
    }
    for handle in &handles {
        handle.wait_idle(WAIT).unwrap();
    }
    let references: Vec<Vec<EngineEvent>> = locals.iter().map(drain_local).collect();
    let reference_json: Vec<String> = references.iter().map(json_of).collect();
    for (client, picks) in &mut clients {
        for &i in picks.iter() {
            let mut got = Vec::new();
            while got.len() < references[i].len() {
                match client.next_event_from(handles[i].id(), WAIT) {
                    Ok(event) => got.push(event),
                    Err(e) => panic!(
                        "fan-out stream died after {} of {} events: {e}",
                        got.len(),
                        references[i].len()
                    ),
                }
            }
            assert_eq!(
                json_of(&got),
                reference_json[i],
                "fan-out stream diverged from the in-process broadcast"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Authentication
// ---------------------------------------------------------------------------

/// A server with a shared-secret token refuses absent and wrong tokens
/// with one generic message (no oracle for the secret), and completes
/// the handshake — and a full drive of a session — for the right one.
#[test]
fn auth_token_gates_the_handshake() {
    let (server, wire) = wired_server(ServerConfig {
        auth_token: Some("correct horse battery".to_owned()),
        ..ServerConfig::default()
    });
    let handle = server.add_session(active_session(blinker_system("auth", 0.002, 1_000_000)));
    for bad in [None, Some("wrong"), Some("correct horse batterY")] {
        match WireClient::connect_with_token(wire.local_addr(), bad) {
            Err(WireError::Remote(m)) => assert_eq!(m, "authentication failed"),
            other => panic!("expected a refusal for {bad:?}, got {other:?}"),
        }
    }
    let mut client =
        WireClient::connect_with_token(wire.local_addr(), Some("correct horse battery"))
            .expect("authenticated handshake");
    client.attach(handle.id()).expect("attach");
    client.run_for(handle.id(), HORIZON_NS).expect("run");
    client.wait_idle(handle.id(), WAIT).expect("idle");
    let snap = client.snapshot(handle.id(), false, WAIT).expect("snapshot");
    assert!(snap.trace_len > 0);
}

/// A server with no configured token accepts a token-less Hello and
/// ignores any token a client volunteers.
#[test]
fn unauthenticated_server_ignores_tokens() {
    let (_server, wire) = wired_server(ServerConfig::default());
    WireClient::connect(wire.local_addr()).expect("token-less handshake");
    WireClient::connect_with_token(wire.local_addr(), Some("ignored"))
        .expect("volunteered token is ignored");
}
