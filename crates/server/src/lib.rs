//! # gmdf-server — the multi-session debug server
//!
//! The paper's debugger is a long-lived tool plug-in: it serves an
//! interactive UI while the target keeps running. This crate is the
//! server layer of the reproduction — a [`DebugServer`] owns many
//! [`gmdf::DebugSession`]s at once, shards them across a fixed pool of
//! worker threads, and pumps each underlying simulator in **bounded time
//! slices** under a round-robin run-queue scheduler, so one busy session
//! can never starve its siblings.
//!
//! Each hosted session exposes two asynchronous surfaces through its
//! [`SessionHandle`]:
//!
//! * a **command mailbox** — [`SessionCommand`]s (schedule a signal,
//!   add/clear breakpoints, step, resume, run-for, snapshot) queue
//!   without blocking and are applied in arrival order at the session's
//!   next scheduling turn;
//! * a **broadcast event stream** — every subscriber gets its own
//!   *bounded* [`EventReceiver`] of [`EngineEvent`]s (slice reports,
//!   incremental trace deltas, violations, breakpoint hits), drained at
//!   leisure without ever blocking the pump. A subscriber that falls
//!   behind has consecutive trace deltas coalesced, then the oldest
//!   events dropped — announced in-stream by [`EngineEvent::Lagged`] —
//!   so a stalled consumer costs bounded memory and zero pump latency
//!   ([`ServerConfig::subscriber_capacity`]; `0` restores the legacy
//!   unbounded queue).
//!
//! Remote frontends attach over TCP: [`WireServer`] fronts a
//! [`DebugServer`] with a length-prefixed, versioned JSON framing of
//! the same vocabulary ([`proto`]), and [`WireClient`] drives it —
//! attach to a session, send commands, stream events. The wire path
//! shares the broadcast backpressure policy, so a stalled socket can
//! never wedge the scheduler either.
//!
//! Determinism is the load-bearing invariant: a session pumped in server
//! slices on a contended worker pool records a trace **byte-identical**
//! to the same session run in one synchronous `run_for` — the scheduler
//! decides only *when* a session advances, never *what* it observes —
//! and an event stream replayed through the wire is byte-identical
//! (after JSON round-trip) to the in-process broadcast of the same run.
//! `crates/server/tests/determinism.rs` and
//! `crates/server/tests/wire.rs` pin this down.
//!
//! ```
//! use gmdf::{ChannelMode, Workflow};
//! use gmdf_codegen::CompileOptions;
//! use gmdf_comdes::{ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port,
//!                   System, Timing, VAR_TIME_IN_STATE};
//! use gmdf_server::{DebugServer, ServerConfig};
//! use gmdf_target::SimConfig;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fsm = FsmBuilder::new()
//!     .output(Port::boolean("lamp"))
//!     .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
//!     .state("On", |s| s.entry("lamp", Expr::Bool(true)))
//!     .transition("Off", "On", Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)))
//!     .transition("On", "Off", Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)))
//!     .build()?;
//! let net = NetworkBuilder::new()
//!     .output(Port::boolean("lamp"))
//!     .state_machine("ctl", fsm)
//!     .connect("ctl.lamp", "lamp")?
//!     .build()?;
//! let actor = ActorBuilder::new("Blinker", net)
//!     .output("lamp", "lamp")
//!     .timing(Timing::periodic(1_000_000, 0))
//!     .build()?;
//! let mut node = NodeSpec::new("ecu", 50_000_000);
//! node.actors.push(actor);
//! let session = Workflow::from_system(System::new("blink").with_node(node))?
//!     .default_abstraction()
//!     .default_commands()
//!     .connect(ChannelMode::Active, CompileOptions::default(), SimConfig::default())?;
//!
//! let server = DebugServer::start(ServerConfig::default());
//! let handle = server.add_session(session);
//! let events = handle.subscribe();
//! handle.run_for(10_000_000)?;                       // 10 ms of target time
//! handle.wait_idle(Duration::from_secs(10))?;
//! let snap = handle.snapshot(Duration::from_secs(10))?;
//! assert!(snap.trace_len > 0);
//! assert!(events.try_iter().count() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod metrics;
mod persist;
pub mod proto;
mod queue;
mod server;
mod wire;

pub use event::{EngineEvent, SeekReport, SessionSnapshot, TraceSlice};
// The static-analysis vocabulary wire clients consume (`Analyze` frame
// replies, `SessionInfo::diagnostics`): re-exported so remote tooling
// needs only `gmdf_server`.
pub use gmdf_analyze::{
    AnalysisError, AnalysisReport, Diagnostic, NodeReport, Pass, Severity, TaskReport, TaskVerdict,
};
pub use metrics::{
    FleetMetrics, HealthState, MetricsRegistry, MetricsSnapshot, QuarantinedSession, SessionHealth,
    SessionInfo, WireConnection,
};
pub use queue::{EventReceiver, TryIter, MAX_COALESCED_ENTRIES};
pub use server::{
    DebugServer, PersistConfig, ServerConfig, ServerError, SessionCommand, SessionHandle,
    SessionId, DEFAULT_CHECKPOINT_INTERVAL, MAX_FETCH_BYTES, MAX_FETCH_ENTRIES,
};
pub use wire::{WireClient, WireError, WireServer};
