//! The server's broadcast vocabulary: what subscribers see.
//!
//! Every type here is serde-serializable: the wire layer
//! ([`crate::WireServer`] / [`crate::WireClient`]) ships these exact
//! structures as JSON frames, and the in-process broadcast hands them
//! out by value — one vocabulary, two transports.

use crate::server::SessionId;
use gmdf::RunReport;
use gmdf_engine::{EngineState, TraceEntry};
use serde::{Deserialize, Serialize};

/// One notification on a session's broadcast stream.
///
/// Events are emitted at scheduling-turn granularity (commands applied,
/// at most one slice pumped, deltas published) and carry everything a
/// viewer needs to stay current without polling: the incremental trace,
/// raised violations, breakpoint hits, and lifecycle edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// One scheduler slice finished on this session.
    SliceCompleted {
        /// The session that was pumped.
        session: SessionId,
        /// Target time after the slice.
        now_ns: u64,
        /// Feed outcome of the slice (events fed, violations, breaks).
        report: RunReport,
    },
    /// New trace entries since the previous delta, in sequence order.
    TraceDelta {
        /// The recording session.
        session: SessionId,
        /// The freshly recorded entries (dense `seq` on an unbounded or
        /// keeping-up subscription; a lagging bounded subscription may
        /// see gaps, each announced by a preceding [`Self::Lagged`]).
        entries: Vec<TraceEntry>,
    },
    /// An expectation violation was raised — a found bug.
    Violation {
        /// The violating session.
        session: SessionId,
        /// Trace sequence number of the violating command.
        seq: u64,
        /// Human-readable violation message.
        message: String,
    },
    /// A model-level breakpoint paused the session's engine.
    BreakpointHit {
        /// The paused session.
        session: SessionId,
        /// Trace sequence number of the command that hit.
        seq: u64,
        /// Model time of that command.
        time_ns: u64,
    },
    /// The session consumed its whole run budget and left the run queue.
    Idle {
        /// The now-idle session.
        session: SessionId,
        /// Target time at which it went idle.
        now_ns: u64,
    },
    /// The session failed; it is parked and will accept no more pumping.
    Error {
        /// The failed session.
        session: SessionId,
        /// What went wrong.
        message: String,
    },
    /// This subscriber fell behind a bounded queue and data was dropped
    /// — delivered in-stream, exactly where the loss happened. The run
    /// itself is unaffected; a snapshot still serves the full trace.
    Lagged {
        /// The session whose stream lost data.
        session: SessionId,
        /// Events dropped since the previous `Lagged` (a dropped
        /// `TraceDelta` counts one per trace entry it carried).
        dropped: u64,
    },
}

impl EngineEvent {
    /// The session this event concerns.
    pub fn session(&self) -> SessionId {
        match self {
            EngineEvent::SliceCompleted { session, .. }
            | EngineEvent::TraceDelta { session, .. }
            | EngineEvent::Violation { session, .. }
            | EngineEvent::BreakpointHit { session, .. }
            | EngineEvent::Idle { session, .. }
            | EngineEvent::Error { session, .. }
            | EngineEvent::Lagged { session, .. } => *session,
        }
    }
}

/// A bounded page of trace history — the reply to
/// [`SessionCommand::FetchRange`] and [`SessionCommand::ReplayFrom`].
/// Remote clients page a long (possibly disk-backed) trace through
/// these instead of pulling the whole record in one snapshot.
///
/// [`SessionCommand::FetchRange`]: crate::SessionCommand::FetchRange
/// [`SessionCommand::ReplayFrom`]: crate::SessionCommand::ReplayFrom
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSlice {
    /// The session whose trace was read.
    pub session: SessionId,
    /// Sequence number of the first returned entry (the requested
    /// start when nothing was returned).
    pub first_seq: u64,
    /// The entries, in sequence order. Capped server-side
    /// ([`MAX_FETCH_ENTRIES`]) — while `complete` is false, continue
    /// with [`SessionCommand::ReplayFrom`] at
    /// `first_seq + entries.len()` until `end_seq`.
    ///
    /// [`MAX_FETCH_ENTRIES`]: crate::MAX_FETCH_ENTRIES
    pub entries: Vec<TraceEntry>,
    /// Exclusive upper bound of the *full* requested range: the
    /// window's last matching sequence + 1 for `FetchRange`, the trace
    /// length for `ReplayFrom`. This is the continuation limit — a
    /// truncated `FetchRange` page is resumed by sequence number, so
    /// the follow-up pages cannot overshoot the time window.
    pub end_seq: u64,
    /// `true` when this page reaches the end of the requested range
    /// (`first_seq + entries.len() >= end_seq`).
    pub complete: bool,
}

/// The reply to [`SessionCommand::SeekTo`] /
/// [`SessionCommand::StepBack`]: where the time-travel replica landed
/// and what it cost to get there. The live session is untouched by a
/// seek — the server restores the nearest persisted checkpoint into a
/// throwaway replica and deterministically replays it forward
/// O(checkpoint interval), instead of O(whole trace) from zero.
///
/// [`SessionCommand::SeekTo`]: crate::SessionCommand::SeekTo
/// [`SessionCommand::StepBack`]: crate::SessionCommand::StepBack
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeekReport {
    /// The session whose history was seeked.
    pub session: SessionId,
    /// The requested target instant, clamped to the live session's
    /// current time (history cannot be seeked into the future).
    pub target_ns: u64,
    /// The replica's clock after the seek (equals `target_ns`).
    pub now_ns: u64,
    /// Trace position (sequence number) of the restored checkpoint;
    /// `None` when no usable checkpoint preceded the target and the
    /// replica replayed from time zero instead.
    pub checkpoint_seq: Option<u64>,
    /// Target time of the restored checkpoint, when one was used.
    pub checkpoint_t_ns: Option<u64>,
    /// Journaled commands re-applied between the checkpoint and the
    /// target.
    pub replayed_commands: u64,
    /// Trace entries the replica regenerated on the way to the target.
    /// This is the seek's cost — bounded by the checkpoint interval,
    /// not by the trace length.
    pub replayed_entries: u64,
    /// The replica's trace length at the target instant (persisted
    /// prefix plus regenerated entries).
    pub trace_len: u64,
    /// The replica's engine control state at the target instant.
    pub engine_state: EngineState,
    /// The replica's full trace, serialized — byte-identical to the
    /// trace an uninterrupted run had at the same instant. `None`
    /// unless the seek asked for it (O(trace length) to build).
    pub trace_json: Option<String>,
}

/// A consistent point-in-time view of one hosted session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The snapshotted session.
    pub session: SessionId,
    /// Target simulation time.
    pub now_ns: u64,
    /// Engine control state (waiting / paused at a breakpoint).
    pub engine_state: EngineState,
    /// Commands queued in the engine while paused.
    pub pending: usize,
    /// Entries recorded in the execution trace.
    pub trace_len: usize,
    /// The full trace, serialized (byte-stable across identical runs).
    /// `None` for counter-only snapshots ([`SessionHandle::stats`]).
    ///
    /// [`SessionHandle::stats`]: crate::SessionHandle::stats
    pub trace_json: Option<String>,
    /// Total model events fed over the session's lifetime.
    pub events_fed: u64,
    /// Total expectation violations raised.
    pub violations: u64,
    /// Total breakpoint hits.
    pub breakpoint_hits: u64,
    /// Total events dropped by this session's bounded subscriber
    /// queues (cumulative, across all subscribers — including ones
    /// already gone). Without this, drop counts die inside the queue
    /// that suffered them and are visible only to the subscriber that
    /// lagged.
    pub lagged_drops: u64,
    /// Run budget not yet consumed, in nanoseconds.
    pub remaining_ns: u64,
}
