//! The debug server: session registry, shards, and the run-queue
//! scheduler.
//!
//! ## Architecture
//!
//! Sessions are **sharded**: each session is pinned to one worker thread
//! (`shard = id % workers`), so a given simulator is only ever pumped by
//! a single thread and needs no internal synchronization. Within a
//! shard, a FIFO run queue with re-enqueue implements round-robin: one
//! scheduling *turn* drains the session's command mailbox, pumps at most
//! one bounded time slice, publishes deltas to subscribers, and — if run
//! budget remains — puts the session back at the tail of the queue.
//!
//! The `queued` flag on each session cell keeps the queue duplicate-free
//! without a scan: whoever flips it `false → true` (a command sender or
//! the worker re-enqueueing) owns the push. The worker clears the flag
//! *before* draining the mailbox, so a command arriving mid-turn always
//! re-queues the session rather than being stranded.
//!
//! Lock order is `inner → mailbox` (the worker and `wait_idle` both
//! follow it; command senders touch only the mailbox), so the server
//! cannot deadlock on its own locks.

use crate::event::{EngineEvent, SeekReport, SessionSnapshot, TraceSlice};
use crate::metrics::{
    self, Counter, HealthState, MetricsRegistry, MetricsSnapshot, QuarantinedSession,
    SessionHealth, SessionInfo,
};
use crate::persist;
use crate::queue::{self, EventReceiver, EventSender};
use gmdf::{DebugSession, SessionSpec};
use gmdf_analyze::AnalysisReport;
use gmdf_comdes::SignalValue;
use gmdf_engine::store::DEFAULT_SEGMENT_CAPACITY;
use gmdf_engine::{
    CheckpointMeta, CheckpointStore, Codec, EngineNotice, ExecutionTrace, MemStore, OffsetMemStore,
    Retention, SegmentConfig, StoreError, TraceEntry,
};
use gmdf_gdm::CommandMatcher;
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one hosted session for the lifetime of its server.
pub type SessionId = u64;

/// How long a worker sleeps between run-queue polls when idle, and the
/// re-check period of blocking waiters — a lost-wakeup backstop, not the
/// scheduling granularity (queue pushes notify immediately).
const POLL: Duration = Duration::from_millis(20);

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// a worker panic fails one session (see [`worker_loop`]), it must not
/// poison the whole server. Shared by the queue and wire modules, whose
/// locks follow the same policy.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the pump pool (minimum 1).
    pub workers: usize,
    /// Default per-turn time-slice budget, in target nanoseconds.
    pub slice_ns: u64,
    /// Default capacity of each subscriber's event queue. A slow
    /// subscriber overflowing it has consecutive `TraceDelta`s
    /// coalesced, then the oldest events dropped and announced by an
    /// in-stream [`EngineEvent::Lagged`] — the pump never blocks and
    /// never grows memory without bound on a stalled consumer.
    /// `0` = legacy unbounded queues (no loss, unbounded memory).
    pub subscriber_capacity: usize,
    /// Collect runtime metrics (pump timings, queue depths, store and
    /// wire I/O — see [`crate::metrics`]). On by default; recording is
    /// relaxed-atomic and stays within noise of an uninstrumented pump
    /// (the `metrics_overhead` bench gates this). `false` builds a
    /// [`MetricsRegistry::disabled`] registry and skips every
    /// recording site.
    pub metrics: bool,
    /// Shared-secret token wire clients must present in their `Hello`
    /// frame (compared in constant time). `None` = no authentication:
    /// any `Hello` (with or without a token) is accepted. Only the wire
    /// layer consults this; in-process handles are never gated.
    pub auth_token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            slice_ns: 1_000_000,
            subscriber_capacity: 1024,
            metrics: true,
            auth_token: None,
        }
    }
}

/// Where (and how) a persistent server journals its durable sessions.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Root directory of the session registry
    /// (`<root>/sessions/<id>/…`). Created on demand.
    pub root: PathBuf,
    /// Entries per trace segment file
    /// ([`gmdf_engine::SegmentStore`] capacity).
    pub segment_capacity: usize,
    /// Trace record codec for *new* durable sessions. Existing session
    /// directories keep whatever their `meta.json` records, so a server
    /// reconfigured mid-fleet reopens old sessions correctly.
    pub codec: Codec,
    /// Compaction/retention policy applied to every durable session's
    /// trace store. Disabled by default (nothing is compressed or
    /// evicted — the pre-retention behavior).
    pub retention: Retention,
    /// How often the background compactor sweeps the durable sessions.
    /// Only consulted when `retention` is active.
    pub compact_interval: Duration,
    /// Full-state checkpoint cadence, in trace entries: after a pumped
    /// slice, a durable session whose trace grew by at least this many
    /// entries since the last checkpoint writes a new one
    /// (crash-safely, next to its journal). Checkpoints are what make
    /// [`SessionCommand::SeekTo`] / [`SessionCommand::StepBack`] /
    /// [`SessionCommand::ReplayWindow`] O(interval) instead of
    /// O(whole trace). `0` disables checkpointing (seeks fall back to
    /// replay-from-zero).
    pub checkpoint_interval: u64,
}

/// Default [`PersistConfig::checkpoint_interval`]: frequent enough
/// that a seek replays at most a few thousand entries, rare enough
/// that checkpoint serialization stays far off the pump's hot path.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 4096;

impl PersistConfig {
    /// Persistence rooted at `root` with the default segment capacity,
    /// the binary trace codec, and retention disabled.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        PersistConfig {
            root: root.into(),
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            codec: Codec::Binary,
            retention: Retention::default(),
            compact_interval: Duration::from_millis(250),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// Overrides the trace segment capacity (entries per segment).
    #[must_use]
    pub fn with_segment_capacity(mut self, capacity: usize) -> Self {
        self.segment_capacity = capacity.max(1);
        self
    }

    /// Overrides the trace record codec for new durable sessions.
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the compaction/retention policy for durable-session traces.
    #[must_use]
    pub fn with_retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }

    /// Overrides how often the background compactor runs.
    #[must_use]
    pub fn with_compact_interval(mut self, interval: Duration) -> Self {
        self.compact_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Overrides the checkpoint cadence (trace entries between
    /// full-state checkpoints; `0` disables checkpointing).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, entries: u64) -> Self {
        self.checkpoint_interval = entries;
        self
    }

    /// The store-level configuration this policy expands to.
    pub(crate) fn segment_config(&self) -> SegmentConfig {
        SegmentConfig {
            capacity: self.segment_capacity,
            codec: self.codec,
            retention: self.retention,
        }
    }
}

/// Cap on the entries one [`SessionCommand::FetchRange`] /
/// [`SessionCommand::ReplayFrom`] reply carries. While
/// [`TraceSlice::complete`] is false, clients continue with
/// [`SessionCommand::ReplayFrom`] at `last().seq + 1` until
/// [`TraceSlice::end_seq`] — `FetchRange` itself has no sequence
/// parameter, so re-issuing it only returns the same first page.
pub const MAX_FETCH_ENTRIES: u64 = 4096;

/// Cap on the *encoded* payload one [`SessionCommand::FetchRange`] /
/// [`SessionCommand::ReplayFrom`] reply carries. An entry count alone
/// does not bound a page — 4096 entries of pathological width would
/// overflow the 64 MiB wire frame and reach the client as an error
/// instead of data — so the page is also cut at this many JSON bytes
/// (half the frame limit, leaving room for the envelope). A page always
/// carries at least one entry, so paging makes progress even past an
/// oversized record.
pub const MAX_FETCH_BYTES: u64 = 32 * 1024 * 1024;

/// A command posted to a session's mailbox.
///
/// Commands are applied in arrival order at the session's next
/// scheduling turn. Posting never blocks; a failed session still
/// services `Snapshot` but ignores run budget.
#[derive(Debug, Clone)]
pub enum SessionCommand {
    /// Schedule an environment stimulus on the target. An unknown label
    /// fails the session (it indicates a wiring bug in the client).
    ScheduleSignal {
        /// Absolute target time of the write.
        time_ns: u64,
        /// Board label to write.
        label: String,
        /// Value to write.
        value: SignalValue,
    },
    /// Install a model-level breakpoint on the engine.
    AddBreakpoint {
        /// Events that trigger the pause.
        matcher: CommandMatcher,
        /// Remove after the first hit.
        one_shot: bool,
    },
    /// Remove all breakpoints.
    ClearBreakpoints,
    /// While paused: process exactly one queued engine command.
    Step,
    /// Resume the engine, draining queued commands until empty or the
    /// next breakpoint.
    Resume,
    /// Add run budget: pump the target `duration_ns` further (sliced by
    /// the scheduler).
    RunFor {
        /// Additional target time to run, in nanoseconds.
        duration_ns: u64,
    },
    /// Reply with a consistent snapshot of the session.
    Snapshot {
        /// Where to deliver the snapshot.
        reply: mpsc::Sender<SessionSnapshot>,
        /// Also serialize the full trace (O(trace length); leave off
        /// for cheap counter polls).
        include_trace: bool,
    },
    /// Reply with the trace entries whose event time falls in
    /// `[t0_ns, t1_ns]` — located through the store's time index, so a
    /// narrow window over a long disk-backed trace reads only its own
    /// segments. Capped at [`MAX_FETCH_ENTRIES`] entries and
    /// [`MAX_FETCH_BYTES`] of encoded payload.
    FetchRange {
        /// Window start (inclusive), in target nanoseconds.
        t0_ns: u64,
        /// Window end (inclusive), in target nanoseconds.
        t1_ns: u64,
        /// Where to deliver the page.
        reply: mpsc::Sender<TraceSlice>,
    },
    /// Reply with up to `limit` trace entries starting at sequence
    /// number `seq` — how clients page history (including the persisted
    /// pre-restart prefix of a durable session) without holding the
    /// whole trace.
    ReplayFrom {
        /// First sequence number wanted.
        seq: u64,
        /// Page size; `0` means the server cap ([`MAX_FETCH_ENTRIES`]),
        /// larger values are clamped to it. The reply is additionally
        /// bounded by [`MAX_FETCH_BYTES`] of encoded payload.
        limit: u64,
        /// Where to deliver the page.
        reply: mpsc::Sender<TraceSlice>,
    },
    /// Reply with a [`SeekReport`] for the session's state at target
    /// time `t_ns` (clamped to the live clock). The server restores the
    /// nearest persisted checkpoint at or before the target into a
    /// detached replica and deterministically replays it forward —
    /// O(checkpoint interval), not O(trace length). The live session is
    /// never touched. Requires a durable session; a seek failure is
    /// reported on the reply channel, never by failing the session.
    SeekTo {
        /// Target instant, in target nanoseconds.
        t_ns: u64,
        /// Also serialize the replica's full trace into
        /// [`SeekReport::trace_json`] (O(trace length) to build).
        include_trace: bool,
        /// Where to deliver the report (or the seek error).
        reply: mpsc::Sender<Result<SeekReport, String>>,
    },
    /// Reply with a [`SeekReport`] for the instant `entries` trace
    /// entries before the current end of the trace — "rewind N steps".
    /// Same checkpoint-restore machinery as [`Self::SeekTo`]; stepping
    /// below the trace's retention floor is an error.
    StepBack {
        /// How many trace entries to step back from the end.
        entries: u64,
        /// Also serialize the replica's full trace.
        include_trace: bool,
        /// Where to deliver the report (or the seek error).
        reply: mpsc::Sender<Result<SeekReport, String>>,
    },
    /// Reply with the trace entries whose event time falls in
    /// `[t0_ns, t1_ns]`, regenerated by checkpoint-restore + replay
    /// rather than read from the live store — so the window is
    /// available even on a session whose early segments were evicted,
    /// as long as a checkpoint precedes it. Paged exactly like
    /// [`Self::FetchRange`] (same caps, same [`TraceSlice`] contract).
    ReplayWindow {
        /// Window start (inclusive), in target nanoseconds.
        t0_ns: u64,
        /// Window end (inclusive), in target nanoseconds.
        t1_ns: u64,
        /// Where to deliver the page (or the seek error).
        reply: mpsc::Sender<Result<TraceSlice, String>>,
    },
}

/// Server-side failure surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The server has shut down; the operation cannot complete.
    Shutdown,
    /// A blocking wait exceeded its deadline.
    Timeout,
    /// The session failed (simulator fault, bad stimulus…); the message
    /// is the underlying error.
    SessionFailed(String),
    /// Session persistence failed (registry I/O, corrupt journal,
    /// restore mismatch) or was requested on a non-persistent server.
    Persist(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Shutdown => write!(f, "debug server has shut down"),
            ServerError::Timeout => write!(f, "timed out waiting on the debug server"),
            ServerError::SessionFailed(m) => write!(f, "session failed: {m}"),
            ServerError::Persist(m) => write!(f, "session persistence failed: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Mutable per-session state, owned by whichever thread holds the lock.
#[derive(Debug)]
struct SessionInner {
    session: DebugSession,
    /// Engine-level notification hook (violations, breakpoint hits).
    notices: mpsc::Receiver<EngineNotice>,
    /// Run budget not yet consumed.
    remaining_ns: u64,
    /// Per-turn slice budget.
    slice_ns: u64,
    /// First trace sequence number subscribers have not seen yet.
    trace_cursor: u64,
    subscribers: Vec<EventSender>,
    events_fed: u64,
    violations: u64,
    breakpoint_hits: u64,
    failed: Option<String>,
    /// Durable sessions journal every state-affecting command here
    /// before applying it; `None` for in-memory sessions.
    journal: Option<persist::Journal>,
    /// Records appended to (or restored from) the journal so far — the
    /// position a checkpoint records as its
    /// [`persist::ServerCheckpoint::journal_pos`].
    journal_len: u64,
    /// Periodic full-state checkpoints for O(interval) time travel;
    /// `None` for in-memory sessions (and for durable sessions whose
    /// checkpoint directory failed to open on restore — seeks then fall
    /// back to replay-from-zero).
    checkpoints: Option<CheckpointStore>,
    /// Trace entries between checkpoints; `0` disables checkpointing.
    checkpoint_interval: u64,
    /// Trace length at the last written checkpoint.
    last_checkpoint_len: u64,
    /// The durable session's directory (spec + journal live here);
    /// `None` for in-memory sessions. Seeks re-read both to build the
    /// replica.
    dir: Option<PathBuf>,
    /// Cumulative events dropped by this session's bounded subscriber
    /// queues — each queue holds a clone, so drops survive the queue
    /// that suffered them. Always on (it feeds
    /// [`SessionSnapshot::lagged_drops`]), independent of the metrics
    /// registry.
    lagged: Counter,
    /// Wall-clock instant of the last pumped slice (metrics only).
    last_slice: Option<Instant>,
}

/// One hosted session: state + mailbox + scheduling flags.
#[derive(Debug)]
struct SessionCell {
    id: SessionId,
    shard: usize,
    inner: Mutex<SessionInner>,
    /// Paired with `inner`; notified whenever a turn leaves the session
    /// quiescent.
    idle_cv: Condvar,
    mailbox: Mutex<VecDeque<SessionCommand>>,
    /// `true` while the session sits in (or is being pushed onto) its
    /// shard's run queue.
    queued: AtomicBool,
    /// When the session registered with this server process (uptime
    /// base for health reporting).
    registered_at: Instant,
    /// Static analysis of the session's spec, run once at registration
    /// and cached for the session's lifetime (the spec never changes).
    /// Analysis failures degrade to a one-error report — a session is
    /// never refused over its diagnostics.
    analysis: Arc<AnalysisReport>,
}

/// One worker's run queue.
#[derive(Debug)]
struct Shard {
    queue: Mutex<VecDeque<Arc<SessionCell>>>,
    cv: Condvar,
}

/// State shared between the server front and its workers.
#[derive(Debug)]
struct Shared {
    shards: Vec<Shard>,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    default_slice_ns: u64,
    default_subscriber_capacity: usize,
    /// The observability registry every layer records into (disabled =
    /// all recording sites skipped).
    metrics: Arc<MetricsRegistry>,
    /// Wire-handshake shared secret ([`ServerConfig::auth_token`]).
    auth_token: Option<String>,
}

impl Shared {
    /// Puts `cell` on its shard's run queue unless it is already there.
    /// Returns `false` if the server is (or just became) shut down, in
    /// which case the cell may never be scheduled again.
    fn enqueue(&self, cell: &Arc<SessionCell>) -> bool {
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if !cell.queued.swap(true, Ordering::SeqCst) {
            let shard = &self.shards[cell.shard];
            lock(&shard.queue).push_back(Arc::clone(cell));
            shard.cv.notify_one();
        }
        // Shutdown may have raced the push; workers exit without
        // draining their queues, so report it rather than claiming the
        // command will run.
        !self.shutdown.load(Ordering::SeqCst)
    }
}

/// A multi-session debug server over a fixed worker-thread pool.
///
/// Dropping the server shuts it down: workers are signalled, finish at
/// most one bounded slice each, and are joined. Hosted sessions are
/// dropped with it; outstanding [`SessionHandle`]s turn into
/// [`ServerError::Shutdown`] errors instead of hanging.
#[derive(Debug)]
pub struct DebugServer {
    shared: Arc<Shared>,
    sessions: Arc<Mutex<Vec<Arc<SessionCell>>>>,
    workers: Vec<JoinHandle<()>>,
    /// The background compaction sweep, when retention is active.
    compactor: Option<JoinHandle<()>>,
    /// Set on persistent servers: where durable sessions live.
    persist: Option<PersistConfig>,
    /// Persisted sessions that failed to restore, with the reason.
    quarantined: Vec<(SessionId, String)>,
}

impl DebugServer {
    /// Boots the worker pool and returns the (initially empty) server.
    pub fn start(config: ServerConfig) -> Self {
        Self::boot(config, None)
    }

    /// Boots a **persistent** server: durable sessions journal their
    /// spec, commands and trace under `persist.root`, and any sessions
    /// already persisted there are recreated — their traces recovered
    /// from disk, their command history deterministically replayed to
    /// the point the old process reached, and any outstanding run
    /// budget handed back to the scheduler. Restored sessions keep
    /// their ids; new ids continue above the highest restored one.
    ///
    /// A session that fails to restore (corrupt spec, tampered
    /// journal…) is **quarantined**, not fatal: its directory is left
    /// on disk untouched for inspection, its id is never reused, the
    /// failure is reported through
    /// [`DebugServer::quarantined_sessions`], and every other session
    /// boots normally — one damaged session must never brick the whole
    /// registry.
    ///
    /// # Errors
    ///
    /// [`ServerError::Persist`] is reserved for registry-level
    /// failures; per-session restore failures are quarantined instead.
    pub fn start_persistent(
        config: ServerConfig,
        persist: PersistConfig,
    ) -> Result<Self, ServerError> {
        let mut server = Self::boot(config, Some(persist.clone()));
        let ids = persist::persisted_ids(&persist.root);
        for id in ids {
            // Reserve the id either way: a fresh session must never be
            // created over a quarantined directory.
            server.shared.next_id.fetch_max(id + 1, Ordering::SeqCst);
            match persist::restore_session(&persist.root, id, persist.segment_config()) {
                Ok(restored) => {
                    // A checkpoint store that fails to open degrades the
                    // session to checkpoint-less (seeks replay from
                    // zero) rather than quarantining it — checkpoints
                    // are derived state, the journal is the truth.
                    let checkpoints =
                        CheckpointStore::open(persist::checkpoint_dir(&persist.root, id)).ok();
                    let dir = persist::session_dir(&persist.root, id);
                    let checkpoint_interval = persist.checkpoint_interval;
                    server.register(id, restored.session, restored.notices, |inner| {
                        inner.remaining_ns = restored.remaining_ns;
                        inner.trace_cursor = restored.trace_cursor;
                        inner.events_fed = restored.events_fed;
                        inner.violations = restored.violations;
                        inner.breakpoint_hits = restored.breakpoint_hits;
                        inner.journal = Some(restored.journal);
                        inner.journal_len = restored.journal_len;
                        inner.dir = Some(dir);
                        inner.checkpoint_interval = checkpoint_interval;
                        if let Some(cs) = checkpoints {
                            inner.last_checkpoint_len = cs.latest().map_or(0, |m| m.seq);
                            // Segments still referenced by the oldest
                            // retained checkpoint must outlive retention
                            // eviction: a seek replays forward from that
                            // checkpoint and pages its window out of the
                            // persisted prefix.
                            if let Some(oldest) = cs.oldest_seq() {
                                inner.session.set_trace_retain_floor(oldest);
                            }
                            inner.checkpoints = Some(cs);
                        }
                    });
                }
                Err(message) => server.quarantined.push((id, message)),
            }
        }
        Ok(server)
    }

    /// Persisted sessions that failed to restore at the last
    /// [`DebugServer::start_persistent`], with the reason. Their
    /// directories are left on disk for inspection and their ids are
    /// not reused.
    pub fn quarantined_sessions(&self) -> &[(SessionId, String)] {
        &self.quarantined
    }

    fn boot(config: ServerConfig, persist: Option<PersistConfig>) -> Self {
        let workers = config.workers.max(1);
        let registry = if config.metrics {
            MetricsRegistry::new(workers)
        } else {
            MetricsRegistry::disabled()
        };
        let shared = Arc::new(Shared {
            shards: (0..workers)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            default_slice_ns: config.slice_ns.max(1),
            default_subscriber_capacity: config.subscriber_capacity,
            metrics: Arc::new(registry),
            auth_token: config.auth_token,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gmdf-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();
        let sessions: Arc<Mutex<Vec<Arc<SessionCell>>>> = Arc::new(Mutex::new(Vec::new()));
        // With retention active, a background sweep periodically gives
        // every session's trace store a maintenance turn (compress one
        // cold segment, evict while over budget). It runs outside the
        // pump path — a sweep takes each session's state lock briefly,
        // so the scheduler never stalls behind compression.
        let compactor = persist
            .as_ref()
            .filter(|p| p.retention.is_active())
            .map(|p| {
                let shared = Arc::clone(&shared);
                let sessions = Arc::clone(&sessions);
                let interval = p.compact_interval;
                std::thread::Builder::new()
                    .name("gmdf-compactor".to_owned())
                    .spawn(move || compactor_loop(&shared, &sessions, interval))
                    .expect("spawn compactor thread")
            });
        DebugServer {
            shared,
            sessions,
            workers: handles,
            compactor,
            persist,
            quarantined: Vec::new(),
        }
    }

    /// Takes ownership of `session` and registers it with the scheduler
    /// (idle until its first command). The session is pinned to the
    /// shard `id % workers`. The session is in-memory: its trace and
    /// command history die with the server — see
    /// [`DebugServer::add_durable_session`] for ones that survive a
    /// restart.
    pub fn add_session(&self, mut session: DebugSession) -> SessionHandle {
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let notices = session.engine_mut().subscribe();
        self.register(id, session, notices, |_| {})
    }

    /// Builds a **durable** session from `spec` and registers it. The
    /// spec is written to the session registry, every state-affecting
    /// command is journaled, and the trace records into a segmented
    /// on-disk store next to the journal — a server restarted over the
    /// same [`PersistConfig::root`] recreates the session and finishes
    /// its run ([`DebugServer::start_persistent`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::Persist`] on a non-persistent server or registry
    /// I/O failure, [`ServerError::SessionFailed`] when the spec does
    /// not build.
    pub fn add_durable_session(&self, spec: &SessionSpec) -> Result<SessionHandle, ServerError> {
        let Some(persist) = &self.persist else {
            return Err(ServerError::Persist(
                "server was not started with persistence (use start_persistent)".to_owned(),
            ));
        };
        let mut session = spec
            .build()
            .map_err(|e| ServerError::SessionFailed(e.to_string()))?;
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let (journal, store) =
            persist::create_session_dir(&persist.root, id, spec, persist.segment_config())
                .map_err(ServerError::Persist)?;
        let checkpoints = CheckpointStore::open(persist::checkpoint_dir(&persist.root, id))
            .map_err(|e| ServerError::Persist(format!("cannot open checkpoint store: {e}")))?;
        session.set_trace_store(Box::new(store));
        let notices = session.engine_mut().subscribe();
        let dir = persist::session_dir(&persist.root, id);
        let checkpoint_interval = persist.checkpoint_interval;
        Ok(self.register(id, session, notices, |inner| {
            inner.journal = Some(journal);
            inner.checkpoints = Some(checkpoints);
            inner.checkpoint_interval = checkpoint_interval;
            inner.dir = Some(dir);
        }))
    }

    /// Registers a cell for `session` under `id`, applying `init` to
    /// the fresh state (restored budgets, counters, journal). A cell
    /// left with run budget is scheduled immediately.
    fn register(
        &self,
        id: SessionId,
        session: DebugSession,
        notices: mpsc::Receiver<EngineNotice>,
        init: impl FnOnce(&mut SessionInner),
    ) -> SessionHandle {
        let shard = (id as usize) % self.shared.shards.len();
        let analysis = Arc::new(session.analyze().unwrap_or_else(|e| {
            AnalysisReport::from_failure(&session.simulator().image().system, e.to_string())
        }));
        let mut inner = SessionInner {
            session,
            notices,
            remaining_ns: 0,
            slice_ns: self.shared.default_slice_ns,
            trace_cursor: 0,
            subscribers: Vec::new(),
            events_fed: 0,
            violations: 0,
            breakpoint_hits: 0,
            failed: None,
            journal: None,
            journal_len: 0,
            checkpoints: None,
            checkpoint_interval: 0,
            last_checkpoint_len: 0,
            dir: None,
            lagged: Counter::new(),
            last_slice: None,
        };
        init(&mut inner);
        // After `init`: a durable/restored session has already swapped
        // its trace store in, which builds a fresh trace without a
        // metrics sink — attach it last.
        if self.shared.metrics.enabled() {
            inner
                .session
                .engine_mut()
                .set_trace_metrics(Some(Arc::clone(&self.shared.metrics.store)));
        }
        let resume = inner.remaining_ns > 0;
        let cell = Arc::new(SessionCell {
            id,
            shard,
            inner: Mutex::new(inner),
            idle_cv: Condvar::new(),
            mailbox: Mutex::new(VecDeque::new()),
            queued: AtomicBool::new(false),
            registered_at: Instant::now(),
            analysis,
        });
        lock(&self.sessions).push(Arc::clone(&cell));
        if resume {
            let _ = self.shared.enqueue(&cell);
        }
        SessionHandle {
            cell,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of hosted sessions.
    pub fn session_count(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// Ids of every hosted session, in registration order — what a
    /// remote client is offered at attach time.
    pub fn session_ids(&self) -> Vec<SessionId> {
        lock(&self.sessions).iter().map(|c| c.id).collect()
    }

    /// A fresh handle to hosted session `id`, or `None` for an unknown
    /// id. This is how late-joining clients (e.g. wire connections)
    /// attach to sessions added by someone else.
    pub fn handle(&self, id: SessionId) -> Option<SessionHandle> {
        lock(&self.sessions)
            .iter()
            .find(|cell| cell.id == id)
            .map(|cell| SessionHandle {
                cell: Arc::clone(cell),
                shared: Arc::clone(&self.shared),
            })
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The session directory a wire v4 `ListSessions` reply carries:
    /// one [`SessionInfo`] row per hosted session (registration order),
    /// followed by one per quarantined id (zeroed progress fields).
    /// Much cheaper than [`DebugServer::metrics_snapshot`] — each
    /// session's state lock is taken just long enough to read its
    /// health state, clock, and trace length.
    pub fn session_directory(&self) -> Vec<SessionInfo> {
        let cells: Vec<Arc<SessionCell>> = lock(&self.sessions).clone();
        let mut rows = Vec::with_capacity(cells.len() + self.quarantined.len());
        for cell in &cells {
            let inner = lock(&cell.inner);
            let state = if inner.failed.is_some() {
                HealthState::Failed
            } else if inner.remaining_ns > 0
                || cell.queued.load(Ordering::SeqCst)
                || !lock(&cell.mailbox).is_empty()
            {
                HealthState::Running
            } else {
                HealthState::Parked
            };
            rows.push(SessionInfo {
                session: cell.id,
                state,
                now_ns: inner.session.now_ns(),
                trace_len: inner.session.engine().trace().len() as u64,
                diagnostics: cell.analysis.diagnostic_counts(),
            });
        }
        for (id, _) in &self.quarantined {
            rows.push(SessionInfo {
                session: *id,
                state: HealthState::Quarantined,
                now_ns: 0,
                trace_len: 0,
                diagnostics: (0, 0),
            });
        }
        rows
    }

    /// The cached static-analysis report for session `id`, or `None`
    /// for an unknown id. Computed once at registration (the spec is
    /// immutable for the session's lifetime) — this never takes the
    /// session's state lock, so it is safe on the wire reader path.
    pub fn analysis(&self, id: SessionId) -> Option<Arc<AnalysisReport>> {
        lock(&self.sessions)
            .iter()
            .find(|cell| cell.id == id)
            .map(|cell| Arc::clone(&cell.analysis))
    }

    /// The wire-handshake shared secret, when one is configured.
    pub(crate) fn auth_token(&self) -> Option<&str> {
        self.shared.auth_token.as_deref()
    }

    /// The observability registry the server records into. Disabled
    /// (all-zero) when the server was built with
    /// [`ServerConfig::metrics`] = `false`.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The full observability read-out: fleet aggregates from the
    /// registry plus one health row per hosted session (briefly taking
    /// each session's state lock in turn — not a stop-the-world cut)
    /// and the quarantine list. Works — with zeroed registry-side
    /// counters — even when metrics are disabled; the session rows come
    /// from always-on per-session counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let registry = &self.shared.metrics;
        let mut fleet = metrics::fleet_skeleton(registry);
        let cells: Vec<Arc<SessionCell>> = lock(&self.sessions).clone();
        fleet.sessions = cells.len() as u64;
        let mut sessions = Vec::with_capacity(cells.len() + self.quarantined.len());
        for cell in &cells {
            let inner = lock(&cell.inner);
            let state = if inner.failed.is_some() {
                HealthState::Failed
            } else if inner.remaining_ns > 0
                || cell.queued.load(Ordering::SeqCst)
                || !lock(&cell.mailbox).is_empty()
            {
                HealthState::Running
            } else {
                HealthState::Parked
            };
            let store_stats = inner.session.engine().trace().store_stats();
            let (memo_hits, memo_misses) = inner.session.simulator().memo_stats();
            fleet.events_fed += inner.events_fed;
            fleet.lagged_drops += inner.lagged.get();
            fleet.trace_segments += store_stats.segments;
            fleet.trace_disk_bytes += store_stats.disk_bytes;
            fleet.trace_compacted_segments += store_stats.compacted_segments;
            fleet.memo_hits += memo_hits;
            fleet.memo_misses += memo_misses;
            sessions.push(SessionHealth {
                session: cell.id,
                state,
                detail: inner.failed.clone(),
                uptime_ms: cell.registered_at.elapsed().as_millis() as u64,
                last_slice_age_ms: inner.last_slice.map(|t| t.elapsed().as_millis() as u64),
                now_ns: inner.session.now_ns(),
                trace_len: inner.session.engine().trace().len() as u64,
                trace_segments: store_stats.segments,
                trace_bytes: store_stats.disk_bytes,
                events_fed: inner.events_fed,
                violations: inner.violations,
                breakpoint_hits: inner.breakpoint_hits,
                lagged_drops: inner.lagged.get(),
                remaining_ns: inner.remaining_ns,
                subscribers: inner.subscribers.len() as u64,
                memo_hits,
                memo_misses,
            });
        }
        let quarantined: Vec<QuarantinedSession> = self
            .quarantined
            .iter()
            .map(|(id, reason)| QuarantinedSession {
                session: *id,
                reason: reason.clone(),
            })
            .collect();
        for q in &quarantined {
            sessions.push(SessionHealth {
                session: q.session,
                state: HealthState::Quarantined,
                detail: Some(q.reason.clone()),
                uptime_ms: 0,
                last_slice_age_ms: None,
                now_ns: 0,
                trace_len: 0,
                trace_segments: 0,
                trace_bytes: 0,
                events_fed: 0,
                violations: 0,
                breakpoint_hits: 0,
                lagged_drops: 0,
                remaining_ns: 0,
                subscribers: 0,
                memo_hits: 0,
                memo_misses: 0,
            });
        }
        MetricsSnapshot {
            fleet,
            sessions,
            quarantined,
        }
    }

    /// [`DebugServer::metrics_snapshot`] rendered in Prometheus text
    /// exposition format — scrape-ready (the `fleet_dashboard` example
    /// polls it over TCP).
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// Stops the scheduler: signals every worker, joins the pool, and
    /// releases all sessions. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            // Take the queue lock so a worker between its shutdown check
            // and its cv wait cannot miss the notification.
            let _guard = lock(&shard.queue);
            shard.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.compactor.take() {
            let _ = handle.join();
        }
        // Wake blocking waiters (wait_idle) so they observe the
        // shutdown instead of sleeping out their timeout.
        for cell in lock(&self.sessions).iter() {
            cell.idle_cv.notify_all();
        }
    }
}

impl Drop for DebugServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's handle to one hosted session. Cloneable; all clones
/// address the same session.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    cell: Arc<SessionCell>,
    shared: Arc<Shared>,
}

impl SessionHandle {
    /// The session's server-assigned id.
    pub fn id(&self) -> SessionId {
        self.cell.id
    }

    /// The session's cached static-analysis report (computed at
    /// registration; see [`DebugServer::analysis`]).
    pub fn analysis(&self) -> Arc<AnalysisReport> {
        Arc::clone(&self.cell.analysis)
    }

    /// Posts a command to the session's mailbox and wakes its shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn send(&self, command: SessionCommand) -> Result<(), ServerError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServerError::Shutdown);
        }
        // Gauge up *before* the push: a worker that drains the command
        // in the gap would decrement first (saturating at zero) and the
        // late increment would stick the gauge one high forever. The
        // inc-first order only ever over-counts transiently.
        if self.shared.metrics.enabled() {
            self.shared.metrics.mailbox_depth.inc();
        }
        lock(&self.cell.mailbox).push_back(command);
        if self.shared.enqueue(&self.cell) {
            Ok(())
        } else {
            Err(ServerError::Shutdown)
        }
    }

    /// Subscribes to the session's broadcast stream from this point on,
    /// with the server's default queue capacity
    /// ([`ServerConfig::subscriber_capacity`]). The queue never
    /// back-pressures the pump: a subscriber that falls behind a
    /// bounded queue loses data *visibly* ([`EngineEvent::Lagged`])
    /// instead of growing memory without bound. Drop the receiver to
    /// unsubscribe.
    pub fn subscribe(&self) -> EventReceiver {
        self.subscribe_with_capacity(self.shared.default_subscriber_capacity)
    }

    /// Like [`SessionHandle::subscribe`] with an explicit queue
    /// capacity (`0` = unbounded, the legacy behaviour).
    pub fn subscribe_with_capacity(&self, capacity: usize) -> EventReceiver {
        let mut inner = lock(&self.cell.inner);
        let depth = self
            .shared
            .metrics
            .enabled()
            .then(|| self.shared.metrics.subscriber_depth.clone());
        let (tx, rx) = queue::channel(self.cell.id, capacity, inner.lagged.clone(), depth, None);
        inner.subscribers.push(tx);
        rx
    }

    /// The wire streamer's subscription: like
    /// [`SessionHandle::subscribe_with_capacity`] (`None` = the
    /// server's default capacity), but the queue also raises `notify`
    /// on every push so one streamer thread can sleep on a single flag
    /// while draining every attach on its connection.
    pub(crate) fn subscribe_wire(
        &self,
        capacity: Option<usize>,
        notify: Arc<crate::queue::Notify>,
    ) -> EventReceiver {
        let capacity = capacity.unwrap_or(self.shared.default_subscriber_capacity);
        let mut inner = lock(&self.cell.inner);
        let depth = self
            .shared
            .metrics
            .enabled()
            .then(|| self.shared.metrics.subscriber_depth.clone());
        let (tx, rx) = queue::channel(
            self.cell.id,
            capacity,
            inner.lagged.clone(),
            depth,
            Some(notify),
        );
        inner.subscribers.push(tx);
        rx
    }

    /// Convenience: [`SessionCommand::RunFor`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn run_for(&self, duration_ns: u64) -> Result<(), ServerError> {
        self.send(SessionCommand::RunFor { duration_ns })
    }

    /// Convenience: [`SessionCommand::ScheduleSignal`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn schedule_signal(
        &self,
        time_ns: u64,
        label: &str,
        value: SignalValue,
    ) -> Result<(), ServerError> {
        self.send(SessionCommand::ScheduleSignal {
            time_ns,
            label: label.to_owned(),
            value,
        })
    }

    /// Convenience: [`SessionCommand::AddBreakpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn add_breakpoint(
        &self,
        matcher: CommandMatcher,
        one_shot: bool,
    ) -> Result<(), ServerError> {
        self.send(SessionCommand::AddBreakpoint { matcher, one_shot })
    }

    /// Convenience: [`SessionCommand::ClearBreakpoints`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn clear_breakpoints(&self) -> Result<(), ServerError> {
        self.send(SessionCommand::ClearBreakpoints)
    }

    /// Convenience: [`SessionCommand::Step`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn step(&self) -> Result<(), ServerError> {
        self.send(SessionCommand::Step)
    }

    /// Convenience: [`SessionCommand::Resume`].
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Shutdown`] after the server stopped.
    pub fn resume(&self) -> Result<(), ServerError> {
        self.send(SessionCommand::Resume)
    }

    /// Round-trips a [`SessionCommand::Snapshot`] through the mailbox —
    /// the snapshot is therefore ordered after every command posted
    /// before it — including the serialized trace (O(trace length):
    /// the *whole* record is materialized, even from a disk-backed
    /// store; for long durable sessions page it with
    /// [`SessionHandle::replay_from`] instead).
    ///
    /// # Errors
    ///
    /// [`ServerError::Shutdown`] if the server stops first,
    /// [`ServerError::Timeout`] if `timeout` elapses.
    pub fn snapshot(&self, timeout: Duration) -> Result<SessionSnapshot, ServerError> {
        self.snapshot_inner(timeout, true)
    }

    /// Like [`SessionHandle::snapshot`] but without serializing the
    /// trace (`trace_json` is `None`) — O(1), for counter polling.
    ///
    /// # Errors
    ///
    /// [`ServerError::Shutdown`] if the server stops first,
    /// [`ServerError::Timeout`] if `timeout` elapses.
    pub fn stats(&self, timeout: Duration) -> Result<SessionSnapshot, ServerError> {
        self.snapshot_inner(timeout, false)
    }

    fn snapshot_inner(
        &self,
        timeout: Duration,
        include_trace: bool,
    ) -> Result<SessionSnapshot, ServerError> {
        let (tx, rx) = mpsc::channel();
        self.send(SessionCommand::Snapshot {
            reply: tx,
            include_trace,
        })?;
        self.await_reply(&rx, timeout)
    }

    /// Fetches the trace entries whose event time falls in
    /// `[t0_ns, t1_ns]` (one page, capped at [`MAX_FETCH_ENTRIES`]).
    /// Round-trips through the mailbox like a snapshot, so it is
    /// ordered after every command posted before it.
    ///
    /// # Errors
    ///
    /// [`ServerError::Shutdown`] if the server stops first,
    /// [`ServerError::Timeout`] if `timeout` elapses.
    pub fn fetch_range(
        &self,
        t0_ns: u64,
        t1_ns: u64,
        timeout: Duration,
    ) -> Result<TraceSlice, ServerError> {
        let (tx, rx) = mpsc::channel();
        self.send(SessionCommand::FetchRange {
            t0_ns,
            t1_ns,
            reply: tx,
        })?;
        self.await_reply(&rx, timeout)
    }

    /// Fetches up to `limit` trace entries starting at sequence number
    /// `seq` (`0` = the server cap) — the paging read over a session's
    /// full history, including the persisted pre-restart prefix of a
    /// durable session.
    ///
    /// # Errors
    ///
    /// [`ServerError::Shutdown`] if the server stops first,
    /// [`ServerError::Timeout`] if `timeout` elapses.
    pub fn replay_from(
        &self,
        seq: u64,
        limit: u64,
        timeout: Duration,
    ) -> Result<TraceSlice, ServerError> {
        let (tx, rx) = mpsc::channel();
        self.send(SessionCommand::ReplayFrom {
            seq,
            limit,
            reply: tx,
        })?;
        self.await_reply(&rx, timeout)
    }

    /// Seeks the session's history to target time `t_ns` (clamped to
    /// the live clock): restores the nearest persisted checkpoint at or
    /// before the target into a detached replica and deterministically
    /// replays it forward — O(checkpoint interval), not O(trace
    /// length). The live session is untouched. With `include_trace` the
    /// report carries the replica's full serialized trace,
    /// byte-identical to an uninterrupted run's at the same instant.
    ///
    /// # Errors
    ///
    /// [`ServerError::Persist`] on an in-memory session or when the
    /// replica cannot be rebuilt, plus the usual
    /// [`ServerError::Shutdown`] / [`ServerError::Timeout`].
    pub fn seek_to(
        &self,
        t_ns: u64,
        include_trace: bool,
        timeout: Duration,
    ) -> Result<SeekReport, ServerError> {
        let (tx, rx) = mpsc::channel();
        self.send(SessionCommand::SeekTo {
            t_ns,
            include_trace,
            reply: tx,
        })?;
        self.await_reply(&rx, timeout)?
            .map_err(ServerError::Persist)
    }

    /// Rewinds the session's history `entries` trace entries from the
    /// current end of the trace — same machinery (and same errors) as
    /// [`SessionHandle::seek_to`]. Stepping below the trace's retention
    /// floor is an error.
    pub fn step_back(
        &self,
        entries: u64,
        include_trace: bool,
        timeout: Duration,
    ) -> Result<SeekReport, ServerError> {
        let (tx, rx) = mpsc::channel();
        self.send(SessionCommand::StepBack {
            entries,
            include_trace,
            reply: tx,
        })?;
        self.await_reply(&rx, timeout)?
            .map_err(ServerError::Persist)
    }

    /// Replays the trace window `[t0_ns, t1_ns]` through
    /// checkpoint-restore + deterministic re-execution and returns it
    /// as one [`TraceSlice`] page (same caps and continuation contract
    /// as [`SessionHandle::fetch_range`]). Works even when the live
    /// store has evicted the window's segments, as long as a checkpoint
    /// precedes it.
    ///
    /// # Errors
    ///
    /// Same as [`SessionHandle::seek_to`].
    pub fn replay_window(
        &self,
        t0_ns: u64,
        t1_ns: u64,
        timeout: Duration,
    ) -> Result<TraceSlice, ServerError> {
        let (tx, rx) = mpsc::channel();
        self.send(SessionCommand::ReplayWindow {
            t0_ns,
            t1_ns,
            reply: tx,
        })?;
        self.await_reply(&rx, timeout)?
            .map_err(ServerError::Persist)
    }

    /// Waits for a mailbox-routed reply, translating a dropped sender
    /// into the session/server failure that caused it.
    fn await_reply<T>(&self, rx: &mpsc::Receiver<T>, timeout: Duration) -> Result<T, ServerError> {
        let deadline = Instant::now() + timeout;
        loop {
            match rx.recv_timeout(POLL) {
                Ok(reply) => return Ok(reply),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The reply sender was dropped undelivered. Usually
                    // that means shutdown — but a panicked turn unwinds
                    // the drained command too; report the session
                    // failure, not a bogus server death.
                    if let Some(msg) = &lock(&self.cell.inner).failed {
                        return Err(ServerError::SessionFailed(msg.clone()));
                    }
                    return Err(ServerError::Shutdown);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return Err(ServerError::Shutdown);
                    }
                    if Instant::now() >= deadline {
                        return Err(ServerError::Timeout);
                    }
                }
            }
        }
    }

    /// Blocks until the session is quiescent: no run budget left, empty
    /// mailbox, and not on its shard's run queue.
    ///
    /// # Errors
    ///
    /// [`ServerError::SessionFailed`] if the session failed,
    /// [`ServerError::Shutdown`] if the server stops first,
    /// [`ServerError::Timeout`] if `timeout` elapses.
    pub fn wait_idle(&self, timeout: Duration) -> Result<(), ServerError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.cell.inner);
        loop {
            if let Some(msg) = &inner.failed {
                return Err(ServerError::SessionFailed(msg.clone()));
            }
            let busy = inner.remaining_ns > 0
                || self.cell.queued.load(Ordering::SeqCst)
                || !lock(&self.cell.mailbox).is_empty();
            if !busy {
                return Ok(());
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(ServerError::Shutdown);
            }
            if Instant::now() >= deadline {
                return Err(ServerError::Timeout);
            }
            inner = self
                .cell
                .idle_cv
                .wait_timeout(inner, POLL)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
}

/// One worker: pops sessions off its shard queue and gives each a turn.
fn worker_loop(shared: &Shared, shard_idx: usize) {
    let shard = &shared.shards[shard_idx];
    loop {
        let cell = {
            let mut queue = lock(&shard.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(cell) = queue.pop_front() {
                    break cell;
                }
                queue = shard
                    .cv
                    .wait_timeout(queue, POLL)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        // Clear the flag *before* draining the mailbox: a command posted
        // after the drain re-queues the session instead of stranding.
        cell.queued.store(false, Ordering::SeqCst);
        // A panic inside one session's turn (decode bug, VM fault path,
        // user-visible assert) must not take the shard's worker down
        // with every sibling pinned to it: catch it, park the session
        // as failed, and keep serving the queue.
        let turn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_turn(shared, &cell);
        }));
        if turn.is_err() {
            let mut inner = lock(&cell.inner);
            fail(
                &mut inner,
                cell.id,
                "worker panicked during this session's turn",
            );
            drop(inner);
            cell.idle_cv.notify_all();
        }
    }
}

/// The retention sweep: every `interval`, give each live session's
/// trace store one maintenance turn (compress at most one cold segment,
/// evict oldest sealed segments while over the disk budget — see
/// [`gmdf_engine::TraceStore::maintain`]). Each turn holds that one
/// session's state lock; sessions are swept strictly one at a time so a
/// long compression never blocks more than one shard's pump. A
/// maintenance failure fails the session (its history can no longer be
/// trusted to be contiguous), never the server.
fn compactor_loop(shared: &Shared, sessions: &Mutex<Vec<Arc<SessionCell>>>, interval: Duration) {
    loop {
        // Sleep in POLL steps so shutdown is honored promptly even with
        // a long sweep interval.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let step = POLL.min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        let cells: Vec<Arc<SessionCell>> = lock(sessions).clone();
        for cell in cells {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let mut inner = lock(&cell.inner);
            if inner.failed.is_some() {
                continue;
            }
            if let Err(e) = inner.session.maintain_trace() {
                fail(
                    &mut inner,
                    cell.id,
                    &format!("trace maintenance failed: {e}"),
                );
                drop(inner);
                cell.idle_cv.notify_all();
            }
        }
    }
}

/// One scheduling turn: apply mailed commands, pump at most one slice,
/// publish deltas, and reschedule or park.
fn run_turn(shared: &Shared, cell: &Arc<SessionCell>) {
    let registry = &*shared.metrics;
    let observed = registry.enabled();
    let mut inner = lock(&cell.inner);
    // Drain the mailbox only while holding `inner` (lock order
    // inner → mailbox): `wait_idle` checks "mailbox empty" under the
    // same `inner` lock, so it can never observe the in-between state
    // where commands have left the mailbox but are not yet applied.
    let commands: Vec<SessionCommand> = {
        let mut mailbox = lock(&cell.mailbox);
        mailbox.drain(..).collect()
    };
    if observed {
        registry.mailbox_depth.sub(commands.len() as u64);
    }
    for command in commands {
        apply_command(&mut inner, cell.id, command, registry);
    }
    let mut pumped = false;
    if inner.failed.is_none() && inner.remaining_ns > 0 {
        let dt = inner.slice_ns.min(inner.remaining_ns);
        let slice_t0 = observed.then(Instant::now);
        match inner.session.run_slice(dt) {
            Ok(report) => {
                inner.remaining_ns -= dt;
                inner.events_fed += report.events_fed as u64;
                if let Some(t0) = slice_t0 {
                    let shard = &registry.shards[cell.shard];
                    shard.slices.inc();
                    shard.slice_wall_ns.record(t0.elapsed().as_nanos() as u64);
                    shard.events_per_slice.record(report.events_fed as u64);
                    registry
                        .events_recent
                        .push(registry.now_ms(), report.events_fed as u64);
                    inner.last_slice = Some(Instant::now());
                }
                // Push the slice's trace appends out of the process
                // before telling anyone about them — a process crash
                // after the broadcast must not lose acknowledged
                // history. (Power-loss durability comes from the
                // fsynced command journal instead: a trace tail lost
                // with the OS is regenerated by deterministic replay
                // on restore.)
                if let Err(e) = inner.session.sync_trace() {
                    fail(&mut inner, cell.id, &format!("trace store failed: {e}"));
                } else {
                    // The trace is on disk; if the slice crossed a
                    // checkpoint boundary, persist a full-state image
                    // before acknowledging the slice (a checkpoint that
                    // claimed entries the trace store never synced
                    // would restore ahead of its own history).
                    maybe_checkpoint(&mut inner, cell.id, registry);
                    if inner.failed.is_none() {
                        let now_ns = inner.session.now_ns();
                        broadcast(
                            &mut inner,
                            EngineEvent::SliceCompleted {
                                session: cell.id,
                                now_ns,
                                report,
                            },
                        );
                        pumped = true;
                    }
                }
            }
            Err(e) => fail(&mut inner, cell.id, &e.to_string()),
        }
    }
    publish_deltas(&mut inner, cell.id);
    let idle_now = inner.remaining_ns == 0 || inner.failed.is_some();
    if pumped && idle_now {
        let now_ns = inner.session.now_ns();
        broadcast(
            &mut inner,
            EngineEvent::Idle {
                session: cell.id,
                now_ns,
            },
        );
    }
    drop(inner);
    let more_mail = !lock(&cell.mailbox).is_empty();
    if !idle_now || more_mail {
        let _ = shared.enqueue(cell); // on shutdown the turn just ends
    }
    if idle_now {
        cell.idle_cv.notify_all();
    }
}

/// Applies one mailed command to the session. Durable sessions journal
/// state-affecting commands — stamped with the target time at which
/// they take effect — so a restarted server can replay them at exactly
/// the same instants. Only *accepted* commands enter the journal: a
/// rejected one in the replayable history would deterministically
/// re-fail every subsequent restore of the session.
fn apply_command(
    inner: &mut SessionInner,
    id: SessionId,
    command: SessionCommand,
    registry: &MetricsRegistry,
) {
    // `ScheduleSignal` is the one journaled command the session can
    // reject (unknown label — a client wiring bug). Validate it by
    // applying it *before* journaling, and journal only on success.
    if let SessionCommand::ScheduleSignal {
        time_ns,
        ref label,
        value,
    } = command
    {
        let at_ns = inner.session.now_ns();
        if let Err(e) = inner.session.schedule_signal(time_ns, label, value) {
            fail(inner, id, &e.to_string());
            return;
        }
        journal_command(inner, id, at_ns, &command, registry);
        return;
    }
    // The remaining journaled commands are infallible; journal them
    // first, so a crash between the two writes leaves the journal
    // ahead of the session (replay regenerates the effect), never
    // behind it.
    if persist::journaled(&command) {
        let at_ns = inner.session.now_ns();
        if !journal_command(inner, id, at_ns, &command, registry) {
            return;
        }
    }
    match command {
        SessionCommand::ScheduleSignal { .. } => {} // applied above
        SessionCommand::AddBreakpoint { matcher, one_shot } => {
            inner.session.engine_mut().add_breakpoint(matcher, one_shot);
        }
        SessionCommand::ClearBreakpoints => inner.session.engine_mut().clear_breakpoints(),
        SessionCommand::Step => {
            inner.session.engine_mut().step();
        }
        SessionCommand::Resume => {
            inner.session.engine_mut().resume();
        }
        SessionCommand::RunFor { duration_ns } => {
            inner.remaining_ns = inner.remaining_ns.saturating_add(duration_ns);
        }
        SessionCommand::Snapshot {
            reply,
            include_trace,
        } => match snapshot_of(inner, id, include_trace) {
            Ok(snapshot) => {
                let _ = reply.send(snapshot); // client may have given up
            }
            // Same policy as FetchRange/ReplayFrom: a trace the store
            // cannot read back must reach the client as a failure, not
            // as a silently truncated record.
            Err(e) => fail(inner, id, &format!("trace history read failed: {e}")),
        },
        SessionCommand::FetchRange {
            t0_ns,
            t1_ns,
            reply,
        } => {
            let read = (|| {
                let trace = inner.session.engine().trace();
                let (lo, hi) = trace.window_bounds(t0_ns, t1_ns)?;
                let end = hi.min(lo.saturating_add(MAX_FETCH_ENTRIES));
                let entries = read_bounded(trace, lo, end)?;
                Ok::<_, StoreError>((lo, hi, entries))
            })();
            match read {
                Ok((lo, hi, entries)) => {
                    let first = entries.first().map_or(lo, |e| e.seq);
                    let next = entries.last().map_or(first, |e| e.seq + 1);
                    let _ = reply.send(TraceSlice {
                        session: id,
                        first_seq: first,
                        complete: next >= hi,
                        entries,
                        end_seq: hi,
                    });
                }
                // Fail the session and drop the reply unanswered: the
                // waiting client observes the failure instead of an
                // empty window falsely marked complete.
                Err(e) => fail(inner, id, &format!("trace history read failed: {e}")),
            }
        }
        SessionCommand::ReplayFrom { seq, limit, reply } => {
            let read = (|| {
                let trace = inner.session.engine().trace();
                let len = trace.len() as u64;
                let cap = if limit == 0 {
                    MAX_FETCH_ENTRIES
                } else {
                    limit.min(MAX_FETCH_ENTRIES)
                };
                // Clamp the page's low edge to the eviction floor
                // *before* sizing it: history below the floor is gone
                // by policy, and a window computed from the raw `seq`
                // would end below the floor — an empty, incomplete page
                // whose continuation point never advances.
                let lo = seq.max(trace.first_retained_seq());
                let end = len.min(lo.saturating_add(cap));
                let entries = read_bounded(trace, lo, end)?;
                Ok::<_, StoreError>((len, lo, entries))
            })();
            match read {
                Ok((len, lo, entries)) => {
                    // On a retention-evicted store the page may start
                    // above the requested `seq` (history below the
                    // eviction floor is gone); `first_seq` reports
                    // where it actually starts so clients resume from
                    // `last().seq + 1`, not from arithmetic on `seq`.
                    let first = entries.first().map_or(lo, |e| e.seq);
                    let next = entries.last().map_or(first, |e| e.seq + 1);
                    let _ = reply.send(TraceSlice {
                        session: id,
                        first_seq: first,
                        complete: next >= len,
                        entries,
                        end_seq: len,
                    });
                }
                Err(e) => fail(inner, id, &format!("trace history read failed: {e}")),
            }
        }
        // The time-travel trio runs entirely on a detached replica: a
        // seek failure is the *request's* failure (bad target, evicted
        // history, damaged checkpoint chain), reported on the reply
        // channel — it never fails the live session.
        SessionCommand::SeekTo {
            t_ns,
            include_trace,
            reply,
        } => {
            let target = t_ns.min(inner.session.now_ns());
            let _ = reply.send(seek_to_target(inner, id, registry, target, include_trace));
        }
        SessionCommand::StepBack {
            entries,
            include_trace,
            reply,
        } => {
            let result = step_back_target(inner, entries)
                .and_then(|target| seek_to_target(inner, id, registry, target, include_trace));
            let _ = reply.send(result);
        }
        SessionCommand::ReplayWindow {
            t0_ns,
            t1_ns,
            reply,
        } => {
            // The checkpoint must land *strictly before* the window so
            // every in-window entry (time >= t0) is regenerated by the
            // replica rather than assumed persisted: an entry the
            // checkpoint already covers has time <= checkpoint time
            // < t0 and therefore cannot be part of the window.
            let target = t1_ns.min(inner.session.now_ns());
            let result = seek_replica(inner, registry, t0_ns, true, target).and_then(|replica| {
                let trace = replica.session.engine().trace();
                let (lo, hi) = trace
                    .window_bounds(t0_ns, t1_ns)
                    .map_err(|e| format!("replica window read failed: {e}"))?;
                let end = hi.min(lo.saturating_add(MAX_FETCH_ENTRIES));
                let entries = read_bounded(trace, lo, end)
                    .map_err(|e| format!("replica window read failed: {e}"))?;
                let first = entries.first().map_or(lo, |e| e.seq);
                let next = entries.last().map_or(first, |e| e.seq + 1);
                Ok(TraceSlice {
                    session: id,
                    first_seq: first,
                    complete: next >= hi,
                    entries,
                    end_seq: hi,
                })
            });
            let _ = reply.send(result);
        }
    }
}

/// Persists a full-state checkpoint when the trace has grown by at
/// least one checkpoint interval since the last one. Runs on the pump
/// path right after `sync_trace`, so a checkpoint never references
/// trace entries that are not themselves on disk yet. A write failure
/// fails the session — a durable session whose checkpoint chain can no
/// longer advance would silently degrade every future seek.
fn maybe_checkpoint(inner: &mut SessionInner, id: SessionId, registry: &MetricsRegistry) {
    if inner.checkpoint_interval == 0 || inner.checkpoints.is_none() {
        return;
    }
    // During post-restart catch-up the simulator's clock lags the
    // recovered store: an image taken now would pair a stale `t_ns`
    // with the full recovered length, and a seek restoring it would
    // regenerate (duplicate) the gap. Checkpoints resume once the
    // deterministic replay has re-reached the recovered length.
    if inner.session.engine().trace().catching_up() {
        return;
    }
    let len = inner.session.engine().trace().len() as u64;
    if len.saturating_sub(inner.last_checkpoint_len) < inner.checkpoint_interval {
        return;
    }
    let image = persist::ServerCheckpoint {
        journal_pos: inner.journal_len,
        session: inner.session.save_state(),
    };
    let payload = match serde_json::to_string(&image) {
        Ok(payload) => payload,
        Err(e) => {
            fail(inner, id, &format!("checkpoint serialization failed: {e}"));
            return;
        }
    };
    let t0 = registry.enabled().then(Instant::now);
    let store = inner.checkpoints.as_mut().expect("checked above");
    match store.save(len, image.session.t_ns(), payload.as_bytes()) {
        Ok(bytes) => {
            inner.last_checkpoint_len = len;
            if let Some(t0) = t0 {
                registry.checkpoint_writes.inc();
                registry.checkpoint_bytes.add(bytes);
                registry
                    .checkpoint_write_ns
                    .record(t0.elapsed().as_nanos() as u64);
            }
            // Pin retention: segments at or above the oldest retained
            // checkpoint's position must survive eviction — a seek
            // restores that checkpoint and pages its forward window out
            // of the persisted prefix.
            if let Some(oldest) = inner
                .checkpoints
                .as_ref()
                .and_then(CheckpointStore::oldest_seq)
            {
                inner.session.set_trace_retain_floor(oldest);
            }
        }
        Err(e) => fail(inner, id, &format!("checkpoint write failed: {e}")),
    }
}

/// A detached time-travel replica: an independent session rebuilt at
/// some past instant from checkpoint + journal replay. Its trace store
/// is an [`OffsetMemStore`] holding only the regenerated suffix, with
/// absolute sequence numbers.
struct SeekReplica {
    session: DebugSession,
    /// Trace length at the restored checkpoint (0 when replaying from
    /// zero) — the replica's store starts here.
    base: u64,
    /// The checkpoint that was restored, if any.
    checkpoint: Option<CheckpointMeta>,
    /// Journaled commands re-applied on the way to the target.
    replayed_commands: u64,
}

/// Builds a replica of the session at `target_ns`: restores the newest
/// *loadable* checkpoint whose time satisfies the horizon (`< horizon`
/// when `strictly_before`, else `<= horizon`), then deterministically
/// replays journal and pump up to the target. A damaged checkpoint
/// falls back to the next older one; with none usable the replica
/// replays from time zero — strictly slower, never wrong.
fn seek_replica(
    inner: &SessionInner,
    registry: &MetricsRegistry,
    horizon_ns: u64,
    strictly_before: bool,
    target_ns: u64,
) -> Result<SeekReplica, String> {
    let dir = inner.dir.as_ref().ok_or_else(|| {
        "time travel needs a durable session (in-memory sessions keep no checkpoints or journal)"
            .to_owned()
    })?;
    let spec = persist::load_spec(dir)?;
    let records = persist::read_journal(dir)?;
    let mut restored: Option<(CheckpointMeta, persist::ServerCheckpoint)> = None;
    if let Some(store) = &inner.checkpoints {
        let in_horizon = |m: &CheckpointMeta| {
            if strictly_before {
                m.t_ns < horizon_ns
            } else {
                m.t_ns <= horizon_ns
            }
        };
        for meta in store.metas().iter().rev().filter(|m| in_horizon(m)) {
            let t0 = registry.enabled().then(Instant::now);
            // A checkpoint that fails to load or parse is skipped, not
            // fatal: the one before it (or replay-from-zero) serves the
            // same seek, just more slowly.
            let Ok(payload) = store.load(meta) else {
                continue;
            };
            let Ok(text) = String::from_utf8(payload) else {
                continue;
            };
            let Ok(image) = serde_json::from_str::<persist::ServerCheckpoint>(&text) else {
                continue;
            };
            if let Some(t0) = t0 {
                registry.checkpoint_restores.inc();
                registry
                    .checkpoint_restore_ns
                    .record(t0.elapsed().as_nanos() as u64);
            }
            restored = Some((*meta, image));
            break;
        }
    }
    let mut session = spec
        .build()
        .map_err(|e| format!("replica rebuild failed: {e}"))?;
    let (base, journal_pos, checkpoint) = match restored {
        Some((meta, image)) => {
            session
                .restore_state(&image.session)
                .map_err(|e| format!("checkpoint restore failed: {e}"))?;
            (image.session.trace_len(), image.journal_pos, Some(meta))
        }
        None => (0, 0, None),
    };
    session.resume_trace_store(Box::new(OffsetMemStore::new(base)));
    // Deterministic replay, mirroring `persist::restore_session`: pump
    // to each command's application instant, apply it, stop at the
    // target. `RunFor` only grants budget (the pump below realizes it);
    // read-only commands are never journaled.
    let mut replayed_commands: u64 = 0;
    for record in records.iter().skip(journal_pos as usize) {
        if record.at_ns > target_ns {
            break;
        }
        let now = session.now_ns();
        if record.at_ns > now {
            session
                .run_for(record.at_ns - now)
                .map_err(|e| format!("replica replay failed: {e}"))?;
        }
        match &record.command {
            SessionCommand::ScheduleSignal {
                time_ns,
                label,
                value,
            } => {
                session
                    .schedule_signal(*time_ns, label, *value)
                    .map_err(|e| format!("replica stimulus replay failed: {e}"))?;
            }
            SessionCommand::AddBreakpoint { matcher, one_shot } => {
                session
                    .engine_mut()
                    .add_breakpoint(matcher.clone(), *one_shot);
            }
            SessionCommand::ClearBreakpoints => session.engine_mut().clear_breakpoints(),
            SessionCommand::Step => {
                session.engine_mut().step();
            }
            SessionCommand::Resume => {
                session.engine_mut().resume();
            }
            _ => {}
        }
        replayed_commands += 1;
    }
    let now = session.now_ns();
    if target_ns > now {
        session
            .run_for(target_ns - now)
            .map_err(|e| format!("replica replay failed: {e}"))?;
    }
    Ok(SeekReplica {
        session,
        base,
        checkpoint,
        replayed_commands,
    })
}

/// Runs a full seek to `target_ns` and packages the result.
fn seek_to_target(
    inner: &SessionInner,
    id: SessionId,
    registry: &MetricsRegistry,
    target_ns: u64,
    include_trace: bool,
) -> Result<SeekReport, String> {
    let replica = seek_replica(inner, registry, target_ns, false, target_ns)?;
    let trace_len = replica.session.engine().trace().len() as u64;
    let trace_json = if include_trace {
        Some(replica_trace_json(inner, &replica)?)
    } else {
        None
    };
    Ok(SeekReport {
        session: id,
        target_ns,
        now_ns: replica.session.now_ns(),
        checkpoint_seq: replica.checkpoint.map(|m| m.seq),
        checkpoint_t_ns: replica.checkpoint.map(|m| m.t_ns),
        replayed_commands: replica.replayed_commands,
        replayed_entries: trace_len.saturating_sub(replica.base),
        trace_len,
        engine_state: replica.session.engine().state(),
        trace_json,
    })
}

/// Serializes the replica's full trace: the persisted prefix below the
/// checkpoint (read from the live store) plus the regenerated suffix —
/// byte-identical to the trace an uninterrupted run serialized at the
/// same instant.
fn replica_trace_json(inner: &SessionInner, replica: &SeekReplica) -> Result<String, String> {
    let mut combined: Vec<TraceEntry> = Vec::new();
    if replica.base > 0 {
        let live = inner.session.engine().trace();
        live.read_range_into(0, replica.base, &mut combined)
            .map_err(|e| format!("trace prefix read failed: {e}"))?;
        if combined.len() as u64 != replica.base {
            return Err(format!(
                "trace prefix below the checkpoint is incomplete ({} of {} entries retained) — \
                 retention evicted it; use ReplayWindow instead",
                combined.len(),
                replica.base
            ));
        }
    }
    combined.extend(replica.session.engine().trace().entries());
    Ok(ExecutionTrace::with_store(Box::new(MemStore::from_entries(combined))).to_json())
}

/// Resolves a [`SessionCommand::StepBack`] to the target instant: the
/// event time of the entry `entries` + 1 positions before the current
/// end of the trace (so the replica's trace ends `entries` entries
/// shorter). Stepping over the whole trace lands at time zero.
fn step_back_target(inner: &SessionInner, entries: u64) -> Result<u64, String> {
    let trace = inner.session.engine().trace();
    let len = trace.len() as u64;
    let keep = len.saturating_sub(entries);
    if keep == 0 {
        return Ok(0);
    }
    let pivot = keep - 1;
    if pivot < trace.first_retained_seq() {
        return Err(format!(
            "step-back target (trace entry {pivot}) is below the retention floor ({})",
            trace.first_retained_seq()
        ));
    }
    let mut page: Vec<TraceEntry> = Vec::new();
    trace
        .read_range_into(pivot, pivot + 1, &mut page)
        .map_err(|e| format!("trace read failed: {e}"))?;
    page.first()
        .map(|e| e.event.time_ns)
        .ok_or_else(|| format!("trace entry {pivot} could not be read back"))
}

/// Reads trace entries `[lo, end)` for one reply page, bounded by the
/// caller's entry cap (baked into `end`) *and* [`MAX_FETCH_BYTES`] of
/// encoded payload — see the constant for why both bounds exist. Reads
/// in store-page-sized chunks so a byte-capped request never pulls the
/// whole entry range off disk first. On a retention-evicted store the
/// result starts at the eviction floor when `lo` is below it.
fn read_bounded(
    trace: &gmdf_engine::ExecutionTrace,
    lo: u64,
    end: u64,
) -> Result<Vec<TraceEntry>, StoreError> {
    const CHUNK: u64 = 256;
    let mut entries: Vec<TraceEntry> = Vec::new();
    let mut budget = MAX_FETCH_BYTES;
    // Start at the eviction floor: chunks below it would come back
    // empty and end the loop before any retained entry was reached.
    let mut next = lo.max(trace.first_retained_seq());
    while next < end {
        let mut page = Vec::new();
        trace.read_range_into(next, end.min(next.saturating_add(CHUNK)), &mut page)?;
        if page.is_empty() {
            break; // nothing retained in the remaining range
        }
        for entry in page {
            let cost = serde_json::to_string(&entry).map_or(0, |s| s.len() as u64);
            // Always ship at least one entry so paging makes progress;
            // a single record past the frame limit is the wire layer's
            // terminal case, not ours.
            if !entries.is_empty() && cost > budget {
                return Ok(entries);
            }
            budget = budget.saturating_sub(cost);
            entries.push(entry);
        }
        // Continue after the last entry actually read — below an
        // eviction floor the store returns fewer than asked, starting
        // above `next`, and naive `next += CHUNK` would re-read.
        next = entries.last().expect("page was non-empty").seq + 1;
    }
    Ok(entries)
}

/// Builds a consistent snapshot under the state lock.
fn snapshot_of(
    inner: &SessionInner,
    id: SessionId,
    include_trace: bool,
) -> Result<SessionSnapshot, StoreError> {
    let engine = inner.session.engine();
    let trace_json = if include_trace {
        Some(engine.trace().try_to_json()?)
    } else {
        None
    };
    Ok(SessionSnapshot {
        session: id,
        now_ns: inner.session.now_ns(),
        engine_state: engine.state(),
        pending: engine.pending(),
        trace_len: engine.trace().len(),
        trace_json,
        events_fed: inner.events_fed,
        violations: inner.violations,
        breakpoint_hits: inner.breakpoint_hits,
        lagged_drops: inner.lagged.get(),
        remaining_ns: inner.remaining_ns,
    })
}

/// Journals one *accepted* command on a durable session (no-op for
/// in-memory ones). A journal write failure fails the session — its
/// durable history could no longer be trusted to match its state.
/// Returns `false` when the append failed.
fn journal_command(
    inner: &mut SessionInner,
    id: SessionId,
    at_ns: u64,
    command: &SessionCommand,
    registry: &MetricsRegistry,
) -> bool {
    let result = match inner.journal.as_mut() {
        Some(journal) => {
            // Timed here (not inside `Journal`) so the journal stays a
            // plain file wrapper; the measurement includes the fsync —
            // the dominant cost on a durable session's command path.
            let t0 = registry.enabled().then(Instant::now);
            let result = journal.append(at_ns, command);
            if let Some(t0) = t0 {
                registry.journal_appends.inc();
                registry
                    .journal_append_ns
                    .record(t0.elapsed().as_nanos() as u64);
            }
            result
        }
        None => return true,
    };
    if let Err(e) = result {
        fail(inner, id, &format!("command journal write failed: {e}"));
        return false;
    }
    inner.journal_len += 1;
    true
}

/// Parks the session as failed and tells subscribers.
fn fail(inner: &mut SessionInner, id: SessionId, message: &str) {
    inner.failed = Some(message.to_owned());
    inner.remaining_ns = 0;
    broadcast(
        &mut *inner,
        EngineEvent::Error {
            session: id,
            message: message.to_owned(),
        },
    );
}

/// Publishes everything recorded since the last turn: engine notices
/// (breakpoint hits, violation counts), violation messages, and the
/// trace delta. The session's counters and cursor always advance; the
/// owned event payloads (the delta read-back, message strings) are only
/// built when someone is subscribed.
fn publish_deltas(inner: &mut SessionInner, id: SessionId) {
    let has_subscribers = !inner.subscribers.is_empty();
    let mut events = Vec::new();
    // Counters come from the per-command notices, so they advance even
    // when nobody subscribes and the trace store is disk-backed — no
    // read-back just to count.
    while let Ok(notice) = inner.notices.try_recv() {
        inner.violations += notice.violations as u64;
        if notice.hit_breakpoint {
            inner.breakpoint_hits += 1;
            if has_subscribers {
                events.push(EngineEvent::BreakpointHit {
                    session: id,
                    seq: notice.seq,
                    time_ns: notice.time_ns,
                });
            }
        }
    }
    let cursor = inner.trace_cursor;
    let trace_len = inner.session.engine().trace().len() as u64;
    let mut read_error: Option<StoreError> = None;
    if has_subscribers && trace_len > cursor {
        let mut delta: Vec<TraceEntry> = Vec::new();
        match inner
            .session
            .engine()
            .trace()
            .read_range_into(cursor, trace_len, &mut delta)
        {
            Ok(()) => {
                inner.trace_cursor = trace_len;
                for entry in &delta {
                    for message in &entry.violations {
                        events.push(EngineEvent::Violation {
                            session: id,
                            seq: entry.seq,
                            message: message.clone(),
                        });
                    }
                }
                if !delta.is_empty() {
                    events.push(EngineEvent::TraceDelta {
                        session: id,
                        entries: delta,
                    });
                }
            }
            // The cursor stays put; the session is failed below, after
            // the events gathered so far have gone out.
            Err(e) => read_error = Some(e),
        }
    } else {
        // Nobody is listening: skip the read-back, the history stays
        // addressable through `FetchRange`/`ReplayFrom`.
        inner.trace_cursor = trace_len;
    }
    for event in events {
        broadcast(inner, event);
    }
    if let Some(e) = read_error {
        // A delta the store cannot serve must not strand the stream's
        // tail: if the session simply parked, no further turn would run
        // until an external command arrived and subscribers would wait
        // on the missing entries forever. Failing the session makes
        // the loss visible (Error event, failed snapshots) instead.
        fail(inner, id, &format!("trace delta read failed: {e}"));
    }
}

/// Delivers `event` to every live subscriber, pruning dead ones. The
/// last recipient gets the event by move, so the common single-
/// subscriber case never deep-clones a `TraceDelta` payload. Pushes
/// never block: a full bounded queue coalesces or drops on the
/// subscriber's side (see [`crate::queue`]).
fn broadcast(inner: &mut SessionInner, event: EngineEvent) {
    let subscribers = &mut inner.subscribers;
    match subscribers.len() {
        0 => {}
        1 => {
            if !subscribers[0].push(event) {
                subscribers.clear();
            }
        }
        n => {
            let mut alive = vec![true; n];
            let mut any_dead = false;
            for (i, subscriber) in subscribers.iter().enumerate().take(n - 1) {
                if !subscriber.push(event.clone()) {
                    alive[i] = false;
                    any_dead = true;
                }
            }
            if !subscribers[n - 1].push(event) {
                alive[n - 1] = false;
                any_dead = true;
            }
            if any_dead {
                // Positional retain. Deliberately index-defensive: this
                // runs inside the broadcast lock, where a panic would
                // poison the session for every other subscriber, so a
                // length mismatch keeps the subscriber rather than
                // unwinding.
                let mut idx = 0;
                subscribers.retain(|_| {
                    let keep = alive.get(idx).copied().unwrap_or(true);
                    idx += 1;
                    keep
                });
            }
        }
    }
}
