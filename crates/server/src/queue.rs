//! Bounded per-subscriber event queues — the broadcast path's
//! backpressure policy.
//!
//! Every subscriber owns one single-producer single-consumer queue. The
//! producer is the session's scheduling turn (the worker thread inside
//! the broadcast path), which must **never block and never grow memory
//! without bound** on behalf of a slow consumer; the consumer is
//! whoever holds the [`EventReceiver`] — an in-process viewer or a wire
//! connection's writer thread.
//!
//! Overflow policy, in order:
//!
//! 1. **Coalesce** — if the incoming event and the newest queued event
//!    are both `TraceDelta`s, the new entries are appended to the queued
//!    delta (up to [`MAX_COALESCED_ENTRIES`] per delta). No data is
//!    lost; the subscriber just sees one bigger delta.
//! 2. **Drop oldest** — otherwise the oldest queued events are dropped
//!    to make room and counted; the receiver is handed an
//!    [`EngineEvent::Lagged`] carrying that count *before* the next
//!    surviving event, so loss is visible exactly where it happened.
//!    A dropped `TraceDelta` counts one per trace entry it carried;
//!    every other event counts one.
//!
//! A capacity of `0` selects the legacy unbounded queue (no coalescing,
//! no loss, unbounded memory) — the pre-backpressure behaviour.

use crate::event::EngineEvent;
use crate::metrics::{Counter, Gauge};
use crate::server::{lock, SessionId};
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on the entries a coalesced `TraceDelta` may accumulate;
/// past this, overflow falls through to drop-oldest so a stalled
/// subscriber bounds memory even on a delta-only stream.
pub const MAX_COALESCED_ENTRIES: usize = 4096;

/// A shared wake flag for a consumer multiplexing **many** queues: the
/// wire streamer drains every attach on its connection round-robin,
/// so it cannot block inside any single queue's condvar. Each of its
/// queues is built with the same `Arc<Notify>`; every push (and sender
/// drop) raises the flag, and the streamer sleeps on
/// [`Notify::wait_timeout`] only when a full sweep found nothing.
///
/// The flag is level-triggered and sticky: a notify that lands between
/// the streamer's sweep and its wait returns the wait immediately, so
/// no event can be stranded for a full poll interval.
#[derive(Debug, Default)]
pub(crate) struct Notify {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Notify {
    /// Raises the flag and wakes a waiter.
    pub(crate) fn notify(&self) {
        *lock(&self.flag) = true;
        self.cv.notify_all();
    }

    /// Sleeps until the flag is raised (consuming it) or `timeout`
    /// elapses. A flag raised before the call returns immediately.
    pub(crate) fn wait_timeout(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut flag = lock(&self.flag);
        loop {
            if *flag {
                *flag = false;
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            flag = self
                .cv
                .wait_timeout(flag, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
}

#[derive(Debug)]
struct State {
    events: VecDeque<EngineEvent>,
    /// Events dropped since the last `Lagged` was handed out.
    dropped: u64,
    rx_alive: bool,
    tx_alive: bool,
}

#[derive(Debug)]
struct Channel {
    session: SessionId,
    /// Maximum queued events; `0` = unbounded (legacy behaviour).
    capacity: usize,
    state: Mutex<State>,
    cv: Condvar,
    /// The owning session's cumulative drop counter — bumped alongside
    /// `State::dropped` so losses outlive this queue (they feed
    /// [`crate::SessionSnapshot::lagged_drops`]).
    lagged: Counter,
    /// Fleet-wide queued-event gauge, when metrics are enabled.
    depth: Option<Gauge>,
    /// External wake hook for consumers multiplexing many queues (the
    /// wire streamer); raised on every push and on sender drop.
    notify: Option<Arc<Notify>>,
}

/// Creates one subscriber queue for `session` with the given capacity
/// (`0` = unbounded). Drops are counted into `lagged` (the session's
/// cumulative counter) in addition to the in-stream `Lagged` report;
/// `depth` — when present — tracks the queue's current length in the
/// fleet-wide subscriber-depth gauge; `notify` — when present — is
/// raised on every push so a consumer sweeping many queues (the wire
/// streamer) can sleep on one flag instead of polling each condvar.
pub(crate) fn channel(
    session: SessionId,
    capacity: usize,
    lagged: Counter,
    depth: Option<Gauge>,
    notify: Option<Arc<Notify>>,
) -> (EventSender, EventReceiver) {
    let chan = Arc::new(Channel {
        session,
        capacity,
        state: Mutex::new(State {
            events: VecDeque::new(),
            dropped: 0,
            rx_alive: true,
            tx_alive: true,
        }),
        cv: Condvar::new(),
        lagged,
        depth,
        notify,
    });
    (EventSender(Arc::clone(&chan)), EventReceiver(chan))
}

/// The producer half, held in the session's subscriber list.
#[derive(Debug)]
pub(crate) struct EventSender(Arc<Channel>);

impl EventSender {
    /// Enqueues `event`, applying the overflow policy. Never blocks.
    /// Returns `false` once the receiver is gone (prune the sender).
    pub(crate) fn push(&self, mut event: EngineEvent) -> bool {
        let ch = &*self.0;
        let mut s = lock(&ch.state);
        if !s.rx_alive {
            return false;
        }
        if ch.capacity > 0 && s.events.len() >= ch.capacity {
            if let EngineEvent::TraceDelta {
                session,
                mut entries,
            } = event
            {
                if let Some(EngineEvent::TraceDelta { entries: tail, .. }) = s.events.back_mut() {
                    if tail.len() + entries.len() <= MAX_COALESCED_ENTRIES {
                        tail.append(&mut entries);
                        drop(s);
                        ch.cv.notify_one();
                        if let Some(notify) = &ch.notify {
                            notify.notify();
                        }
                        return true;
                    }
                }
                event = EngineEvent::TraceDelta { session, entries };
            }
            while s.events.len() >= ch.capacity {
                let lost = match s.events.pop_front() {
                    Some(EngineEvent::TraceDelta { entries, .. }) => entries.len() as u64,
                    Some(_) => 1,
                    None => break,
                };
                s.dropped += lost;
                ch.lagged.add(lost);
                if let Some(depth) = &ch.depth {
                    depth.dec();
                }
            }
        }
        s.events.push_back(event);
        if let Some(depth) = &ch.depth {
            depth.inc();
        }
        drop(s);
        ch.cv.notify_one();
        if let Some(notify) = &ch.notify {
            notify.notify();
        }
        true
    }
}

impl Drop for EventSender {
    fn drop(&mut self) {
        lock(&self.0.state).tx_alive = false;
        self.0.cv.notify_all();
        if let Some(notify) = &self.0.notify {
            notify.notify();
        }
    }
}

/// Takes the next deliverable item under the lock: a pending `Lagged`
/// report first (drops always happen *before* the current queue front
/// in stream order), then the front event.
fn take_next(ch: &Channel, s: &mut State) -> Option<EngineEvent> {
    if s.dropped > 0 {
        let dropped = std::mem::take(&mut s.dropped);
        return Some(EngineEvent::Lagged {
            session: ch.session,
            dropped,
        });
    }
    let event = s.events.pop_front();
    if event.is_some() {
        if let Some(depth) = &ch.depth {
            depth.dec();
        }
    }
    event
}

/// The consumer half of a session's broadcast subscription.
///
/// Behaves like an [`mpsc::Receiver`] over [`EngineEvent`]s (the
/// pre-backpressure subscription type), with one addition: when the
/// bounded queue overflowed, the next received event is an
/// [`EngineEvent::Lagged`] marking exactly where data was dropped.
/// Dropping the receiver unsubscribes.
#[derive(Debug)]
pub struct EventReceiver(Arc<Channel>);

impl EventReceiver {
    /// The session this subscription observes.
    pub fn session(&self) -> SessionId {
        self.0.session
    }

    /// The queue's capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.0.capacity
    }

    /// Events currently queued (excluding a pending `Lagged` report).
    /// Never exceeds the capacity of a bounded queue.
    pub fn len(&self) -> usize {
        lock(&self.0.state).events.len()
    }

    /// `true` when nothing is ready — no queued event and no pending
    /// `Lagged` report.
    pub fn is_empty(&self) -> bool {
        let s = lock(&self.0.state);
        s.events.is_empty() && s.dropped == 0
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`mpsc::TryRecvError::Empty`] when nothing is queued,
    /// [`mpsc::TryRecvError::Disconnected`] once the session is gone
    /// *and* the queue is drained.
    pub fn try_recv(&self) -> Result<EngineEvent, mpsc::TryRecvError> {
        let mut s = lock(&self.0.state);
        match take_next(&self.0, &mut s) {
            Some(event) => Ok(event),
            None if !s.tx_alive => Err(mpsc::TryRecvError::Disconnected),
            None => Err(mpsc::TryRecvError::Empty),
        }
    }

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// [`mpsc::RecvTimeoutError::Timeout`] when `timeout` elapses,
    /// [`mpsc::RecvTimeoutError::Disconnected`] once the session is
    /// gone *and* the queue is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<EngineEvent, mpsc::RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut s = lock(&self.0.state);
        loop {
            if let Some(event) = take_next(&self.0, &mut s) {
                return Ok(event);
            }
            if !s.tx_alive {
                return Err(mpsc::RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(mpsc::RecvTimeoutError::Timeout);
            }
            s = self
                .0
                .cv
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Drains everything currently deliverable without blocking — the
    /// post-run inspection loop (`for event in sub.try_iter()`).
    pub fn try_iter(&self) -> TryIter<'_> {
        TryIter(self)
    }
}

impl Drop for EventReceiver {
    fn drop(&mut self) {
        let mut s = lock(&self.0.state);
        s.rx_alive = false;
        // Events still queued will never be taken: release them now so
        // the fleet depth gauge doesn't leak this queue's residue.
        if let Some(depth) = &self.0.depth {
            depth.sub(s.events.len() as u64);
        }
        s.events.clear();
        // No cv notify needed: only the receiver waits on the condvar.
    }
}

/// Iterator over currently deliverable events (see
/// [`EventReceiver::try_iter`]).
#[derive(Debug)]
pub struct TryIter<'a>(&'a EventReceiver);

impl Iterator for TryIter<'_> {
    type Item = EngineEvent;

    fn next(&mut self) -> Option<EngineEvent> {
        self.0.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_engine::TraceEntry;
    use gmdf_gdm::{EventKind, ModelEvent};

    fn entry(seq: u64) -> TraceEntry {
        TraceEntry {
            seq,
            event: ModelEvent::new(seq * 10, EventKind::StateEnter, "A/fsm"),
            reactions: vec![],
            violations: vec![],
        }
    }

    fn delta(seqs: std::ops::Range<u64>) -> EngineEvent {
        EngineEvent::TraceDelta {
            session: 7,
            entries: seqs.map(entry).collect(),
        }
    }

    fn idle(now_ns: u64) -> EngineEvent {
        EngineEvent::Idle { session: 7, now_ns }
    }

    #[test]
    fn unbounded_queue_never_drops() {
        let (tx, rx) = channel(7, 0, Counter::new(), None, None);
        for i in 0..1000 {
            assert!(tx.push(idle(i)));
        }
        assert_eq!(rx.try_iter().count(), 1000);
        assert!(matches!(rx.try_recv(), Err(mpsc::TryRecvError::Empty)));
    }

    #[test]
    fn overflow_coalesces_consecutive_trace_deltas() {
        let (tx, rx) = channel(7, 2, Counter::new(), None, None);
        assert!(tx.push(delta(0..2)));
        assert!(tx.push(delta(2..4)));
        // Queue full; the next delta merges into the newest one.
        assert!(tx.push(delta(4..6)));
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got.len(), 2);
        let EngineEvent::TraceDelta { entries, .. } = &got[1] else {
            panic!("expected delta, got {:?}", got[1]);
        };
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    #[test]
    fn overflow_drops_oldest_and_reports_lagged_first() {
        let (tx, rx) = channel(7, 2, Counter::new(), None, None);
        assert!(tx.push(idle(0)));
        assert!(tx.push(idle(1)));
        assert!(tx.push(idle(2))); // drops idle(0)
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(
            got[0],
            EngineEvent::Lagged {
                session: 7,
                dropped: 1
            }
        );
        assert_eq!(got[1], idle(1));
        assert_eq!(got[2], idle(2));
    }

    #[test]
    fn dropped_trace_delta_counts_its_entries() {
        let (tx, rx) = channel(7, 1, Counter::new(), None, None);
        assert!(tx.push(delta(0..3)));
        assert!(tx.push(idle(0))); // cannot coalesce → drops the delta
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(
            got[0],
            EngineEvent::Lagged {
                session: 7,
                dropped: 3
            }
        );
        assert_eq!(got[1], idle(0));
    }

    #[test]
    fn bounded_queue_length_never_exceeds_capacity() {
        let (tx, rx) = channel(7, 4, Counter::new(), None, None);
        for i in 0..100 {
            assert!(tx.push(idle(i)));
            assert!(rx.len() <= 4);
        }
    }

    #[test]
    fn receiver_drop_unsubscribes() {
        let (tx, rx) = channel(7, 0, Counter::new(), None, None);
        drop(rx);
        assert!(!tx.push(idle(0)));
    }

    #[test]
    fn sender_drop_disconnects_after_drain() {
        let (tx, rx) = channel(7, 0, Counter::new(), None, None);
        assert!(tx.push(idle(0)));
        drop(tx);
        assert!(rx.try_recv().is_ok());
        assert!(matches!(
            rx.try_recv(),
            Err(mpsc::TryRecvError::Disconnected)
        ));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(mpsc::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn notify_wakes_on_push_and_is_sticky() {
        let notify = Arc::new(Notify::default());
        let (tx, rx) = channel(7, 0, Counter::new(), None, Some(Arc::clone(&notify)));
        // Raised before the wait: returns immediately (sticky flag).
        assert!(tx.push(idle(0)));
        let start = Instant::now();
        notify.wait_timeout(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
        // Flag was consumed: with nothing new, the wait times out.
        let start = Instant::now();
        notify.wait_timeout(Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(10));
        // Sender drop raises it too, so a sweeping consumer notices
        // disconnects without polling.
        drop(tx);
        let start = Instant::now();
        notify.wait_timeout(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
        drop(rx);
    }
}
