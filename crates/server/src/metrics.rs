//! Fleet-wide observability: the metrics registry every server layer
//! records into, and the snapshot/exposition formats it is read out
//! through.
//!
//! The paper's debugger exists to make a running embedded system
//! observable; this module points the same lens at the debug server
//! itself. One [`MetricsRegistry`] lives in the server's shared state
//! and is threaded (by reference or cloned counter handle) into every
//! layer:
//!
//! * the scheduler records pump slice wall-time and events-per-slice
//!   per shard, and mailbox depth;
//! * the subscriber queues record their depth and cumulative `Lagged`
//!   drops;
//! * every session trace records store append/read latency into one
//!   shared [`StoreMetrics`] (segment counts and on-disk bytes are read
//!   from the stores at snapshot time);
//! * durable sessions record journal append+fsync latency;
//! * the wire layer records frames/bytes in both directions and the
//!   live connection count.
//!
//! Read-out comes in three shapes: [`crate::DebugServer::metrics_snapshot`]
//! (a serializable [`MetricsSnapshot`]: fleet summary + per-session
//! health), the `ListMetrics` wire frame (the same snapshot over TCP),
//! and [`crate::DebugServer::metrics_text`] (Prometheus-style text
//! exposition).
//!
//! Recording is relaxed-atomic and allocation-free; a registry built
//! with [`MetricsRegistry::disabled`] skips even that, which is what
//! the `metrics_overhead` bench compares against to keep the
//! instrumented pump honest.

pub use gmdf_engine::metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, RecentSeries, StoreMetrics,
};

use crate::server::SessionId;
use gmdf_engine::metrics::HistogramAccum;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Trailing window for "recent events per second" (milliseconds).
const RATE_WINDOW_MS: u64 = 10_000;

/// Per-shard pump metrics.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Scheduler slices pumped on this shard.
    pub slices: Counter,
    /// Wall nanoseconds per pumped slice.
    pub slice_wall_ns: Histogram,
    /// Model events fed per pumped slice.
    pub events_per_slice: Histogram,
}

/// Wire-layer metrics, shared by every connection of a
/// [`crate::WireServer`].
#[derive(Debug, Default)]
pub struct WireMetrics {
    /// Live TCP connections.
    pub connections: Gauge,
    /// Frames encoded and written to clients.
    pub frames_tx: Counter,
    /// Frames read and decoded from clients.
    pub frames_rx: Counter,
    /// Payload bytes written (length prefixes included).
    pub bytes_tx: Counter,
    /// Payload bytes read (length prefixes included).
    pub bytes_rx: Counter,
    /// Next per-connection id (monotonic, never reused).
    next_conn: AtomicU64,
    /// Live per-connection counter bundles, held weakly so a closed
    /// connection's row disappears once its threads drop the `Arc`.
    conns: Mutex<Vec<Weak<ConnMetrics>>>,
}

/// Per-connection wire counters, one bundle per accepted TCP
/// connection. The connection's reader and streamer threads share one
/// `Arc`; snapshots read live bundles through [`WireMetrics`]'s weak
/// list, so the row vanishes when the connection closes.
#[derive(Debug)]
pub struct ConnMetrics {
    /// Stable per-connection id (monotonic across the server's life).
    pub id: u64,
    /// Frames written to this client.
    pub frames_tx: Counter,
    /// Frames read from this client.
    pub frames_rx: Counter,
    /// Bytes written to this client (length prefixes included).
    pub bytes_tx: Counter,
    /// Bytes read from this client (length prefixes included).
    pub bytes_rx: Counter,
    /// Events dropped by this connection's per-session queues
    /// (observed `Lagged` markers delivered downstream).
    pub lagged: Counter,
    /// Sessions currently attached on this connection.
    pub attached: Gauge,
}

impl WireMetrics {
    /// Allocates a fresh per-connection counter bundle and tracks it
    /// (weakly) for snapshot read-out. Dead entries from closed
    /// connections are pruned on the way in.
    pub fn register_connection(&self) -> Arc<ConnMetrics> {
        let conn = Arc::new(ConnMetrics {
            id: self.next_conn.fetch_add(1, Ordering::Relaxed),
            frames_tx: Counter::new(),
            frames_rx: Counter::new(),
            bytes_tx: Counter::new(),
            bytes_rx: Counter::new(),
            lagged: Counter::new(),
            attached: Gauge::new(),
        });
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.retain(|w| w.strong_count() > 0);
        conns.push(Arc::downgrade(&conn));
        conn
    }

    /// Snapshot rows for the connections still alive, ordered by id.
    pub fn connection_rows(&self) -> Vec<WireConnection> {
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<WireConnection> = conns
            .iter()
            .filter_map(Weak::upgrade)
            .map(|c| WireConnection {
                connection: c.id,
                frames_tx: c.frames_tx.get(),
                frames_rx: c.frames_rx.get(),
                bytes_tx: c.bytes_tx.get(),
                bytes_rx: c.bytes_rx.get(),
                attached: c.attached.get(),
                lagged_drops: c.lagged.get(),
            })
            .collect();
        rows.sort_by_key(|r| r.connection);
        rows
    }
}

/// The always-on counter bundle the whole server stack records into.
///
/// Constructed once per [`crate::DebugServer`]
/// ([`ServerConfig::metrics`] controls which flavor) and shared via
/// `Arc`. All recording sites check [`MetricsRegistry::enabled`] first,
/// so a disabled registry costs one branch per site.
///
/// [`ServerConfig::metrics`]: crate::ServerConfig
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    /// Monotonic origin for uptime and rate-window timestamps.
    epoch: Instant,
    /// One entry per worker shard.
    pub shards: Vec<ShardMetrics>,
    /// Commands currently sitting in session mailboxes.
    pub mailbox_depth: Gauge,
    /// Events currently queued across all subscriber queues.
    pub subscriber_depth: Gauge,
    /// Trace-store I/O (appends/reads, latency) — the same bundle every
    /// session trace records into.
    pub store: Arc<StoreMetrics>,
    /// Journal records appended (durable sessions).
    pub journal_appends: Counter,
    /// Wall nanoseconds per journal append **including the fsync** —
    /// the slowest thing on a durable session's command path.
    pub journal_append_ns: Histogram,
    /// Full-state checkpoints written (durable sessions).
    pub checkpoint_writes: Counter,
    /// Total checkpoint payload bytes written.
    pub checkpoint_bytes: Counter,
    /// Checkpoint images loaded back during time-travel seeks.
    pub checkpoint_restores: Counter,
    /// Wall nanoseconds per checkpoint write (serialize + fsync +
    /// rename) — the periodic cost a durable session pays for
    /// O(interval) seeks.
    pub checkpoint_write_ns: Histogram,
    /// Wall nanoseconds per checkpoint load during a seek (read +
    /// parse), excluding the replay that follows.
    pub checkpoint_restore_ns: Histogram,
    /// Wire-layer counters.
    pub wire: WireMetrics,
    /// Recent (timestamp, events-fed) samples, one per pumped slice —
    /// backs the fleet's "events per second" rate.
    pub events_recent: RecentSeries,
}

impl MetricsRegistry {
    /// An enabled registry for `workers` shards.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, true)
    }

    /// A registry whose recording sites are skipped — the zero-overhead
    /// baseline the `metrics_overhead` bench compares against.
    pub fn disabled() -> Self {
        Self::build(0, false)
    }

    fn build(workers: usize, enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            epoch: Instant::now(),
            shards: (0..workers).map(|_| ShardMetrics::default()).collect(),
            mailbox_depth: Gauge::new(),
            subscriber_depth: Gauge::new(),
            store: Arc::new(StoreMetrics::default()),
            journal_appends: Counter::new(),
            journal_append_ns: Histogram::new(),
            checkpoint_writes: Counter::new(),
            checkpoint_bytes: Counter::new(),
            checkpoint_restores: Counter::new(),
            checkpoint_write_ns: Histogram::new(),
            checkpoint_restore_ns: Histogram::new(),
            wire: WireMetrics::default(),
            events_recent: RecentSeries::new(256),
        }
    }

    /// `true` when recording sites should record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Milliseconds since the registry was built — the timestamp base
    /// for rate windows and uptime.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Control/health state of one hosted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Scheduled or holding run budget.
    Running,
    /// Healthy but quiescent (no budget, empty mailbox).
    Parked,
    /// Persisted but failed to restore at boot; not scheduled.
    Quarantined,
    /// Parked by a failure (simulator fault, store I/O, panic).
    Failed,
}

/// Point-in-time health of one hosted session — one row of
/// [`MetricsSnapshot::sessions`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionHealth {
    /// The session.
    pub session: SessionId,
    /// Control/health state.
    pub state: HealthState,
    /// Failure or quarantine reason, when there is one.
    pub detail: Option<String>,
    /// Wall milliseconds since the session registered with this server
    /// process.
    pub uptime_ms: u64,
    /// Wall milliseconds since the last pumped slice; `None` before the
    /// first slice (or when metrics are disabled).
    pub last_slice_age_ms: Option<u64>,
    /// Target simulation time.
    pub now_ns: u64,
    /// Entries in the execution trace.
    pub trace_len: u64,
    /// Segment files backing the trace (0 = memory-resident).
    pub trace_segments: u64,
    /// On-disk bytes of the trace (0 = memory-resident).
    pub trace_bytes: u64,
    /// Total model events fed.
    pub events_fed: u64,
    /// Total expectation violations raised.
    pub violations: u64,
    /// Total breakpoint hits.
    pub breakpoint_hits: u64,
    /// Events dropped across this session's bounded subscriber queues.
    pub lagged_drops: u64,
    /// Run budget not yet consumed, in nanoseconds.
    pub remaining_ns: u64,
    /// Live subscriber queues.
    pub subscribers: u64,
    /// Condition-memo hits in the session's VM.
    pub memo_hits: u64,
    /// Condition-memo misses in the session's VM.
    pub memo_misses: u64,
}

/// One row of the wire v4 session directory: the cheap-to-build
/// summary a `ListSessions` reply carries so a multiplexed client can
/// discover the fleet and decide what to attach. Quarantined ids are
/// listed too (state [`HealthState::Quarantined`], zeroed progress
/// fields) so the directory names every id the server knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionInfo {
    /// The session.
    pub session: SessionId,
    /// Control/health state.
    pub state: HealthState,
    /// Target simulation time.
    pub now_ns: u64,
    /// Entries in the execution trace.
    pub trace_len: u64,
    /// `(errors, warnings)` from the session's cached static-analysis
    /// report (wire v5) — enough for a client to decide whether the full
    /// `Analyze` report is worth fetching. Quarantined rows carry
    /// `(0, 0)`.
    pub diagnostics: (u64, u64),
}

/// Per-connection wire counters as read out in a snapshot — one row of
/// [`FleetMetrics::wire_conns`] per live connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireConnection {
    /// Stable per-connection id.
    pub connection: u64,
    /// Frames written to this client.
    pub frames_tx: u64,
    /// Frames read from this client.
    pub frames_rx: u64,
    /// Bytes written to this client.
    pub bytes_tx: u64,
    /// Bytes read from this client.
    pub bytes_rx: u64,
    /// Sessions currently attached on this connection.
    pub attached: u64,
    /// Events dropped by this connection's per-session queues.
    pub lagged_drops: u64,
}

/// A persisted session that failed to restore, with the reason — the
/// wire-visible form of [`crate::DebugServer::quarantined_sessions`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedSession {
    /// The reserved (never reused) session id.
    pub session: SessionId,
    /// Why the restore failed.
    pub reason: String,
}

/// Per-shard read-out inside [`FleetMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard (worker) index.
    pub shard: u64,
    /// Slices pumped.
    pub slices: u64,
    /// Slice wall-time distribution.
    pub slice_wall_ns: HistogramSnapshot,
    /// Events-fed-per-slice distribution.
    pub events_per_slice: HistogramSnapshot,
}

/// Fleet-level aggregates — the summary half of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Hosted sessions (quarantined ones not included).
    pub sessions: u64,
    /// Worker threads / shards.
    pub workers: u64,
    /// Wall milliseconds since the server booted.
    pub uptime_ms: u64,
    /// Slices pumped, all shards.
    pub slices: u64,
    /// Slice wall-time distribution, merged across shards.
    pub slice_wall_ns: HistogramSnapshot,
    /// Events-per-slice distribution, merged across shards.
    pub events_per_slice: HistogramSnapshot,
    /// Per-shard breakdown.
    pub shards: Vec<ShardSnapshot>,
    /// Total model events fed, summed over sessions.
    pub events_fed: u64,
    /// Events fed per second over the trailing rate window.
    pub recent_events_per_sec: f64,
    /// Commands currently sitting in session mailboxes.
    pub mailbox_depth: u64,
    /// Events currently queued across subscriber queues.
    pub subscriber_depth: u64,
    /// Events dropped by bounded subscriber queues, summed over
    /// sessions.
    pub lagged_drops: u64,
    /// Trace-store appends.
    pub store_appends: u64,
    /// Trace-store append latency.
    pub store_append_ns: HistogramSnapshot,
    /// Trace-store read operations.
    pub store_reads: u64,
    /// Trace-store read latency.
    pub store_read_ns: HistogramSnapshot,
    /// Trace segment files, summed over sessions.
    pub trace_segments: u64,
    /// Trace bytes on disk, summed over sessions.
    pub trace_disk_bytes: u64,
    /// Compressed (cold-tier) trace segments, summed over sessions.
    pub trace_compacted_segments: u64,
    /// Segments compressed to the cold tier by retention sweeps.
    pub store_compactions: u64,
    /// Sealed segments evicted under the retention disk budget.
    pub store_evicted_segments: u64,
    /// On-disk bytes reclaimed by compression and eviction.
    pub store_reclaimed_bytes: u64,
    /// Wall-time distribution of retention maintenance turns.
    pub store_maintain_ns: HistogramSnapshot,
    /// Journal records appended.
    pub journal_appends: u64,
    /// Journal append+fsync latency.
    pub journal_append_ns: HistogramSnapshot,
    /// Full-state checkpoints written.
    pub checkpoint_writes: u64,
    /// Total checkpoint payload bytes written.
    pub checkpoint_bytes: u64,
    /// Checkpoint images loaded back by time-travel seeks.
    pub checkpoint_restores: u64,
    /// Checkpoint write latency (serialize + fsync + rename).
    pub checkpoint_write_ns: HistogramSnapshot,
    /// Checkpoint load latency during seeks (read + parse).
    pub checkpoint_restore_ns: HistogramSnapshot,
    /// Live wire connections.
    pub wire_connections: u64,
    /// Wire frames written.
    pub wire_frames_tx: u64,
    /// Wire frames read.
    pub wire_frames_rx: u64,
    /// Wire bytes written.
    pub wire_bytes_tx: u64,
    /// Wire bytes read.
    pub wire_bytes_rx: u64,
    /// Per-connection wire breakdown, one row per live connection.
    pub wire_conns: Vec<WireConnection>,
    /// VM condition-memo hits, summed over sessions.
    pub memo_hits: u64,
    /// VM condition-memo misses, summed over sessions.
    pub memo_misses: u64,
}

/// The full observability read-out: fleet aggregates, one health row
/// per session, and the quarantine list. Serializable — the wire
/// `ListMetrics` reply ships exactly this structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Fleet-level aggregates.
    pub fleet: FleetMetrics,
    /// One row per hosted session (including quarantined ids).
    pub sessions: Vec<SessionHealth>,
    /// Persisted sessions that failed to restore.
    pub quarantined: Vec<QuarantinedSession>,
}

impl MetricsSnapshot {
    /// Zeroes every wall-clock-derived field (uptimes, slice ages, the
    /// recent rate) in place. Everything left is a deterministic
    /// counter or a latency distribution that no longer moves once the
    /// fleet is idle — this is what lets tests assert that a snapshot
    /// fetched over TCP equals the in-process one *exactly*.
    pub fn strip_wall_clock(&mut self) {
        self.fleet.uptime_ms = 0;
        self.fleet.recent_events_per_sec = 0.0;
        for s in &mut self.sessions {
            s.uptime_ms = 0;
            s.last_slice_age_ms = None;
        }
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (`# TYPE` headers, one sample per line) — what
    /// [`crate::DebugServer::metrics_text`] returns and the
    /// `fleet_dashboard` example scrapes.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let f = &self.fleet;
        let mut gauge = |name: &str, value: String| {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        gauge("gmdf_sessions", f.sessions.to_string());
        gauge("gmdf_workers", f.workers.to_string());
        gauge("gmdf_uptime_ms", f.uptime_ms.to_string());
        gauge("gmdf_mailbox_depth", f.mailbox_depth.to_string());
        gauge("gmdf_subscriber_depth", f.subscriber_depth.to_string());
        gauge("gmdf_wire_connections", f.wire_connections.to_string());
        gauge(
            "gmdf_recent_events_per_sec",
            format!("{:.3}", f.recent_events_per_sec),
        );
        let mut counter = |name: &str, value: u64| {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        counter("gmdf_slices_total", f.slices);
        counter("gmdf_events_fed_total", f.events_fed);
        counter("gmdf_lagged_drops_total", f.lagged_drops);
        counter("gmdf_store_appends_total", f.store_appends);
        counter("gmdf_store_reads_total", f.store_reads);
        counter("gmdf_journal_appends_total", f.journal_appends);
        counter("gmdf_checkpoint_writes_total", f.checkpoint_writes);
        counter("gmdf_checkpoint_bytes", f.checkpoint_bytes);
        counter("gmdf_checkpoint_restores_total", f.checkpoint_restores);
        counter("gmdf_wire_frames_tx_total", f.wire_frames_tx);
        counter("gmdf_wire_frames_rx_total", f.wire_frames_rx);
        counter("gmdf_wire_bytes_tx_total", f.wire_bytes_tx);
        counter("gmdf_wire_bytes_rx_total", f.wire_bytes_rx);
        counter("gmdf_trace_segments", f.trace_segments);
        counter("gmdf_trace_disk_bytes", f.trace_disk_bytes);
        counter("gmdf_trace_compacted_segments", f.trace_compacted_segments);
        counter("gmdf_store_compactions_total", f.store_compactions);
        counter(
            "gmdf_store_evicted_segments_total",
            f.store_evicted_segments,
        );
        counter("gmdf_store_reclaimed_bytes_total", f.store_reclaimed_bytes);
        counter("gmdf_memo_hits_total", f.memo_hits);
        counter("gmdf_memo_misses_total", f.memo_misses);
        let mut histo = |name: &str, h: &HistogramSnapshot| {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" summary\n");
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_max {}\n", h.max));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        };
        histo("gmdf_slice_wall_ns", &f.slice_wall_ns);
        histo("gmdf_events_per_slice", &f.events_per_slice);
        histo("gmdf_store_append_ns", &f.store_append_ns);
        histo("gmdf_store_read_ns", &f.store_read_ns);
        histo("gmdf_store_maintain_ns", &f.store_maintain_ns);
        histo("gmdf_journal_append_ns", &f.journal_append_ns);
        histo("gmdf_checkpoint_write_ns", &f.checkpoint_write_ns);
        histo("gmdf_checkpoint_restore_ns", &f.checkpoint_restore_ns);
        for c in &f.wire_conns {
            let id = c.connection;
            out.push_str(&format!(
                "gmdf_wire_conn_attached{{connection=\"{id}\"}} {}\n",
                c.attached
            ));
            out.push_str(&format!(
                "gmdf_wire_conn_frames_tx{{connection=\"{id}\"}} {}\n",
                c.frames_tx
            ));
            out.push_str(&format!(
                "gmdf_wire_conn_frames_rx{{connection=\"{id}\"}} {}\n",
                c.frames_rx
            ));
            out.push_str(&format!(
                "gmdf_wire_conn_bytes_tx{{connection=\"{id}\"}} {}\n",
                c.bytes_tx
            ));
            out.push_str(&format!(
                "gmdf_wire_conn_bytes_rx{{connection=\"{id}\"}} {}\n",
                c.bytes_rx
            ));
            out.push_str(&format!(
                "gmdf_wire_conn_lagged_drops{{connection=\"{id}\"}} {}\n",
                c.lagged_drops
            ));
        }
        for s in &self.sessions {
            let id = s.session;
            let state = match s.state {
                HealthState::Running => "running",
                HealthState::Parked => "parked",
                HealthState::Quarantined => "quarantined",
                HealthState::Failed => "failed",
            };
            out.push_str(&format!(
                "gmdf_session_up{{session=\"{id}\",state=\"{state}\"}} {}\n",
                u64::from(matches!(
                    s.state,
                    HealthState::Running | HealthState::Parked
                ))
            ));
            out.push_str(&format!(
                "gmdf_session_events_fed{{session=\"{id}\"}} {}\n",
                s.events_fed
            ));
            out.push_str(&format!(
                "gmdf_session_violations{{session=\"{id}\"}} {}\n",
                s.violations
            ));
            out.push_str(&format!(
                "gmdf_session_lagged_drops{{session=\"{id}\"}} {}\n",
                s.lagged_drops
            ));
            out.push_str(&format!(
                "gmdf_session_trace_len{{session=\"{id}\"}} {}\n",
                s.trace_len
            ));
        }
        out
    }
}

/// Merges the registry's per-shard histograms and counters into the
/// fleet read-out skeleton. Session-derived sums (events, drops, store
/// footprints, memo stats) are filled in by the caller, which holds the
/// session locks.
pub(crate) fn fleet_skeleton(registry: &MetricsRegistry) -> FleetMetrics {
    let mut wall = HistogramAccum::new();
    let mut per_slice = HistogramAccum::new();
    let mut slices = 0u64;
    let mut shards = Vec::with_capacity(registry.shards.len());
    for (i, s) in registry.shards.iter().enumerate() {
        s.slice_wall_ns.merge_into(&mut wall);
        s.events_per_slice.merge_into(&mut per_slice);
        slices += s.slices.get();
        shards.push(ShardSnapshot {
            shard: i as u64,
            slices: s.slices.get(),
            slice_wall_ns: s.slice_wall_ns.snapshot(),
            events_per_slice: s.events_per_slice.snapshot(),
        });
    }
    let now_ms = registry.now_ms();
    FleetMetrics {
        sessions: 0,
        workers: registry.shards.len() as u64,
        uptime_ms: now_ms,
        slices,
        slice_wall_ns: wall.snapshot(),
        events_per_slice: per_slice.snapshot(),
        shards,
        events_fed: 0,
        recent_events_per_sec: registry.events_recent.rate_per_sec(now_ms, RATE_WINDOW_MS),
        mailbox_depth: registry.mailbox_depth.get(),
        subscriber_depth: registry.subscriber_depth.get(),
        lagged_drops: 0,
        store_appends: registry.store.appends.get(),
        store_append_ns: registry.store.append_ns.snapshot(),
        store_reads: registry.store.reads.get(),
        store_read_ns: registry.store.read_ns.snapshot(),
        trace_segments: 0,
        trace_disk_bytes: 0,
        trace_compacted_segments: 0,
        store_compactions: registry.store.compactions.get(),
        store_evicted_segments: registry.store.evicted_segments.get(),
        store_reclaimed_bytes: registry.store.reclaimed_bytes.get(),
        store_maintain_ns: registry.store.maintain_ns.snapshot(),
        journal_appends: registry.journal_appends.get(),
        journal_append_ns: registry.journal_append_ns.snapshot(),
        checkpoint_writes: registry.checkpoint_writes.get(),
        checkpoint_bytes: registry.checkpoint_bytes.get(),
        checkpoint_restores: registry.checkpoint_restores.get(),
        checkpoint_write_ns: registry.checkpoint_write_ns.snapshot(),
        checkpoint_restore_ns: registry.checkpoint_restore_ns.snapshot(),
        wire_connections: registry.wire.connections.get(),
        wire_frames_tx: registry.wire.frames_tx.get(),
        wire_frames_rx: registry.wire.frames_rx.get(),
        wire_bytes_tx: registry.wire.bytes_tx.get(),
        wire_bytes_rx: registry.wire.bytes_rx.get(),
        wire_conns: registry.wire.connection_rows(),
        memo_hits: 0,
        memo_misses: 0,
    }
}
