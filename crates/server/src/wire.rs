//! The wire layer: multiplexed remote attach over TCP (wire v4).
//!
//! [`WireServer`] fronts a [`DebugServer`]: it accepts TCP connections,
//! speaks the [`crate::proto`] handshake, and gives each connection
//! exactly **two** threads regardless of how many sessions it watches —
//! a **reader** that decodes [`ClientFrame`]s, answers session
//! directory / metrics queries, and forwards session-addressed commands
//! to the hosted sessions, and a single **streamer** that drains every
//! attached session's queue round-robin and writes event frames in
//! batches under the connection's write lock. A dashboard watching a
//! 64-session fleet therefore costs one socket and two threads, not 64
//! of each.
//!
//! Backpressure is per *(connection, session)*: every attach owns a
//! bounded [`EventReceiver`], so one stalled attach fills its own queue
//! — consecutive `TraceDelta`s coalesce, then the oldest events drop
//! (announced in-stream by
//! [`EngineEvent::Lagged`][crate::EngineEvent::Lagged]) — while sibling
//! attaches on the same socket, and the scheduler pump itself, never
//! block. The streamer encodes into a reused per-connection buffer
//! (zero steady-state allocations) and flushes whole batches per
//! write-lock acquisition.
//!
//! An optional shared-secret token ([`crate::ServerConfig::auth_token`])
//! rides in the `Hello` frame and is compared in constant time.
//!
//! [`WireClient`] is the matching blocking client: it drives the
//! handshake, attaches to any number of sessions
//! ([`WireClient::attach_many`]), demultiplexes their merged event
//! stream ([`WireClient::next_event_from`]), polls the server's session
//! directory ([`WireClient::list_sessions`]), and interleaves commands
//! with event consumption on a single socket.

use crate::metrics::{
    ConnMetrics, Gauge, MetricsRegistry, MetricsSnapshot, QuarantinedSession, SessionInfo,
};
use crate::proto::{
    decode_payload, encode_frame, encode_frame_into, ClientFrame, FrameDecoder, ServerFrame,
};
use crate::queue::{EventReceiver, Notify};
use crate::server::{lock, DebugServer, SessionCommand, SessionId};
use crate::EngineEvent;
use crate::SessionSnapshot;
use gmdf_analyze::AnalysisReport;
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket poll granularity: read/write timeouts and shutdown-flag
/// re-check period. A backstop, not the event latency — frames flow as
/// fast as the socket carries them, and queue pushes wake the streamer
/// immediately through its [`Notify`] flag.
const POLL: Duration = Duration::from_millis(20);

/// How long the server waits on a session snapshot before reporting an
/// error frame to the client.
const SNAPSHOT_WAIT: Duration = Duration::from_secs(30);

/// Default client-side wait for a command reply.
const REPLY_WAIT: Duration = Duration::from_secs(30);

/// Streamer batch cutoff: once a sweep has encoded this many bytes the
/// batch is flushed, so a burst on one session cannot hold the write
/// lock (and sibling replies) hostage indefinitely.
const MAX_BATCH_BYTES: usize = 256 * 1024;

/// A wire-layer failure, on either side of the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Socket-level failure (connect, read, write).
    Io(String),
    /// The peer violated the protocol (bad frame, unexpected reply).
    Protocol(String),
    /// The server reported an error frame.
    Remote(String),
    /// The peer speaks a different [`crate::proto::WIRE_VERSION`].
    VersionMismatch {
        /// Version spoken by this side.
        ours: u32,
        /// Version the peer announced.
        theirs: u32,
    },
    /// The connection closed before the operation completed.
    Closed,
    /// A blocking wait exceeded its deadline.
    Timeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "wire i/o error: {m}"),
            WireError::Protocol(m) => write!(f, "wire protocol violation: {m}"),
            WireError::Remote(m) => write!(f, "server error: {m}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, theirs {theirs}")
            }
            WireError::Closed => write!(f, "wire connection closed"),
            WireError::Timeout => write!(f, "timed out waiting on the wire"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Constant-time byte-string equality for the handshake token: the
/// comparison touches every byte of both inputs regardless of where
/// they first differ, so response timing leaks neither a prefix match
/// nor the secret's length.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        diff |= (*a.get(i).unwrap_or(&0) ^ *b.get(i).unwrap_or(&0)) as usize;
    }
    diff == 0
}

/// A TCP front for a [`DebugServer`]: remote clients discover hosted
/// sessions, attach to any number of them, send [`SessionCommand`]s,
/// and stream [`EngineEvent`][crate::EngineEvent]s — all multiplexed
/// over one socket per client.
///
/// Dropping the server stops accepting, disconnects every client, and
/// joins all connection threads. The fronted [`DebugServer`] keeps
/// running (it is shared via [`Arc`]).
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `server`'s sessions.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(server: Arc<DebugServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gmdf-wire-accept".to_owned())
                .spawn(move || accept_loop(&listener, &server, &shutdown, &conns))
                .expect("spawn wire accept thread")
        };
        Ok(WireServer {
            local_addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects clients, joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let conns: Vec<JoinHandle<()>> = lock(&self.conns).drain(..).collect();
        for handle in conns {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    server: &Arc<DebugServer>,
    shutdown: &Arc<AtomicBool>,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        // Reap finished connections so a long-lived server with churning
        // clients does not accumulate handles (finished threads are
        // safe to detach-drop).
        lock(conns).retain(|handle| !handle.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(server);
                let shutdown_flag = Arc::clone(shutdown);
                // Held aside so a failed spawn can still tell the peer
                // why (the spawn closure consumes the original).
                let reporter = stream.try_clone();
                let spawned = std::thread::Builder::new()
                    .name("gmdf-wire-conn".to_owned())
                    .spawn(move || serve_connection(stream, &server, &shutdown_flag));
                match spawned {
                    Ok(handle) => lock(conns).push(handle),
                    // Thread exhaustion must not take down the accept
                    // loop (and with it every future client): tell this
                    // peer why and drop only its connection.
                    Err(e) => {
                        if let Ok(mut reporter) = reporter {
                            let _ = reporter.set_write_timeout(Some(POLL));
                            let refused = ServerFrame::Error {
                                seq: None,
                                message: format!("server cannot serve connection: {e}"),
                            };
                            if let Ok(bytes) = encode_frame(&refused) {
                                let _ = reporter.write_all(&bytes);
                            }
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Outcome of one blocking frame read on the server side.
enum ReadOutcome {
    Frame(ClientFrame),
    /// Clean close, peer error, or server shutdown — stop serving.
    Stop,
    /// The peer sent bytes that do not decode; report and stop.
    Malformed(String),
}

/// The wire-telemetry handle one connection's reader and streamer
/// share: `None` when metrics are disabled (every record is one branch),
/// otherwise the global [`crate::metrics::WireMetrics`] counters plus
/// this connection's own [`ConnMetrics`] row. Cloned into the streamer
/// thread; the per-connection row disappears from snapshots when the
/// last clone drops.
#[derive(Debug, Clone)]
struct Telemetry(Option<(Arc<MetricsRegistry>, Arc<ConnMetrics>)>);

impl Telemetry {
    fn acquire(registry: &Arc<MetricsRegistry>) -> Self {
        Telemetry(
            registry
                .enabled()
                .then(|| (Arc::clone(registry), registry.wire.register_connection())),
        )
    }

    fn frames_rx(&self) {
        if let Some((reg, conn)) = &self.0 {
            reg.wire.frames_rx.inc();
            conn.frames_rx.inc();
        }
    }

    fn bytes_rx(&self, n: u64) {
        if let Some((reg, conn)) = &self.0 {
            reg.wire.bytes_rx.add(n);
            conn.bytes_rx.add(n);
        }
    }

    fn frames_tx(&self, n: u64) {
        if let Some((reg, conn)) = &self.0 {
            reg.wire.frames_tx.add(n);
            conn.frames_tx.add(n);
        }
    }

    fn bytes_tx(&self, n: u64) {
        if let Some((reg, conn)) = &self.0 {
            reg.wire.bytes_tx.add(n);
            conn.bytes_tx.add(n);
        }
    }

    /// Events dropped by this connection's queues, observed as the
    /// streamer delivers their in-stream `Lagged` markers.
    fn lagged(&self, n: u64) {
        if let Some((_, conn)) = &self.0 {
            conn.lagged.add(n);
        }
    }

    fn attach_inc(&self) {
        if let Some((_, conn)) = &self.0 {
            conn.attached.inc();
        }
    }

    fn attach_dec(&self) {
        if let Some((_, conn)) = &self.0 {
            conn.attached.dec();
        }
    }
}

/// Reads the next client frame, polling the shutdown flag at [`POLL`]
/// granularity. The stream must have a read timeout installed. Received
/// bytes and decoded frames are counted into `tel`.
fn next_client_frame(
    mut stream: &TcpStream,
    decoder: &mut FrameDecoder,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    tel: &Telemetry,
) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        match decoder.next_payload() {
            Ok(Some(payload)) => match decode_payload::<ClientFrame>(&payload) {
                Ok(frame) => {
                    tel.frames_rx();
                    return ReadOutcome::Frame(frame);
                }
                Err(e) => return ReadOutcome::Malformed(e),
            },
            Ok(None) => {}
            Err(e) => return ReadOutcome::Malformed(e),
        }
        if shutdown.load(Ordering::SeqCst) || closed.load(Ordering::SeqCst) {
            return ReadOutcome::Stop;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Stop,
            Ok(n) => {
                tel.bytes_rx(n as u64);
                decoder.feed(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return ReadOutcome::Stop,
        }
    }
}

/// How long a write keeps retrying after the connection started
/// closing (`closed` set): long enough for a final diagnostic frame to
/// reach a live peer, short enough that a stalled one only delays —
/// never wedges — its own teardown.
const FLUSH_GRACE: Duration = Duration::from_millis(500);

/// Writes pre-encoded bytes carrying `frames` whole frames (a batch of
/// one or many), retrying on write timeouts while polling the shutdown
/// flag. Once `closed` is set the retries continue only for
/// [`FLUSH_GRACE`], so queued diagnostics still flush to a live peer
/// but a stalled one cannot hang the join.
fn write_bytes(
    mut stream: &TcpStream,
    bytes: &[u8],
    frames: u64,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    tel: &Telemetry,
) -> Result<(), ()> {
    let mut off = 0;
    let mut grace: Option<Instant> = None;
    while off < bytes.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Err(());
        }
        if closed.load(Ordering::SeqCst) {
            let deadline = *grace.get_or_insert_with(|| Instant::now() + FLUSH_GRACE);
            if Instant::now() >= deadline {
                return Err(());
            }
        }
        match stream.write(&bytes[off..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                tel.bytes_tx(n as u64);
                off += n;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return Err(()),
        }
    }
    tel.frames_tx(frames);
    Ok(())
}

/// Encodes and writes one frame (see [`write_bytes`]). A frame too
/// large to encode fails the write — client frames are requests, and a
/// request the peer can never receive has no useful substitute.
fn write_frame<T: Serialize>(
    stream: &TcpStream,
    frame: &T,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    tel: &Telemetry,
) -> Result<(), ()> {
    let bytes = encode_frame(frame).map_err(|_| ())?;
    write_bytes(stream, &bytes, 1, shutdown, closed, tel)
}

/// The request id `frame` answers, if it is a reply.
fn frame_seq(frame: &ServerFrame) -> Option<u64> {
    match frame {
        ServerFrame::Ack { seq }
        | ServerFrame::Snapshot { seq, .. }
        | ServerFrame::Trace { seq, .. }
        | ServerFrame::Sessions { seq, .. }
        | ServerFrame::Metrics { seq, .. }
        | ServerFrame::Analysis { seq, .. }
        | ServerFrame::Seek { seq, .. } => Some(*seq),
        ServerFrame::Error { seq, .. } => *seq,
        ServerFrame::HelloAck { .. } | ServerFrame::Event { .. } => None,
    }
}

/// The fitting substitute for an oversized event frame: an in-stream
/// [`EngineEvent::Lagged`] charging the event's payload (visible data
/// loss, stream stays healthy and decodable).
fn lagged_substitute(event: &EngineEvent) -> ServerFrame {
    ServerFrame::Event {
        event: EngineEvent::Lagged {
            session: event.session(),
            dropped: match event {
                EngineEvent::TraceDelta { entries, .. } => entries.len() as u64,
                _ => 1,
            },
        },
    }
}

/// Like [`write_frame`], but substitutes a fitting frame when the
/// encoding exceeds [`crate::proto::MAX_FRAME_LEN`]: an oversized event
/// degrades to
/// an in-stream [`EngineEvent::Lagged`] (visible data loss, stream
/// stays healthy), an oversized reply to an `Error` naming the request
/// — never a desynchronized stream the peer can only abandon.
fn write_server_frame(
    stream: &TcpStream,
    frame: &ServerFrame,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    tel: &Telemetry,
) -> Result<(), ()> {
    let bytes = match encode_frame(frame) {
        Ok(bytes) => bytes,
        Err(err) => {
            let substitute = match frame {
                ServerFrame::Event { event } => lagged_substitute(event),
                other => ServerFrame::Error {
                    seq: frame_seq(other),
                    message: format!("reply: {err}"),
                },
            };
            encode_frame(&substitute).map_err(|_| ())?
        }
    };
    write_bytes(stream, &bytes, 1, shutdown, closed, tel)
}

/// Holds the wire layer's live-connection gauge up for one connection's
/// lifetime; the decrement rides the drop so every early return in
/// [`serve_connection`] is covered.
struct ConnectionGauge(Gauge);

impl ConnectionGauge {
    fn acquire(gauge: &Gauge) -> Self {
        gauge.inc();
        ConnectionGauge(gauge.clone())
    }
}

impl Drop for ConnectionGauge {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// What the reader hands the streamer: a new (or replacement)
/// subscription to drain, or a detach. Sent over an `mpsc` channel and
/// applied at the top of every streamer sweep; the reader raises the
/// streamer's [`Notify`] after each send so ops apply immediately, not
/// at the next poll tick.
enum StreamOp {
    /// Start draining this subscription. Replaces an existing
    /// subscription to the same session (re-attach).
    Attach(EventReceiver),
    /// Stop draining (and drop) the subscription to this session.
    Detach(SessionId),
}

fn serve_connection(stream: TcpStream, server: &Arc<DebugServer>, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(POLL));
    let registry = Arc::clone(server.metrics_registry());
    let tel = Telemetry::acquire(&registry);
    let _connections = registry
        .enabled()
        .then(|| ConnectionGauge::acquire(&registry.wire.connections));
    let closed = Arc::new(AtomicBool::new(false));
    let mut decoder = FrameDecoder::new();

    // Handshake: the first frame must be a version-matched Hello
    // carrying the shared secret, when the server requires one.
    match next_client_frame(&stream, &mut decoder, shutdown, &closed, &tel) {
        ReadOutcome::Frame(ClientFrame::Hello { version, token }) => {
            if version != crate::proto::WIRE_VERSION {
                let _ = write_frame(
                    &stream,
                    &ServerFrame::Error {
                        seq: None,
                        message: format!(
                            "wire version mismatch: server speaks {}, client sent {version}",
                            crate::proto::WIRE_VERSION
                        ),
                    },
                    shutdown,
                    &closed,
                    &tel,
                );
                return;
            }
            if let Some(required) = server.auth_token() {
                let presented = token.as_deref().unwrap_or("");
                if !ct_eq(required.as_bytes(), presented.as_bytes()) {
                    // One generic message for absent and wrong tokens
                    // alike — the reply must not narrate the secret.
                    let _ = write_frame(
                        &stream,
                        &ServerFrame::Error {
                            seq: None,
                            message: "authentication failed".to_owned(),
                        },
                        shutdown,
                        &closed,
                        &tel,
                    );
                    return;
                }
            }
        }
        ReadOutcome::Frame(_) => {
            let _ = write_frame(
                &stream,
                &ServerFrame::Error {
                    seq: None,
                    message: "expected Hello as the first frame".to_owned(),
                },
                shutdown,
                &closed,
                &tel,
            );
            return;
        }
        ReadOutcome::Malformed(e) => {
            let _ = write_frame(
                &stream,
                &ServerFrame::Error {
                    seq: None,
                    message: e,
                },
                shutdown,
                &closed,
                &tel,
            );
            return;
        }
        ReadOutcome::Stop => return,
    }

    // Post-handshake, replies and events share the socket: the reader
    // writes command replies directly (no queuing latency) and ONE
    // streamer thread drains every attached session's queue, batching
    // event frames; a write lock keeps whole frames (and batches)
    // atomic between the two.
    let write_lock = Arc::new(Mutex::new(()));
    let notify = Arc::new(Notify::default());
    let (ops_tx, ops_rx) = mpsc::channel::<StreamOp>();
    let streamer = {
        let stream_clone = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let shutdown_flag = Arc::clone(shutdown);
        let closed_flag = Arc::clone(&closed);
        let lock_clone = Arc::clone(&write_lock);
        let notify_clone = Arc::clone(&notify);
        let tel_clone = tel.clone();
        let spawned = std::thread::Builder::new()
            .name("gmdf-wire-streamer".to_owned())
            .spawn(move || {
                event_loop(
                    &stream_clone,
                    &ops_rx,
                    &notify_clone,
                    &shutdown_flag,
                    &closed_flag,
                    &lock_clone,
                    &tel_clone,
                );
            });
        match spawned {
            Ok(handle) => handle,
            // Degraded, not dead: without a streamer this connection
            // cannot honor its contract, so tell the peer and tear down
            // this one connection — never panic the accept path.
            Err(e) => {
                let _ = write_frame(
                    &stream,
                    &ServerFrame::Error {
                        seq: None,
                        message: format!("server cannot stream events: {e}"),
                    },
                    shutdown,
                    &closed,
                    &tel,
                );
                return;
            }
        }
    };
    let reply = |frame: ServerFrame| {
        let _guard = lock(&write_lock);
        if write_server_frame(&stream, &frame, shutdown, &closed, &tel).is_err() {
            closed.store(true, Ordering::SeqCst);
        }
    };
    reply(ServerFrame::HelloAck {
        version: crate::proto::WIRE_VERSION,
        sessions: server.session_ids(),
        quarantined: server
            .quarantined_sessions()
            .iter()
            .map(|(id, reason)| QuarantinedSession {
                session: *id,
                reason: reason.clone(),
            })
            .collect(),
    });

    // Which sessions this connection currently streams — reader-side
    // bookkeeping for the attached gauge and detach idempotence; the
    // streamer owns the receivers themselves.
    let mut attached: BTreeSet<SessionId> = BTreeSet::new();
    loop {
        if closed.load(Ordering::SeqCst) {
            break;
        }
        match next_client_frame(&stream, &mut decoder, shutdown, &closed, &tel) {
            ReadOutcome::Frame(ClientFrame::Hello { .. }) => {
                // A connection-level violation; per the protocol
                // contract a seq-less Error closes the connection.
                reply(ServerFrame::Error {
                    seq: None,
                    message: "duplicate Hello".to_owned(),
                });
                break;
            }
            // Server-scope: answerable before (or without) an attach,
            // so a pure monitoring client never touches a session.
            ReadOutcome::Frame(ClientFrame::ListMetrics { seq }) => {
                reply(ServerFrame::Metrics {
                    seq,
                    snapshot: Box::new(server.metrics_snapshot()),
                });
            }
            ReadOutcome::Frame(ClientFrame::ListSessions { seq }) => {
                reply(ServerFrame::Sessions {
                    seq,
                    sessions: server.session_directory(),
                });
            }
            ReadOutcome::Frame(ClientFrame::Analyze { seq, session }) => {
                match server.analysis(session) {
                    Some(report) => reply(ServerFrame::Analysis {
                        seq,
                        report: Box::new((*report).clone()),
                    }),
                    None => reply(ServerFrame::Error {
                        seq: Some(seq),
                        message: format!("unknown session {session}"),
                    }),
                }
            }
            ReadOutcome::Frame(ClientFrame::Attach {
                seq,
                session,
                capacity,
            }) => match server.handle(session) {
                Some(handle) => {
                    // Subscribe *before* acking so no event between
                    // the ack and the subscription can be missed
                    // (the streamer may interleave an event ahead of
                    // the ack; the client buffers it).
                    let receiver =
                        handle.subscribe_wire(capacity.map(|c| c as usize), Arc::clone(&notify));
                    let _ = ops_tx.send(StreamOp::Attach(receiver));
                    notify.notify();
                    reply(ServerFrame::Ack { seq });
                    if attached.insert(session) {
                        tel.attach_inc();
                    }
                }
                None => reply(ServerFrame::Error {
                    seq: Some(seq),
                    message: format!("unknown session {session}"),
                }),
            },
            ReadOutcome::Frame(ClientFrame::Detach { seq, session }) => {
                // Idempotent: detaching a session that was never
                // attached (or already detached) still acks.
                if attached.remove(&session) {
                    let _ = ops_tx.send(StreamOp::Detach(session));
                    notify.notify();
                    tel.attach_dec();
                }
                reply(ServerFrame::Ack { seq });
            }
            ReadOutcome::Frame(ClientFrame::Command {
                seq,
                session,
                command,
            }) => {
                let Some(handle) = server.handle(session) else {
                    reply(ServerFrame::Error {
                        seq: Some(seq),
                        message: format!("unknown session {session}"),
                    });
                    continue;
                };
                match command {
                    SessionCommand::Snapshot { include_trace, .. } => {
                        // Re-wire the reply channel (the deserialized
                        // one is a dangling stand-in) by issuing the
                        // snapshot through the handle.
                        let result = if include_trace {
                            handle.snapshot(SNAPSHOT_WAIT)
                        } else {
                            handle.stats(SNAPSHOT_WAIT)
                        };
                        match result {
                            Ok(snapshot) => reply(ServerFrame::Snapshot { seq, snapshot }),
                            Err(e) => reply(ServerFrame::Error {
                                seq: Some(seq),
                                message: e.to_string(),
                            }),
                        }
                    }
                    // History pages get the same reply re-wiring as
                    // snapshots: the handle installs a live channel.
                    SessionCommand::FetchRange { t0_ns, t1_ns, .. } => {
                        match handle.fetch_range(t0_ns, t1_ns, SNAPSHOT_WAIT) {
                            Ok(slice) => reply(ServerFrame::Trace { seq, slice }),
                            Err(e) => reply(ServerFrame::Error {
                                seq: Some(seq),
                                message: e.to_string(),
                            }),
                        }
                    }
                    SessionCommand::ReplayFrom {
                        seq: from, limit, ..
                    } => match handle.replay_from(from, limit, SNAPSHOT_WAIT) {
                        Ok(slice) => reply(ServerFrame::Trace { seq, slice }),
                        Err(e) => reply(ServerFrame::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        }),
                    },
                    SessionCommand::SeekTo {
                        t_ns,
                        include_trace,
                        ..
                    } => match handle.seek_to(t_ns, include_trace, SNAPSHOT_WAIT) {
                        Ok(report) => reply(ServerFrame::Seek {
                            seq,
                            report: Box::new(report),
                        }),
                        Err(e) => reply(ServerFrame::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        }),
                    },
                    SessionCommand::StepBack {
                        entries,
                        include_trace,
                        ..
                    } => match handle.step_back(entries, include_trace, SNAPSHOT_WAIT) {
                        Ok(report) => reply(ServerFrame::Seek {
                            seq,
                            report: Box::new(report),
                        }),
                        Err(e) => reply(ServerFrame::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        }),
                    },
                    // A replayed window is served like the other
                    // history pages: one Trace frame.
                    SessionCommand::ReplayWindow { t0_ns, t1_ns, .. } => {
                        match handle.replay_window(t0_ns, t1_ns, SNAPSHOT_WAIT) {
                            Ok(slice) => reply(ServerFrame::Trace { seq, slice }),
                            Err(e) => reply(ServerFrame::Error {
                                seq: Some(seq),
                                message: e.to_string(),
                            }),
                        }
                    }
                    other => match handle.send(other) {
                        Ok(()) => reply(ServerFrame::Ack { seq }),
                        Err(e) => reply(ServerFrame::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        }),
                    },
                }
            }
            ReadOutcome::Malformed(e) => {
                // Written before `closed` is set, so the diagnostic
                // still flushes to a live peer.
                reply(ServerFrame::Error {
                    seq: None,
                    message: e,
                });
                break;
            }
            ReadOutcome::Stop => break,
        }
    }
    closed.store(true, Ordering::SeqCst);
    notify.notify();
    drop(ops_tx);
    let _ = streamer.join();
}

/// The per-connection event streamer — **one** thread no matter how
/// many sessions are attached. Each sweep applies pending
/// attach/detach ops, then drains the subscriptions round-robin (one
/// event per subscription per round, so a chatty session cannot starve
/// its siblings), encoding frames back-to-back into a reused batch
/// buffer; the whole batch goes out under a single write-lock
/// acquisition. When a full sweep finds nothing the streamer sleeps on
/// the connection's [`Notify`] flag, which every queue push raises.
///
/// Buffer reuse is the point: the v3 streamer allocated a fresh
/// `String` (JSON) and a fresh `Vec` (length-prefixed bytes) per event
/// frame; here both scratch buffers and the batch buffer are warm after
/// the first frame, so steady-state encoding allocates only what the
/// serializer itself needs.
fn event_loop(
    stream: &TcpStream,
    ops: &mpsc::Receiver<StreamOp>,
    notify: &Notify,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    write_lock: &Mutex<()>,
    tel: &Telemetry,
) {
    let mut subs: Vec<EventReceiver> = Vec::new();
    let mut json = String::new();
    let mut batch: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) || closed.load(Ordering::SeqCst) {
            return;
        }
        // Apply pending attach/detach ops. A disconnected ops channel
        // means the reader is gone; it sets `closed` before dropping
        // its sender, so the top-of-loop check exits next sweep.
        loop {
            match ops.try_recv() {
                Ok(StreamOp::Attach(receiver)) => {
                    let session = receiver.session();
                    match subs.iter_mut().find(|s| s.session() == session) {
                        // Re-attach: the replacement subscription takes
                        // over; dropping the old receiver unsubscribes
                        // it server-side.
                        Some(slot) => *slot = receiver,
                        None => subs.push(receiver),
                    }
                }
                Ok(StreamOp::Detach(session)) => subs.retain(|s| s.session() != session),
                Err(mpsc::TryRecvError::Empty | mpsc::TryRecvError::Disconnected) => break,
            }
        }
        // Sweep: round-robin over the subscriptions, one event each per
        // round, until a full round finds nothing or the batch is full.
        batch.clear();
        let mut frames = 0u64;
        let mut dead: Vec<SessionId> = Vec::new();
        'sweep: loop {
            let mut progressed = false;
            for sub in &subs {
                match sub.try_recv() {
                    Ok(event) => {
                        progressed = true;
                        if let EngineEvent::Lagged { dropped, .. } = &event {
                            tel.lagged(*dropped);
                        }
                        let frame = ServerFrame::Event { event };
                        if encode_frame_into(&frame, &mut json, &mut batch).is_err() {
                            let ServerFrame::Event { event } = &frame else {
                                unreachable!()
                            };
                            let substitute = lagged_substitute(event);
                            if let EngineEvent::Lagged { dropped, .. } = match &substitute {
                                ServerFrame::Event { event } => event,
                                _ => unreachable!(),
                            } {
                                tel.lagged(*dropped);
                            }
                            encode_frame_into(&substitute, &mut json, &mut batch)
                                .expect("Lagged substitute frame fits");
                        }
                        frames += 1;
                        if batch.len() >= MAX_BATCH_BYTES {
                            break 'sweep;
                        }
                    }
                    Err(mpsc::TryRecvError::Empty) => {}
                    // The session is gone (server released it) and its
                    // queue is drained; drop the subscription but keep
                    // serving the connection's other attaches.
                    Err(mpsc::TryRecvError::Disconnected) => dead.push(sub.session()),
                }
            }
            if !progressed {
                break;
            }
        }
        if !dead.is_empty() {
            subs.retain(|s| !dead.contains(&s.session()));
        }
        if frames > 0 {
            let guard = lock(write_lock);
            let ok = write_bytes(stream, &batch, frames, shutdown, closed, tel).is_ok();
            drop(guard);
            if !ok {
                closed.store(true, Ordering::SeqCst);
                return;
            }
        } else {
            notify.wait_timeout(POLL);
        }
    }
}

/// A blocking client for [`WireServer`]: one socket, any number of
/// attached sessions, commands interleaved with the merged event
/// stream.
///
/// Events that arrive while the client waits for a command reply are
/// buffered and handed out by [`WireClient::next_event`] /
/// [`WireClient::next_event_from`] in arrival order — nothing on the
/// stream is dropped client-side. Every session-scoped call names its
/// session explicitly; attach first to stream events
/// ([`WireClient::attach`], [`WireClient::attach_many`]), while
/// commands and queries work without any attach.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    buffered: std::collections::VecDeque<crate::EngineEvent>,
    sessions: Vec<SessionId>,
    quarantined: Vec<QuarantinedSession>,
    /// The currently attached sessions; events from any other session
    /// (stragglers written around a detach) are filtered out.
    attached: BTreeSet<SessionId>,
    /// Request-id counter; replies echo it, so a stale reply left in
    /// flight by a timed-out call can never answer a later request.
    next_seq: u64,
}

impl WireClient {
    /// Connects and completes the hello/version handshake with no
    /// authentication token — see [`WireClient::connect_with_token`]
    /// for servers that require one.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on socket failure, [`WireError::Remote`] /
    /// [`WireError::VersionMismatch`] on a rejected handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with_token(addr, None)
    }

    /// Connects and completes the hello/version handshake, presenting
    /// `token` when the server requires a shared secret
    /// ([`crate::ServerConfig::auth_token`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on socket failure, [`WireError::Remote`] on a
    /// rejected token (`"authentication failed"`),
    /// [`WireError::VersionMismatch`] on a version skew.
    pub fn connect_with_token(
        addr: impl ToSocketAddrs,
        token: Option<&str>,
    ) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL))?;
        let mut client = WireClient {
            stream,
            decoder: FrameDecoder::new(),
            buffered: std::collections::VecDeque::new(),
            sessions: Vec::new(),
            quarantined: Vec::new(),
            attached: BTreeSet::new(),
            next_seq: 0,
        };
        client.write(&ClientFrame::Hello {
            version: crate::proto::WIRE_VERSION,
            token: token.map(str::to_owned),
        })?;
        match client.read_frame(REPLY_WAIT)? {
            ServerFrame::HelloAck {
                version,
                sessions,
                quarantined,
            } => {
                if version != crate::proto::WIRE_VERSION {
                    return Err(WireError::VersionMismatch {
                        ours: crate::proto::WIRE_VERSION,
                        theirs: version,
                    });
                }
                client.sessions = sessions;
                client.quarantined = quarantined;
                Ok(client)
            }
            ServerFrame::Error { message, .. } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Sessions the server hosted at handshake time. For a live view,
    /// poll [`WireClient::list_sessions`].
    pub fn sessions(&self) -> &[SessionId] {
        &self.sessions
    }

    /// Sessions quarantined at handshake time (a durable restore
    /// failed), each with the server's restore-failure reason.
    pub fn quarantined(&self) -> &[QuarantinedSession] {
        &self.quarantined
    }

    /// Sessions this client is currently attached to.
    pub fn attached(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.attached.iter().copied()
    }

    /// Polls the server's live session directory: one row per hosted
    /// session (id, health state, clock, trace length), quarantined
    /// ids included. A *server-scope* call, valid without any attach —
    /// discover here, then [`WireClient::attach_many`] what you want
    /// to watch.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn list_sessions(&mut self, timeout: Duration) -> Result<Vec<SessionInfo>, WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::ListSessions { seq })?;
        self.wait_reply(seq, timeout, "Sessions", move |frame| match frame {
            ServerFrame::Sessions { seq: s, sessions } if s == seq => Ok(sessions),
            other => Err(other),
        })
    }

    /// Fetches one session's cached static-analysis report
    /// (schedulability verdicts, route findings, model lint) — a
    /// *server-scope* call, valid without any attach. The server
    /// computed the report when the session registered, so this never
    /// waits on the session itself.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] for an unknown session,
    /// [`WireError::Timeout`] when `timeout` elapses, transport errors
    /// otherwise.
    pub fn analyze(
        &mut self,
        session: SessionId,
        timeout: Duration,
    ) -> Result<AnalysisReport, WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::Analyze { seq, session })?;
        self.wait_reply(seq, timeout, "Analysis", move |frame| match frame {
            ServerFrame::Analysis { seq: s, report } if s == seq => Ok(*report),
            other => Err(other),
        })
    }

    /// Requests the server's fleet-wide telemetry snapshot — a
    /// *server-scope* call, valid without any attach.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn metrics(&mut self, timeout: Duration) -> Result<MetricsSnapshot, WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::ListMetrics { seq })?;
        self.wait_reply(seq, timeout, "Metrics", move |frame| match frame {
            ServerFrame::Metrics { seq: s, snapshot } if s == seq => Ok(*snapshot),
            other => Err(other),
        })
    }

    /// Attaches to `session` with the server's default queue capacity;
    /// its event stream joins this connection's merged stream
    /// immediately after the acknowledgment. Attaching again replaces
    /// the server-side subscription (a fresh queue).
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] for an unknown session, transport errors
    /// otherwise.
    pub fn attach(&mut self, session: SessionId) -> Result<(), WireError> {
        self.attach_with_capacity(session, None)
    }

    /// Like [`WireClient::attach`] with an explicit per-(connection,
    /// session) queue capacity: `Some(0)` = unbounded (lossless),
    /// `Some(n)` = at most `n` queued events (coalesce, then drop
    /// oldest with an in-stream `Lagged`), `None` = the server default.
    ///
    /// # Errors
    ///
    /// See [`WireClient::attach`].
    pub fn attach_with_capacity(
        &mut self,
        session: SessionId,
        capacity: Option<u64>,
    ) -> Result<(), WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::Attach {
            seq,
            session,
            capacity,
        })?;
        self.wait_ack(seq)?;
        self.attached.insert(session);
        Ok(())
    }

    /// Attaches to every session in `sessions`, pipelined: all `Attach`
    /// frames go out back-to-back, then the acknowledgments are awaited
    /// in order — one round-trip for the whole batch instead of one per
    /// session. Sessions acked before the first failure stay attached.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] on the first unknown session, transport
    /// errors otherwise.
    pub fn attach_many(&mut self, sessions: &[SessionId]) -> Result<(), WireError> {
        let mut seqs = Vec::with_capacity(sessions.len());
        for &session in sessions {
            let seq = self.next_seq();
            self.write(&ClientFrame::Attach {
                seq,
                session,
                capacity: None,
            })?;
            seqs.push((seq, session));
        }
        for (seq, session) in seqs {
            self.wait_ack(seq)?;
            self.attached.insert(session);
        }
        Ok(())
    }

    /// Detaches from `session`: its events stop flowing (the server
    /// drops the subscription), and any of its events still buffered
    /// client-side are discarded — after this call,
    /// [`WireClient::next_event`] never hands out a straggler from the
    /// detached stream. Idempotent.
    ///
    /// # Errors
    ///
    /// Transport errors; detaching a never-attached session still acks.
    pub fn detach(&mut self, session: SessionId) -> Result<(), WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::Detach { seq, session })?;
        self.wait_ack(seq)?;
        self.attached.remove(&session);
        self.buffered.retain(|event| event.session() != session);
        Ok(())
    }

    /// Sends one command to `session` and waits for the acknowledgment
    /// — valid without an attach. Use [`WireClient::snapshot`] for
    /// [`SessionCommand::Snapshot`] (it has a dedicated reply).
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the server rejects the command,
    /// transport errors otherwise.
    pub fn send(&mut self, session: SessionId, command: SessionCommand) -> Result<(), WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            session,
            command,
        })?;
        self.wait_ack(seq)
    }

    /// Requests a snapshot of `session` (with the serialized trace when
    /// `include_trace`).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn snapshot(
        &mut self,
        session: SessionId,
        include_trace: bool,
        timeout: Duration,
    ) -> Result<SessionSnapshot, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            session,
            command: SessionCommand::Snapshot {
                reply,
                include_trace,
            },
        })?;
        self.wait_reply(seq, timeout, "Snapshot", move |frame| match frame {
            ServerFrame::Snapshot { seq: s, snapshot } if s == seq => Ok(snapshot),
            other => Err(other),
        })
    }

    /// Requests `session`'s trace entries whose event time falls in
    /// `[t0_ns, t1_ns]` — one bounded page
    /// ([`crate::MAX_FETCH_ENTRIES`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn fetch_range(
        &mut self,
        session: SessionId,
        t0_ns: u64,
        t1_ns: u64,
        timeout: Duration,
    ) -> Result<crate::TraceSlice, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            session,
            command: SessionCommand::FetchRange {
                t0_ns,
                t1_ns,
                reply,
            },
        })?;
        self.wait_trace(seq, timeout)
    }

    /// Requests up to `limit` trace entries of `session` starting at
    /// sequence number `seq` (`0` = the server cap) — page history by
    /// advancing `seq` while [`crate::TraceSlice::complete`] is false.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn replay_from(
        &mut self,
        session: SessionId,
        seq: u64,
        limit: u64,
        timeout: Duration,
    ) -> Result<crate::TraceSlice, WireError> {
        let (reply, _) = mpsc::channel();
        let request = self.next_seq();
        self.write(&ClientFrame::Command {
            seq: request,
            session,
            command: SessionCommand::ReplayFrom { seq, limit, reply },
        })?;
        self.wait_trace(request, timeout)
    }

    /// Seeks `session`'s history to target time `t_ns`: the server
    /// restores its nearest persisted checkpoint into a detached
    /// replica and replays forward — O(checkpoint interval), not
    /// O(trace length). With `include_trace` the report carries the
    /// replica's full serialized trace, byte-identical to an
    /// uninterrupted run's at the same instant.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors (in-memory session, evicted history) otherwise.
    pub fn seek_to(
        &mut self,
        session: SessionId,
        t_ns: u64,
        include_trace: bool,
        timeout: Duration,
    ) -> Result<crate::SeekReport, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            session,
            command: SessionCommand::SeekTo {
                t_ns,
                include_trace,
                reply,
            },
        })?;
        self.wait_seek(seq, timeout)
    }

    /// Rewinds `session`'s history `entries` trace entries from the
    /// current end of the trace — the remote form of
    /// [`crate::SessionHandle::step_back`].
    ///
    /// # Errors
    ///
    /// Same as [`WireClient::seek_to`].
    pub fn step_back(
        &mut self,
        session: SessionId,
        entries: u64,
        include_trace: bool,
        timeout: Duration,
    ) -> Result<crate::SeekReport, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            session,
            command: SessionCommand::StepBack {
                entries,
                include_trace,
                reply,
            },
        })?;
        self.wait_seek(seq, timeout)
    }

    /// Requests the trace window `[t0_ns, t1_ns]` regenerated through
    /// checkpoint-restore + deterministic replay — one bounded
    /// [`crate::TraceSlice`] page, same contract as
    /// [`WireClient::fetch_range`], but served even when the live store
    /// evicted the window's segments.
    ///
    /// # Errors
    ///
    /// Same as [`WireClient::seek_to`].
    pub fn replay_window(
        &mut self,
        session: SessionId,
        t0_ns: u64,
        t1_ns: u64,
        timeout: Duration,
    ) -> Result<crate::TraceSlice, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            session,
            command: SessionCommand::ReplayWindow {
                t0_ns,
                t1_ns,
                reply,
            },
        })?;
        self.wait_trace(seq, timeout)
    }

    /// Waits for the [`ServerFrame::Seek`] reply answering `seq`.
    fn wait_seek(&mut self, seq: u64, timeout: Duration) -> Result<crate::SeekReport, WireError> {
        self.wait_reply(seq, timeout, "Seek", move |frame| match frame {
            ServerFrame::Seek { seq: s, report } if s == seq => Ok(*report),
            other => Err(other),
        })
    }

    /// Waits for the [`ServerFrame::Trace`] reply answering `seq`.
    fn wait_trace(&mut self, seq: u64, timeout: Duration) -> Result<crate::TraceSlice, WireError> {
        self.wait_reply(seq, timeout, "Trace", move |frame| match frame {
            ServerFrame::Trace { seq: s, slice } if s == seq => Ok(slice),
            other => Err(other),
        })
    }

    /// The shared reply wait: reads frames until `extract` accepts one,
    /// buffering interleaved events, skipping stale replies left by
    /// earlier timed-out requests, and surfacing this request's (or the
    /// connection's) error.
    fn wait_reply<T>(
        &mut self,
        seq: u64,
        timeout: Duration,
        what: &str,
        extract: impl Fn(ServerFrame) -> Result<T, ServerFrame>,
    ) -> Result<T, WireError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            match extract(self.read_frame(remaining)?) {
                Ok(reply) => return Ok(reply),
                Err(ServerFrame::Event { event }) => self.buffered.push_back(event),
                Err(ServerFrame::Error { seq: Some(s), .. }) if s != seq => {} // stale
                Err(ServerFrame::Error { message, .. }) => return Err(WireError::Remote(message)),
                // Stale replies to requests whose caller already gave
                // up; this request's reply is still coming.
                Err(
                    ServerFrame::Ack { .. }
                    | ServerFrame::Snapshot { .. }
                    | ServerFrame::Trace { .. }
                    | ServerFrame::Sessions { .. }
                    | ServerFrame::Metrics { .. }
                    | ServerFrame::Seek { .. },
                ) => {}
                Err(other) => {
                    return Err(WireError::Protocol(format!(
                        "expected {what}, got {other:?}"
                    )))
                }
            }
        }
    }

    /// The next event from **any** attached session (buffered ones
    /// first, in arrival order) — the merged multiplexed stream.
    /// Demultiplex with [`EngineEvent::session`][crate::EngineEvent],
    /// or use [`WireClient::next_event_from`] for one session's
    /// sub-stream.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses first, transport
    /// or remote errors otherwise.
    pub fn next_event(&mut self, timeout: Duration) -> Result<crate::EngineEvent, WireError> {
        while let Some(event) = self.buffered.pop_front() {
            if self.wants(&event) {
                return Ok(event);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            match self.read_frame(remaining)? {
                ServerFrame::Event { event } if self.wants(&event) => return Ok(event),
                // A straggler from a detached session, written around
                // the detach; not part of any current stream.
                ServerFrame::Event { .. } => {}
                // Stray replies from an earlier timed-out request (an
                // Ack, a Snapshot, a Trace page, or a request-level
                // Error that arrived after its caller gave up) are not
                // events; skip them instead of poisoning an otherwise
                // healthy connection.
                ServerFrame::Ack { .. }
                | ServerFrame::Snapshot { .. }
                | ServerFrame::Trace { .. }
                | ServerFrame::Sessions { .. }
                | ServerFrame::Metrics { .. }
                | ServerFrame::Seek { .. } => {}
                ServerFrame::Error { seq: Some(_), .. } => {}
                ServerFrame::Error { message, .. } => return Err(WireError::Remote(message)),
                other => {
                    return Err(WireError::Protocol(format!(
                        "expected Event, got {other:?}"
                    )))
                }
            }
        }
    }

    /// The next event on `session`'s sub-stream: the per-session demux
    /// over the merged stream. Other attached sessions' events read
    /// along the way stay buffered in arrival order for their own
    /// [`WireClient::next_event_from`] (or [`WireClient::next_event`])
    /// calls — draining one session never loses a sibling's events.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses first, transport
    /// or remote errors otherwise.
    pub fn next_event_from(
        &mut self,
        session: SessionId,
        timeout: Duration,
    ) -> Result<crate::EngineEvent, WireError> {
        if let Some(pos) = self
            .buffered
            .iter()
            .position(|event| event.session() == session)
        {
            return Ok(self.buffered.remove(pos).expect("position is in range"));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            match self.read_frame(remaining)? {
                ServerFrame::Event { event } if event.session() == session => return Ok(event),
                ServerFrame::Event { event } if self.wants(&event) => {
                    self.buffered.push_back(event);
                }
                // A straggler from a detached session.
                ServerFrame::Event { .. } => {}
                ServerFrame::Ack { .. }
                | ServerFrame::Snapshot { .. }
                | ServerFrame::Trace { .. }
                | ServerFrame::Sessions { .. }
                | ServerFrame::Metrics { .. }
                | ServerFrame::Seek { .. } => {}
                ServerFrame::Error { seq: Some(_), .. } => {}
                ServerFrame::Error { message, .. } => return Err(WireError::Remote(message)),
                other => {
                    return Err(WireError::Protocol(format!(
                        "expected Event, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Polls counter snapshots until `session` is idle (no run budget
    /// left after every previously sent command applied).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses first.
    pub fn wait_idle(&mut self, session: SessionId, timeout: Duration) -> Result<(), WireError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            // The snapshot round-trips through the mailbox, so once it
            // reports zero budget every earlier command was applied.
            let snapshot = self.snapshot(session, false, remaining)?;
            if snapshot.remaining_ns == 0 {
                return Ok(());
            }
            std::thread::sleep(POLL);
        }
    }

    /// Convenience: [`SessionCommand::RunFor`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn run_for(&mut self, session: SessionId, duration_ns: u64) -> Result<(), WireError> {
        self.send(session, SessionCommand::RunFor { duration_ns })
    }

    /// Convenience: [`SessionCommand::ScheduleSignal`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn schedule_signal(
        &mut self,
        session: SessionId,
        time_ns: u64,
        label: &str,
        value: gmdf_comdes::SignalValue,
    ) -> Result<(), WireError> {
        self.send(
            session,
            SessionCommand::ScheduleSignal {
                time_ns,
                label: label.to_owned(),
                value,
            },
        )
    }

    /// Convenience: [`SessionCommand::AddBreakpoint`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn add_breakpoint(
        &mut self,
        session: SessionId,
        matcher: gmdf_gdm::CommandMatcher,
        one_shot: bool,
    ) -> Result<(), WireError> {
        self.send(session, SessionCommand::AddBreakpoint { matcher, one_shot })
    }

    /// Convenience: [`SessionCommand::Step`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn step(&mut self, session: SessionId) -> Result<(), WireError> {
        self.send(session, SessionCommand::Step)
    }

    /// Convenience: [`SessionCommand::Resume`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn resume(&mut self, session: SessionId) -> Result<(), WireError> {
        self.send(session, SessionCommand::Resume)
    }

    /// Convenience: [`SessionCommand::ClearBreakpoints`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn clear_breakpoints(&mut self, session: SessionId) -> Result<(), WireError> {
        self.send(session, SessionCommand::ClearBreakpoints)
    }

    fn write<T: Serialize>(&mut self, frame: &T) -> Result<(), WireError> {
        let bytes = encode_frame(frame).map_err(|e| WireError::Protocol(e.to_string()))?;
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// `true` if `event` belongs to a currently attached session's
    /// stream.
    fn wants(&self, event: &crate::EngineEvent) -> bool {
        self.attached.contains(&event.session())
    }

    fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    fn wait_ack(&mut self, seq: u64) -> Result<(), WireError> {
        self.wait_reply(seq, REPLY_WAIT, "Ack", move |frame| match frame {
            ServerFrame::Ack { seq: s } if s == seq => Ok(()),
            other => Err(other),
        })
    }

    /// Reads one server frame, waiting up to `timeout`.
    fn read_frame(&mut self, timeout: Duration) -> Result<ServerFrame, WireError> {
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        loop {
            match self.decoder.next_payload() {
                Ok(Some(payload)) => {
                    return decode_payload::<ServerFrame>(&payload).map_err(WireError::Protocol)
                }
                Ok(None) => {}
                Err(e) => return Err(WireError::Protocol(e)),
            }
            if Instant::now() >= deadline {
                return Err(WireError::Timeout);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Closed),
                Ok(n) => self.decoder.feed(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn ct_eq_matches_equality() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"secret", b"secret"));
        assert!(!ct_eq(b"secret", b"secres"));
        assert!(!ct_eq(b"secret", b"secret2"));
        assert!(!ct_eq(b"secret", b""));
        assert!(!ct_eq(b"", b"secret"));
    }
}
