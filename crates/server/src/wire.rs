//! The wire layer: remote attach over TCP.
//!
//! [`WireServer`] fronts a [`DebugServer`]: it accepts TCP connections,
//! speaks the [`crate::proto`] handshake, and gives each connection two
//! threads — a **reader** that decodes [`ClientFrame`]s and forwards
//! commands to the hosted session, and a **writer** that multiplexes
//! command replies with the attached session's broadcast stream onto
//! the socket.
//!
//! Backpressure is inherited from the in-process subscription: the
//! writer drains a *bounded* [`EventReceiver`], so a stalled TCP client
//! fills its own queue, gets consecutive `TraceDelta`s coalesced, then
//! drops oldest events (announced in-stream by
//! [`EngineEvent::Lagged`][crate::EngineEvent::Lagged]) — the
//! scheduler pump never blocks on a socket and the server's memory
//! stays bounded per connection.
//!
//! [`WireClient`] is the matching blocking client: it drives the
//! handshake, attaches to one session, sends commands, and interleaves
//! event consumption with request/reply calls on a single socket.

use crate::metrics::{Gauge, MetricsSnapshot, QuarantinedSession, WireMetrics};
use crate::proto::{decode_payload, encode_frame, ClientFrame, FrameDecoder, ServerFrame};
use crate::queue::EventReceiver;
use crate::server::{lock, DebugServer, SessionCommand, SessionHandle, SessionId};
use crate::EngineEvent;
use crate::SessionSnapshot;
use serde::Serialize;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket poll granularity: read/write timeouts and shutdown-flag
/// re-check period. A backstop, not the event latency — frames flow as
/// fast as the socket carries them.
const POLL: Duration = Duration::from_millis(20);

/// How long the server waits on a session snapshot before reporting an
/// error frame to the client.
const SNAPSHOT_WAIT: Duration = Duration::from_secs(30);

/// Default client-side wait for a command reply.
const REPLY_WAIT: Duration = Duration::from_secs(30);

/// A wire-layer failure, on either side of the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Socket-level failure (connect, read, write).
    Io(String),
    /// The peer violated the protocol (bad frame, unexpected reply).
    Protocol(String),
    /// The server reported an error frame.
    Remote(String),
    /// The peer speaks a different [`crate::proto::WIRE_VERSION`].
    VersionMismatch {
        /// Version spoken by this side.
        ours: u32,
        /// Version the peer announced.
        theirs: u32,
    },
    /// The connection closed before the operation completed.
    Closed,
    /// A blocking wait exceeded its deadline.
    Timeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "wire i/o error: {m}"),
            WireError::Protocol(m) => write!(f, "wire protocol violation: {m}"),
            WireError::Remote(m) => write!(f, "server error: {m}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, theirs {theirs}")
            }
            WireError::Closed => write!(f, "wire connection closed"),
            WireError::Timeout => write!(f, "timed out waiting on the wire"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// A TCP front for a [`DebugServer`]: remote clients attach to hosted
/// sessions, send [`SessionCommand`]s, and stream
/// [`EngineEvent`][crate::EngineEvent]s.
///
/// Dropping the server stops accepting, disconnects every client, and
/// joins all connection threads. The fronted [`DebugServer`] keeps
/// running (it is shared via [`Arc`]).
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `server`'s sessions.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(server: Arc<DebugServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gmdf-wire-accept".to_owned())
                .spawn(move || accept_loop(&listener, &server, &shutdown, &conns))
                .expect("spawn wire accept thread")
        };
        Ok(WireServer {
            local_addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects clients, joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let conns: Vec<JoinHandle<()>> = lock(&self.conns).drain(..).collect();
        for handle in conns {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    server: &Arc<DebugServer>,
    shutdown: &Arc<AtomicBool>,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        // Reap finished connections so a long-lived server with churning
        // clients does not accumulate handles (finished threads are
        // safe to detach-drop).
        lock(conns).retain(|handle| !handle.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(server);
                let shutdown = Arc::clone(shutdown);
                let handle = std::thread::Builder::new()
                    .name("gmdf-wire-conn".to_owned())
                    .spawn(move || serve_connection(stream, &server, &shutdown))
                    .expect("spawn wire connection thread");
                lock(conns).push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Outcome of one blocking frame read on the server side.
enum ReadOutcome {
    Frame(ClientFrame),
    /// Clean close, peer error, or server shutdown — stop serving.
    Stop,
    /// The peer sent bytes that do not decode; report and stop.
    Malformed(String),
}

/// Reads the next client frame, polling the shutdown flag at [`POLL`]
/// granularity. The stream must have a read timeout installed. When
/// metrics are enabled (`wm`), received bytes and decoded frames are
/// counted.
fn next_client_frame(
    mut stream: &TcpStream,
    decoder: &mut FrameDecoder,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    wm: Option<&WireMetrics>,
) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        match decoder.next_payload() {
            Ok(Some(payload)) => match decode_payload::<ClientFrame>(&payload) {
                Ok(frame) => {
                    if let Some(wm) = wm {
                        wm.frames_rx.inc();
                    }
                    return ReadOutcome::Frame(frame);
                }
                Err(e) => return ReadOutcome::Malformed(e),
            },
            Ok(None) => {}
            Err(e) => return ReadOutcome::Malformed(e),
        }
        if shutdown.load(Ordering::SeqCst) || closed.load(Ordering::SeqCst) {
            return ReadOutcome::Stop;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Stop,
            Ok(n) => {
                if let Some(wm) = wm {
                    wm.bytes_rx.add(n as u64);
                }
                decoder.feed(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return ReadOutcome::Stop,
        }
    }
}

/// How long a write keeps retrying after the connection started
/// closing (`closed` set): long enough for a final diagnostic frame to
/// reach a live peer, short enough that a stalled one only delays —
/// never wedges — its own teardown.
const FLUSH_GRACE: Duration = Duration::from_millis(500);

/// Writes pre-encoded bytes, retrying on write timeouts while polling
/// the shutdown flag. Once `closed` is set the retries continue only
/// for [`FLUSH_GRACE`], so queued diagnostics still flush to a live
/// peer but a stalled one cannot hang the join.
fn write_bytes(
    mut stream: &TcpStream,
    bytes: &[u8],
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    wm: Option<&WireMetrics>,
) -> Result<(), ()> {
    let mut off = 0;
    let mut grace: Option<Instant> = None;
    while off < bytes.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Err(());
        }
        if closed.load(Ordering::SeqCst) {
            let deadline = *grace.get_or_insert_with(|| Instant::now() + FLUSH_GRACE);
            if Instant::now() >= deadline {
                return Err(());
            }
        }
        match stream.write(&bytes[off..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                if let Some(wm) = wm {
                    wm.bytes_tx.add(n as u64);
                }
                off += n;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return Err(()),
        }
    }
    if let Some(wm) = wm {
        wm.frames_tx.inc();
    }
    Ok(())
}

/// Encodes and writes one frame (see [`write_bytes`]). A frame too
/// large to encode fails the write — client frames are requests, and a
/// request the peer can never receive has no useful substitute.
fn write_frame<T: Serialize>(
    stream: &TcpStream,
    frame: &T,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    wm: Option<&WireMetrics>,
) -> Result<(), ()> {
    let bytes = encode_frame(frame).map_err(|_| ())?;
    write_bytes(stream, &bytes, shutdown, closed, wm)
}

/// The request id `frame` answers, if it is a reply.
fn frame_seq(frame: &ServerFrame) -> Option<u64> {
    match frame {
        ServerFrame::Ack { seq }
        | ServerFrame::Snapshot { seq, .. }
        | ServerFrame::Trace { seq, .. }
        | ServerFrame::Metrics { seq, .. } => Some(*seq),
        ServerFrame::Error { seq, .. } => *seq,
        ServerFrame::HelloAck { .. } | ServerFrame::Event { .. } => None,
    }
}

/// Like [`write_frame`], but substitutes a fitting frame when the
/// encoding exceeds [`crate::proto::MAX_FRAME_LEN`]: an oversized event
/// degrades to
/// an in-stream [`EngineEvent::Lagged`] (visible data loss, stream
/// stays healthy), an oversized reply to an `Error` naming the request
/// — never a desynchronized stream the peer can only abandon.
fn write_server_frame(
    stream: &TcpStream,
    frame: &ServerFrame,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    wm: Option<&WireMetrics>,
) -> Result<(), ()> {
    let bytes = match encode_frame(frame) {
        Ok(bytes) => bytes,
        Err(err) => {
            let substitute = match frame {
                ServerFrame::Event { event } => ServerFrame::Event {
                    event: EngineEvent::Lagged {
                        session: event.session(),
                        dropped: match event {
                            EngineEvent::TraceDelta { entries, .. } => entries.len() as u64,
                            _ => 1,
                        },
                    },
                },
                other => ServerFrame::Error {
                    seq: frame_seq(other),
                    message: format!("reply: {err}"),
                },
            };
            encode_frame(&substitute).map_err(|_| ())?
        }
    };
    write_bytes(stream, &bytes, shutdown, closed, wm)
}

/// Holds the wire layer's live-connection gauge up for one connection's
/// lifetime; the decrement rides the drop so every early return in
/// [`serve_connection`] is covered.
struct ConnectionGauge(Gauge);

impl ConnectionGauge {
    fn acquire(gauge: &Gauge) -> Self {
        gauge.inc();
        ConnectionGauge(gauge.clone())
    }
}

impl Drop for ConnectionGauge {
    fn drop(&mut self) {
        self.0.dec();
    }
}

fn serve_connection(stream: TcpStream, server: &Arc<DebugServer>, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(POLL));
    let registry = Arc::clone(server.metrics_registry());
    let wm = registry.enabled().then(|| &registry.wire);
    let _connections = wm.map(|w| ConnectionGauge::acquire(&w.connections));
    let closed = Arc::new(AtomicBool::new(false));
    let mut decoder = FrameDecoder::new();

    // Handshake: the first frame must be a version-matched Hello.
    match next_client_frame(&stream, &mut decoder, shutdown, &closed, wm) {
        ReadOutcome::Frame(ClientFrame::Hello { version }) => {
            if version != crate::proto::WIRE_VERSION {
                let _ = write_frame(
                    &stream,
                    &ServerFrame::Error {
                        seq: None,
                        message: format!(
                            "wire version mismatch: server speaks {}, client sent {version}",
                            crate::proto::WIRE_VERSION
                        ),
                    },
                    shutdown,
                    &closed,
                    wm,
                );
                return;
            }
        }
        ReadOutcome::Frame(_) => {
            let _ = write_frame(
                &stream,
                &ServerFrame::Error {
                    seq: None,
                    message: "expected Hello as the first frame".to_owned(),
                },
                shutdown,
                &closed,
                wm,
            );
            return;
        }
        ReadOutcome::Malformed(e) => {
            let _ = write_frame(
                &stream,
                &ServerFrame::Error {
                    seq: None,
                    message: e,
                },
                shutdown,
                &closed,
                wm,
            );
            return;
        }
        ReadOutcome::Stop => return,
    }

    // Post-handshake, replies and events share the socket: the reader
    // writes command replies directly (no queuing latency) and a
    // streamer thread pumps the attached session's events; a write
    // lock keeps whole frames atomic between the two.
    let write_lock = Arc::new(Mutex::new(()));
    let (sub_tx, sub_rx) = mpsc::channel::<EventReceiver>();
    let streamer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let shutdown = Arc::clone(shutdown);
        let closed = Arc::clone(&closed);
        let write_lock = Arc::clone(&write_lock);
        let registry = Arc::clone(&registry);
        std::thread::Builder::new()
            .name("gmdf-wire-streamer".to_owned())
            .spawn(move || {
                let wm = registry.enabled().then(|| &registry.wire);
                event_loop(&stream, &sub_rx, &shutdown, &closed, &write_lock, wm);
            })
            .expect("spawn wire streamer thread")
    };
    let reply = |frame: ServerFrame| {
        let _guard = lock(&write_lock);
        if write_server_frame(&stream, &frame, shutdown, &closed, wm).is_err() {
            closed.store(true, Ordering::SeqCst);
        }
    };
    reply(ServerFrame::HelloAck {
        version: crate::proto::WIRE_VERSION,
        sessions: server.session_ids(),
        quarantined: server
            .quarantined_sessions()
            .iter()
            .map(|(id, reason)| QuarantinedSession {
                session: *id,
                reason: reason.clone(),
            })
            .collect(),
    });

    let mut attached: Option<SessionHandle> = None;
    loop {
        if closed.load(Ordering::SeqCst) {
            break;
        }
        match next_client_frame(&stream, &mut decoder, shutdown, &closed, wm) {
            ReadOutcome::Frame(ClientFrame::Hello { .. }) => {
                // A connection-level violation; per the protocol
                // contract a seq-less Error closes the connection.
                reply(ServerFrame::Error {
                    seq: None,
                    message: "duplicate Hello".to_owned(),
                });
                break;
            }
            // Server-scope: answerable before (or without) an attach,
            // so a pure monitoring client never touches a session.
            ReadOutcome::Frame(ClientFrame::ListMetrics { seq }) => {
                reply(ServerFrame::Metrics {
                    seq,
                    snapshot: Box::new(server.metrics_snapshot()),
                });
            }
            ReadOutcome::Frame(ClientFrame::Attach { seq, session }) => {
                match server.handle(session) {
                    Some(handle) => {
                        // Subscribe *before* acking so no event between
                        // the ack and the subscription can be missed
                        // (the streamer may interleave an event ahead of
                        // the ack; the client buffers it).
                        let _ = sub_tx.send(handle.subscribe());
                        reply(ServerFrame::Ack { seq });
                        attached = Some(handle);
                    }
                    None => reply(ServerFrame::Error {
                        seq: Some(seq),
                        message: format!("unknown session {session}"),
                    }),
                }
            }
            ReadOutcome::Frame(ClientFrame::Command { seq, command }) => {
                let Some(handle) = &attached else {
                    reply(ServerFrame::Error {
                        seq: Some(seq),
                        message: "attach to a session before sending commands".to_owned(),
                    });
                    continue;
                };
                match command {
                    SessionCommand::Snapshot { include_trace, .. } => {
                        // Re-wire the reply channel (the deserialized
                        // one is a dangling stand-in) by issuing the
                        // snapshot through the handle.
                        let result = if include_trace {
                            handle.snapshot(SNAPSHOT_WAIT)
                        } else {
                            handle.stats(SNAPSHOT_WAIT)
                        };
                        match result {
                            Ok(snapshot) => reply(ServerFrame::Snapshot { seq, snapshot }),
                            Err(e) => reply(ServerFrame::Error {
                                seq: Some(seq),
                                message: e.to_string(),
                            }),
                        }
                    }
                    // History pages get the same reply re-wiring as
                    // snapshots: the handle installs a live channel.
                    SessionCommand::FetchRange { t0_ns, t1_ns, .. } => {
                        match handle.fetch_range(t0_ns, t1_ns, SNAPSHOT_WAIT) {
                            Ok(slice) => reply(ServerFrame::Trace { seq, slice }),
                            Err(e) => reply(ServerFrame::Error {
                                seq: Some(seq),
                                message: e.to_string(),
                            }),
                        }
                    }
                    SessionCommand::ReplayFrom {
                        seq: from, limit, ..
                    } => match handle.replay_from(from, limit, SNAPSHOT_WAIT) {
                        Ok(slice) => reply(ServerFrame::Trace { seq, slice }),
                        Err(e) => reply(ServerFrame::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        }),
                    },
                    other => match handle.send(other) {
                        Ok(()) => reply(ServerFrame::Ack { seq }),
                        Err(e) => reply(ServerFrame::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        }),
                    },
                }
            }
            ReadOutcome::Malformed(e) => {
                // Written before `closed` is set, so the diagnostic
                // still flushes to a live peer.
                reply(ServerFrame::Error {
                    seq: None,
                    message: e,
                });
                break;
            }
            ReadOutcome::Stop => break,
        }
    }
    closed.store(true, Ordering::SeqCst);
    drop(sub_tx);
    let _ = streamer.join();
}

/// The per-connection event streamer: waits on the attached session's
/// subscription (woken immediately on every broadcast) and writes each
/// event frame under the connection's write lock. A re-attach replaces
/// the streamed subscription.
fn event_loop(
    stream: &TcpStream,
    subs: &mpsc::Receiver<EventReceiver>,
    shutdown: &AtomicBool,
    closed: &AtomicBool,
    write_lock: &Mutex<()>,
    wm: Option<&WireMetrics>,
) {
    let mut sub: Option<EventReceiver> = None;
    loop {
        if shutdown.load(Ordering::SeqCst) || closed.load(Ordering::SeqCst) {
            return;
        }
        match &sub {
            None => match subs.recv_timeout(POLL) {
                Ok(receiver) => sub = Some(receiver),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                // The reader is gone and no subscription will ever
                // arrive; nothing left to stream.
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            },
            Some(receiver) => {
                if let Ok(replacement) = subs.try_recv() {
                    sub = Some(replacement);
                    continue;
                }
                match receiver.recv_timeout(POLL) {
                    Ok(event) => {
                        let frame = ServerFrame::Event { event };
                        let guard = lock(write_lock);
                        let ok = write_server_frame(stream, &frame, shutdown, closed, wm).is_ok();
                        drop(guard);
                        if !ok {
                            closed.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    // The session is gone (server released it); keep
                    // serving replies until the client goes away.
                    Err(mpsc::RecvTimeoutError::Disconnected) => sub = None,
                }
            }
        }
    }
}

/// A blocking client for [`WireServer`]: one socket, one attached
/// session, commands interleaved with the event stream.
///
/// Events that arrive while the client waits for a command reply are
/// buffered and handed out by [`WireClient::next_event`] in order —
/// nothing on the stream is dropped client-side.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    buffered: std::collections::VecDeque<crate::EngineEvent>,
    sessions: Vec<SessionId>,
    quarantined: Vec<QuarantinedSession>,
    /// The currently attached session; events from any other session
    /// (stragglers written around a re-attach) are filtered out.
    attached: Option<SessionId>,
    /// Request-id counter; replies echo it, so a stale reply left in
    /// flight by a timed-out call can never answer a later request.
    next_seq: u64,
}

impl WireClient {
    /// Connects and completes the hello/version handshake.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on socket failure, [`WireError::Remote`] /
    /// [`WireError::VersionMismatch`] on a rejected handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL))?;
        let mut client = WireClient {
            stream,
            decoder: FrameDecoder::new(),
            buffered: std::collections::VecDeque::new(),
            sessions: Vec::new(),
            quarantined: Vec::new(),
            attached: None,
            next_seq: 0,
        };
        client.write(&ClientFrame::Hello {
            version: crate::proto::WIRE_VERSION,
        })?;
        match client.read_frame(REPLY_WAIT)? {
            ServerFrame::HelloAck {
                version,
                sessions,
                quarantined,
            } => {
                if version != crate::proto::WIRE_VERSION {
                    return Err(WireError::VersionMismatch {
                        ours: crate::proto::WIRE_VERSION,
                        theirs: version,
                    });
                }
                client.sessions = sessions;
                client.quarantined = quarantined;
                Ok(client)
            }
            ServerFrame::Error { message, .. } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Sessions the server hosted at handshake time.
    pub fn sessions(&self) -> &[SessionId] {
        &self.sessions
    }

    /// Sessions quarantined at handshake time (a durable restore
    /// failed), each with the server's restore-failure reason.
    pub fn quarantined(&self) -> &[QuarantinedSession] {
        &self.quarantined
    }

    /// Requests the server's fleet-wide telemetry snapshot — a
    /// *server-scope* call, valid before (or without) an attach.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn metrics(&mut self, timeout: Duration) -> Result<MetricsSnapshot, WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::ListMetrics { seq })?;
        self.wait_reply(seq, timeout, "Metrics", move |frame| match frame {
            ServerFrame::Metrics { seq: s, snapshot } if s == seq => Ok(*snapshot),
            other => Err(other),
        })
    }

    /// Attaches this connection to `session`; its event stream starts
    /// flowing immediately after the acknowledgment.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] for an unknown session, transport errors
    /// otherwise.
    pub fn attach(&mut self, session: SessionId) -> Result<(), WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::Attach { seq, session })?;
        self.wait_ack(seq)?;
        self.attached = Some(session);
        // Drop events buffered from a previously attached session, but
        // keep any of the *new* session's events that the streamer
        // wrote ahead of the ack — the subscription starts before the
        // ack is sent, and its leading events must not be lost.
        self.buffered.retain(|event| event.session() == session);
        Ok(())
    }

    /// Sends one command to the attached session and waits for the
    /// acknowledgment. Use [`WireClient::snapshot`] for
    /// [`SessionCommand::Snapshot`] (it has a dedicated reply).
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the server rejects the command,
    /// transport errors otherwise.
    pub fn send(&mut self, command: SessionCommand) -> Result<(), WireError> {
        let seq = self.next_seq();
        self.write(&ClientFrame::Command { seq, command })?;
        self.wait_ack(seq)
    }

    /// Requests a snapshot of the attached session (with the serialized
    /// trace when `include_trace`).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn snapshot(
        &mut self,
        include_trace: bool,
        timeout: Duration,
    ) -> Result<SessionSnapshot, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            command: SessionCommand::Snapshot {
                reply,
                include_trace,
            },
        })?;
        self.wait_reply(seq, timeout, "Snapshot", move |frame| match frame {
            ServerFrame::Snapshot { seq: s, snapshot } if s == seq => Ok(snapshot),
            other => Err(other),
        })
    }

    /// Requests the attached session's trace entries whose event time
    /// falls in `[t0_ns, t1_ns]` — one bounded page
    /// ([`crate::MAX_FETCH_ENTRIES`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn fetch_range(
        &mut self,
        t0_ns: u64,
        t1_ns: u64,
        timeout: Duration,
    ) -> Result<crate::TraceSlice, WireError> {
        let (reply, _) = mpsc::channel();
        let seq = self.next_seq();
        self.write(&ClientFrame::Command {
            seq,
            command: SessionCommand::FetchRange {
                t0_ns,
                t1_ns,
                reply,
            },
        })?;
        self.wait_trace(seq, timeout)
    }

    /// Requests up to `limit` trace entries starting at sequence number
    /// `seq` (`0` = the server cap) — page history by advancing `seq`
    /// while [`crate::TraceSlice::complete`] is false.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses, transport or
    /// remote errors otherwise.
    pub fn replay_from(
        &mut self,
        seq: u64,
        limit: u64,
        timeout: Duration,
    ) -> Result<crate::TraceSlice, WireError> {
        let (reply, _) = mpsc::channel();
        let request = self.next_seq();
        self.write(&ClientFrame::Command {
            seq: request,
            command: SessionCommand::ReplayFrom { seq, limit, reply },
        })?;
        self.wait_trace(request, timeout)
    }

    /// Waits for the [`ServerFrame::Trace`] reply answering `seq`.
    fn wait_trace(&mut self, seq: u64, timeout: Duration) -> Result<crate::TraceSlice, WireError> {
        self.wait_reply(seq, timeout, "Trace", move |frame| match frame {
            ServerFrame::Trace { seq: s, slice } if s == seq => Ok(slice),
            other => Err(other),
        })
    }

    /// The shared reply wait: reads frames until `extract` accepts one,
    /// buffering interleaved events, skipping stale replies left by
    /// earlier timed-out requests, and surfacing this request's (or the
    /// connection's) error.
    fn wait_reply<T>(
        &mut self,
        seq: u64,
        timeout: Duration,
        what: &str,
        extract: impl Fn(ServerFrame) -> Result<T, ServerFrame>,
    ) -> Result<T, WireError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            match extract(self.read_frame(remaining)?) {
                Ok(reply) => return Ok(reply),
                Err(ServerFrame::Event { event }) => self.buffered.push_back(event),
                Err(ServerFrame::Error { seq: Some(s), .. }) if s != seq => {} // stale
                Err(ServerFrame::Error { message, .. }) => return Err(WireError::Remote(message)),
                // Stale replies to requests whose caller already gave
                // up; this request's reply is still coming.
                Err(
                    ServerFrame::Ack { .. }
                    | ServerFrame::Snapshot { .. }
                    | ServerFrame::Trace { .. }
                    | ServerFrame::Metrics { .. },
                ) => {}
                Err(other) => {
                    return Err(WireError::Protocol(format!(
                        "expected {what}, got {other:?}"
                    )))
                }
            }
        }
    }

    /// The next event on the attached session's stream (buffered ones
    /// first).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses first, transport
    /// or remote errors otherwise.
    pub fn next_event(&mut self, timeout: Duration) -> Result<crate::EngineEvent, WireError> {
        while let Some(event) = self.buffered.pop_front() {
            if self.wants(&event) {
                return Ok(event);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            match self.read_frame(remaining)? {
                ServerFrame::Event { event } if self.wants(&event) => return Ok(event),
                // A straggler from a previously attached session,
                // written around a re-attach; not part of this stream.
                ServerFrame::Event { .. } => {}
                // Stray replies from an earlier timed-out request (an
                // Ack, a Snapshot, a Trace page, or a request-level
                // Error that arrived after its caller gave up) are not
                // events; skip them instead of poisoning an otherwise
                // healthy connection.
                ServerFrame::Ack { .. }
                | ServerFrame::Snapshot { .. }
                | ServerFrame::Trace { .. }
                | ServerFrame::Metrics { .. } => {}
                ServerFrame::Error { seq: Some(_), .. } => {}
                ServerFrame::Error { message, .. } => return Err(WireError::Remote(message)),
                other => {
                    return Err(WireError::Protocol(format!(
                        "expected Event, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Polls counter snapshots until the attached session is idle (no
    /// run budget left after every previously sent command applied).
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when `timeout` elapses first.
    pub fn wait_idle(&mut self, timeout: Duration) -> Result<(), WireError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Timeout);
            }
            // The snapshot round-trips through the mailbox, so once it
            // reports zero budget every earlier command was applied.
            let snapshot = self.snapshot(false, remaining)?;
            if snapshot.remaining_ns == 0 {
                return Ok(());
            }
            std::thread::sleep(POLL);
        }
    }

    /// Convenience: [`SessionCommand::RunFor`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn run_for(&mut self, duration_ns: u64) -> Result<(), WireError> {
        self.send(SessionCommand::RunFor { duration_ns })
    }

    /// Convenience: [`SessionCommand::ScheduleSignal`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn schedule_signal(
        &mut self,
        time_ns: u64,
        label: &str,
        value: gmdf_comdes::SignalValue,
    ) -> Result<(), WireError> {
        self.send(SessionCommand::ScheduleSignal {
            time_ns,
            label: label.to_owned(),
            value,
        })
    }

    /// Convenience: [`SessionCommand::AddBreakpoint`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn add_breakpoint(
        &mut self,
        matcher: gmdf_gdm::CommandMatcher,
        one_shot: bool,
    ) -> Result<(), WireError> {
        self.send(SessionCommand::AddBreakpoint { matcher, one_shot })
    }

    /// Convenience: [`SessionCommand::Step`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn step(&mut self) -> Result<(), WireError> {
        self.send(SessionCommand::Step)
    }

    /// Convenience: [`SessionCommand::Resume`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn resume(&mut self) -> Result<(), WireError> {
        self.send(SessionCommand::Resume)
    }

    /// Convenience: [`SessionCommand::ClearBreakpoints`].
    ///
    /// # Errors
    ///
    /// See [`WireClient::send`].
    pub fn clear_breakpoints(&mut self) -> Result<(), WireError> {
        self.send(SessionCommand::ClearBreakpoints)
    }

    fn write<T: Serialize>(&mut self, frame: &T) -> Result<(), WireError> {
        let bytes = encode_frame(frame).map_err(|e| WireError::Protocol(e.to_string()))?;
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// `true` if `event` belongs to the attached session's stream.
    fn wants(&self, event: &crate::EngineEvent) -> bool {
        self.attached
            .is_none_or(|session| event.session() == session)
    }

    fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    fn wait_ack(&mut self, seq: u64) -> Result<(), WireError> {
        self.wait_reply(seq, REPLY_WAIT, "Ack", move |frame| match frame {
            ServerFrame::Ack { seq: s } if s == seq => Ok(()),
            other => Err(other),
        })
    }

    /// Reads one server frame, waiting up to `timeout`.
    fn read_frame(&mut self, timeout: Duration) -> Result<ServerFrame, WireError> {
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        loop {
            match self.decoder.next_payload() {
                Ok(Some(payload)) => {
                    return decode_payload::<ServerFrame>(&payload).map_err(WireError::Protocol)
                }
                Ok(None) => {}
                Err(e) => return Err(WireError::Protocol(e)),
            }
            if Instant::now() >= deadline {
                return Err(WireError::Timeout);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Closed),
                Ok(n) => self.decoder.feed(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
    }
}
