//! Durable sessions: the on-disk session registry and command journal.
//!
//! A persistent [`DebugServer`](crate::DebugServer) keeps, for every
//! durable session, everything needed to recreate it after a process
//! restart:
//!
//! ```text
//! <root>/sessions/<id>/
//!   spec.json      the SessionSpec (system, GDM, channel, options)
//!   journal.log    length-prefixed records of every applied
//!                  state-affecting command, stamped with the target
//!                  time at which it was applied
//!   trace/         the session's segmented trace store
//!     meta.json
//!     seg-*.log    hot segments (JSON or binary records, per meta)
//!     seg-*.lgz    cold segments, compressed by the retention sweep
//! ```
//!
//! Restore leans entirely on determinism: the simulator, the code
//! generator and slice pumping are all bit-exact, so *spec + journal*
//! is the session. [`restore_session`] rebuilds the session from its
//! spec, re-applies each journaled command at the exact target time it
//! originally took effect (pumping the simulator up to that instant in
//! between), and reattaches the recovered trace store — whose
//! already-persisted prefix makes the trace drop re-generated entries
//! instead of duplicating them (deterministic catch-up, see
//! [`gmdf_engine::ExecutionTrace`]). Whatever run budget the journal
//! grants beyond the restore point is handed back to the scheduler,
//! which finishes the run as if the restart never happened.

use crate::server::SessionCommand;
use gmdf::{DebugSession, SessionSpec};
use gmdf_engine::store::{encode_record, read_records, SegmentConfig, SegmentStore};
use gmdf_engine::EngineNotice;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc;

/// One journaled command: what was applied, and the target time the
/// session had reached when it was applied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct JournalRecord {
    /// Target simulation time at application.
    pub at_ns: u64,
    /// The applied command (`Snapshot`/`FetchRange`/`ReplayFrom` are
    /// read-only and never journaled; their deserialized reply channel
    /// stand-ins make the derive usable here).
    pub command: SessionCommand,
}

/// Append-only command journal for one durable session.
#[derive(Debug)]
pub(crate) struct Journal {
    file: File,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Appends one record and fsyncs it — commands are rare and each
    /// must survive a crash (including an OS crash or power loss) that
    /// happens right after it was accepted.
    pub fn append(&mut self, at_ns: u64, command: &SessionCommand) -> std::io::Result<()> {
        let record = encode_record(&JournalRecord {
            at_ns,
            command: command.clone(),
        })
        .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.file.write_all(&record)?;
        self.file.sync_data()
    }
}

/// `true` for commands that change session state and must be journaled
/// (read-only queries are not part of the replayable history). The
/// time-travel trio (`SeekTo`/`StepBack`/`ReplayWindow`) is read-only
/// too: a seek inspects a detached replica, never the live session.
pub(crate) fn journaled(command: &SessionCommand) -> bool {
    !matches!(
        command,
        SessionCommand::Snapshot { .. }
            | SessionCommand::FetchRange { .. }
            | SessionCommand::ReplayFrom { .. }
            | SessionCommand::SeekTo { .. }
            | SessionCommand::StepBack { .. }
            | SessionCommand::ReplayWindow { .. }
    )
}

/// Directory of one session's persisted state.
pub(crate) fn session_dir(root: &Path, id: u64) -> PathBuf {
    root.join("sessions").join(format!("{id:016}"))
}

/// Directory of one durable session's periodic full-state checkpoints
/// (`ckpt-<seq>-<t_ns>.ck` files — see
/// [`gmdf_engine::CheckpointStore`]).
pub(crate) fn checkpoint_dir(root: &Path, id: u64) -> PathBuf {
    session_dir(root, id).join("checkpoints")
}

/// The payload of one on-disk checkpoint: the session's full serialized
/// state plus the journal position it corresponds to. A seek restores
/// the state and re-applies only `journal[journal_pos..]` — the target
/// time alone cannot disambiguate several commands journaled at the
/// same instant, so the position is persisted alongside the state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ServerCheckpoint {
    /// Journal records already applied when the checkpoint was taken.
    pub journal_pos: u64,
    /// The session's full state (simulator, engine, channels).
    pub session: gmdf::SessionCheckpoint,
}

/// Loads and parses one session directory's `spec.json`.
pub(crate) fn load_spec(dir: &Path) -> Result<SessionSpec, String> {
    let spec_text = std::fs::read_to_string(dir.join("spec.json"))
        .map_err(|e| format!("cannot read spec.json: {e}"))?;
    serde_json::from_str(&spec_text).map_err(|e| format!("corrupt spec.json: {e}"))
}

/// Reads the valid prefix of one session directory's journal. A torn
/// tail record is ignored (not truncated — that is
/// [`restore_session`]'s job; seeks are read-only observers).
pub(crate) fn read_journal(dir: &Path) -> Result<Vec<JournalRecord>, String> {
    let path = dir.join("journal.log");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let (records, _valid_len) =
        read_records::<JournalRecord>(&path).map_err(|e| format!("cannot read journal: {e}"))?;
    Ok(records)
}

/// Creates a fresh durable-session directory: writes the spec
/// (atomically) and returns the opened journal and trace store.
pub(crate) fn create_session_dir(
    root: &Path,
    id: u64,
    spec: &SessionSpec,
    store_config: SegmentConfig,
) -> Result<(Journal, SegmentStore), String> {
    let dir = session_dir(root, id);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let spec_json = serde_json::to_string_pretty(spec).expect("spec serializes");
    // Write-fsync-rename: without the fsync the rename can land before
    // the data on power loss, leaving an empty spec that would
    // quarantine the session forever even though its journal survived.
    let tmp = dir.join("spec.json.tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| e.to_string())?;
        f.write_all(spec_json.as_bytes())
            .map_err(|e| e.to_string())?;
        f.sync_data().map_err(|e| e.to_string())?;
    }
    std::fs::rename(&tmp, dir.join("spec.json")).map_err(|e| e.to_string())?;
    let journal = Journal::open(&dir.join("journal.log")).map_err(|e| e.to_string())?;
    let store =
        SegmentStore::open_with(dir.join("trace"), store_config).map_err(|e| e.to_string())?;
    Ok((journal, store))
}

/// Session ids persisted under `root`, in ascending order.
pub(crate) fn persisted_ids(root: &Path) -> Vec<u64> {
    let mut ids = Vec::new();
    let sessions = root.join("sessions");
    let Ok(dir) = std::fs::read_dir(&sessions) else {
        return ids;
    };
    for entry in dir.flatten() {
        if let Ok(id) = entry.file_name().to_string_lossy().parse::<u64>() {
            if entry.path().join("spec.json").exists() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    ids
}

/// A session rebuilt from its persisted state, ready to hand to the
/// scheduler.
#[derive(Debug)]
pub(crate) struct RestoredSession {
    pub session: DebugSession,
    pub notices: mpsc::Receiver<EngineNotice>,
    pub journal: Journal,
    /// Run budget granted by the journal but not yet consumed — the
    /// scheduler finishes it.
    pub remaining_ns: u64,
    /// Counters reconstructed from the replayed history, so snapshots
    /// after a restart report the same totals as an uninterrupted run.
    pub events_fed: u64,
    pub violations: u64,
    pub breakpoint_hits: u64,
    /// Where delta publication resumes (everything before is history,
    /// served via `FetchRange`/`ReplayFrom`).
    pub trace_cursor: u64,
    /// Records in the (torn-tail-truncated) journal — the position new
    /// checkpoints record as their [`ServerCheckpoint::journal_pos`].
    pub journal_len: u64,
}

/// Rebuilds one durable session from `<root>/sessions/<id>` (see the
/// module docs for the replay semantics).
///
/// # Errors
///
/// Returns a message when the spec is unreadable or the deterministic
/// replay fails (it cannot for state persisted by this code, barring
/// on-disk tampering).
pub(crate) fn restore_session(
    root: &Path,
    id: u64,
    store_config: SegmentConfig,
) -> Result<RestoredSession, String> {
    let dir = session_dir(root, id);
    let spec = load_spec(&dir).map_err(|e| format!("session {id}: {e}"))?;
    let mut session = spec
        .build()
        .map_err(|e| format!("session {id}: rebuild failed: {e}"))?;
    let notices = session.engine_mut().subscribe();

    // Reattach the recovered trace. Its surviving prefix arms the
    // deterministic catch-up: re-generated entries below the recovered
    // length are dropped, not duplicated. The store's own meta.json
    // codec wins over the configured one, so a fleet reconfigured to a
    // new codec still reopens old session directories correctly.
    let store = SegmentStore::open_with(dir.join("trace"), store_config)
        .map_err(|e| format!("session {id}: trace recovery failed: {e}"))?;
    session.set_trace_store(Box::new(store));

    // Recover the journal, truncating any torn tail record (a command
    // cut mid-append was never acknowledged; dropping it is correct).
    let journal_path = dir.join("journal.log");
    let mut records: Vec<JournalRecord> = Vec::new();
    if journal_path.exists() {
        let (recovered, valid_len) = read_records::<JournalRecord>(&journal_path)
            .map_err(|e| format!("session {id}: cannot read journal: {e}"))?;
        let file_len = std::fs::metadata(&journal_path)
            .map_err(|e| e.to_string())?
            .len();
        if valid_len < file_len {
            let f = OpenOptions::new()
                .write(true)
                .open(&journal_path)
                .map_err(|e| e.to_string())?;
            f.set_len(valid_len).map_err(|e| e.to_string())?;
        }
        records = recovered;
    }

    // Deterministic replay: pump to each command's application instant,
    // apply it, and tally the total granted run budget.
    let journal_len = records.len() as u64;
    let mut total_budget_ns: u64 = 0;
    let mut events_fed: u64 = 0;
    for record in records {
        let now = session.now_ns();
        if record.at_ns > now {
            let report = session
                .run_for(record.at_ns - now)
                .map_err(|e| format!("session {id}: replay pump failed: {e}"))?;
            events_fed += report.events_fed as u64;
        }
        match record.command {
            SessionCommand::ScheduleSignal {
                time_ns,
                label,
                value,
            } => {
                session
                    .schedule_signal(time_ns, &label, value)
                    .map_err(|e| format!("session {id}: replay stimulus failed: {e}"))?;
            }
            SessionCommand::AddBreakpoint { matcher, one_shot } => {
                session.engine_mut().add_breakpoint(matcher, one_shot);
            }
            SessionCommand::ClearBreakpoints => session.engine_mut().clear_breakpoints(),
            SessionCommand::Step => {
                session.engine_mut().step();
            }
            SessionCommand::Resume => {
                session.engine_mut().resume();
            }
            SessionCommand::RunFor { duration_ns } => {
                total_budget_ns = total_budget_ns.saturating_add(duration_ns);
            }
            // Never journaled; tolerated for robustness.
            SessionCommand::Snapshot { .. }
            | SessionCommand::FetchRange { .. }
            | SessionCommand::ReplayFrom { .. }
            | SessionCommand::SeekTo { .. }
            | SessionCommand::StepBack { .. }
            | SessionCommand::ReplayWindow { .. } => {}
        }
    }
    let remaining_ns = total_budget_ns.saturating_sub(session.now_ns());

    // Reconstruct the counters from the replayed prefix; the scheduler
    // continues them over the remaining budget.
    let mut violations: u64 = 0;
    let mut breakpoint_hits: u64 = 0;
    while let Ok(notice) = notices.try_recv() {
        violations += notice.violations as u64;
        if notice.hit_breakpoint {
            breakpoint_hits += 1;
        }
    }
    let trace_cursor = session.engine().trace().len() as u64;
    let journal = Journal::open(&journal_path).map_err(|e| e.to_string())?;
    Ok(RestoredSession {
        session,
        notices,
        journal,
        remaining_ns,
        events_fed,
        violations,
        breakpoint_hits,
        trace_cursor,
        journal_len,
    })
}
