//! Wire protocol: framing and envelopes for remote debug clients.
//!
//! The transport is deliberately minimal — a paper-faithful "Debugger
//! Communication Framework" a microcontroller-side stub could speak:
//!
//! * **Framing**: each message is `[u32 length, big-endian][payload]`,
//!   where the payload is the compact JSON serialization of one
//!   envelope ([`ClientFrame`] client→server, [`ServerFrame`]
//!   server→client). Frames longer than [`MAX_FRAME_LEN`] are rejected
//!   (a desynchronized or hostile peer must not drive allocation).
//! * **Handshake**: the client's first frame must be
//!   [`ClientFrame::Hello`] carrying [`WIRE_VERSION`] (and the shared
//!   secret when the server requires one); the server answers
//!   [`ServerFrame::HelloAck`] (listing attachable sessions) or
//!   [`ServerFrame::Error`] and closes. Versioning is strict equality —
//!   the vocabulary is re-negotiated per release, not field-patched.
//! * **Envelopes**: after the handshake, the connection is
//!   **multiplexed**: the client attaches to any number of sessions
//!   concurrently ([`ClientFrame::Attach`] / [`ClientFrame::Detach`]),
//!   addresses every [`SessionCommand`] at an explicit session, and
//!   polls the live session directory ([`ClientFrame::ListSessions`] /
//!   [`ServerFrame::Sessions`]). The server interleaves command replies
//!   (`Ack` / `Snapshot` / `Error`) with the attached sessions' merged
//!   [`EngineEvent`] stream on the same socket; every event carries its
//!   session id, so frames demultiplex client-side without per-session
//!   sockets.
//!
//! The JSON encoding of every payload type is exactly the vendored
//! serde shim's derive format, so a wire round-trip of an event stream
//! is byte-identical to serializing the in-process broadcast
//! (`crates/server/tests/wire.rs` pins this down).

use crate::event::{EngineEvent, SeekReport, SessionSnapshot, TraceSlice};
use crate::metrics::{MetricsSnapshot, QuarantinedSession, SessionInfo};
use crate::server::{SessionCommand, SessionId};
use serde::{content_get, Content, DeError, Deserialize, Serialize};
use std::sync::mpsc;

/// Protocol revision spoken by this build. Strict equality is required
/// at handshake time. Version 2 added the history-paging pair
/// ([`SessionCommand::FetchRange`] / [`SessionCommand::ReplayFrom`])
/// and their [`ServerFrame::Trace`] reply. Version 3 added the
/// server-scope telemetry pair ([`ClientFrame::ListMetrics`] /
/// [`ServerFrame::Metrics`]) and the quarantine list in
/// [`ServerFrame::HelloAck`]. Version 4 multiplexed the connection:
/// concurrent attaches ([`ClientFrame::Attach`] grew a queue-capacity
/// override, [`ClientFrame::Detach`] appeared), session-addressed
/// commands ([`ClientFrame::Command`] carries a `session`), the live
/// directory pair ([`ClientFrame::ListSessions`] /
/// [`ServerFrame::Sessions`]), and the optional shared-secret `token`
/// in [`ClientFrame::Hello`]. Version 5 added static analysis: the
/// server-scope [`ClientFrame::Analyze`] / [`ServerFrame::Analysis`]
/// pair serving each session's cached
/// [`AnalysisReport`](gmdf_analyze::AnalysisReport), and the
/// `diagnostics: (errors, warnings)` summary on every [`SessionInfo`]
/// directory row. Version 6 added time travel: the
/// [`SessionCommand::SeekTo`] / [`SessionCommand::StepBack`] commands
/// with their [`ServerFrame::Seek`] reply, and
/// [`SessionCommand::ReplayWindow`], answered — like the other history
/// reads — with [`ServerFrame::Trace`].
pub const WIRE_VERSION: u32 = 6;

/// Upper bound on one frame's payload length (64 MiB) — large enough
/// for a full-trace snapshot of any realistic session, small enough
/// that a desynchronized length prefix cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// A message from a remote client to the wire server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Handshake opener; must be the first frame on the connection.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
        /// Shared-secret authentication token. Required (and compared
        /// in constant time) when the server was configured with
        /// [`crate::ServerConfig::auth_token`]; ignored otherwise.
        token: Option<String>,
    },
    /// Attach this connection to one hosted session: its event stream
    /// starts flowing, interleaved with every other attached session's.
    /// Re-attaching an already-attached session replaces its
    /// subscription (the stream restarts from now).
    Attach {
        /// Client-chosen request id, echoed in the reply — correlates
        /// replies with requests even after a client-side timeout left
        /// a stale reply in flight.
        seq: u64,
        /// The session to attach to (see
        /// [`ServerFrame::HelloAck::sessions`] or
        /// [`ServerFrame::Sessions`]).
        session: SessionId,
        /// Override for this attach's event-queue capacity (`Some(0)` =
        /// unbounded); `None` uses the server default
        /// ([`crate::ServerConfig::subscriber_capacity`]). Each attach
        /// gets its own (connection, session) bounded queue, so one
        /// lagging attach overflows alone.
        capacity: Option<u64>,
    },
    /// Detach one session from this connection: its event stream stops
    /// (frames already in flight may still arrive — clients filter
    /// stragglers). Idempotent; other attaches are untouched.
    Detach {
        /// Client-chosen request id, echoed in the reply.
        seq: u64,
        /// The session to detach.
        session: SessionId,
    },
    /// Post one command to a hosted session's mailbox.
    /// [`SessionCommand::Snapshot`] is answered with
    /// [`ServerFrame::Snapshot`]; everything else with
    /// [`ServerFrame::Ack`]. Commands are session-addressed and need no
    /// prior attach.
    Command {
        /// Client-chosen request id, echoed in the reply.
        seq: u64,
        /// The session the command addresses.
        session: SessionId,
        /// The command to apply.
        command: SessionCommand,
    },
    /// Request the live session directory — one
    /// [`SessionInfo`] row per hosted (and quarantined) session.
    /// Server-scope: a discovery client can poll the fleet and choose
    /// what to attach without any prior attach. Answered with
    /// [`ServerFrame::Sessions`].
    ListSessions {
        /// Client-chosen request id, echoed in the reply.
        seq: u64,
    },
    /// Request the server's fleet-wide [`MetricsSnapshot`]. This is a
    /// *server-scope* request — it needs no attached session, so a
    /// monitoring client can poll telemetry right after the handshake.
    /// Answered with [`ServerFrame::Metrics`].
    ListMetrics {
        /// Client-chosen request id, echoed in the reply.
        seq: u64,
    },
    /// Request one session's cached static-analysis report
    /// (schedulability verdicts, route findings, model lint). The
    /// report is computed once when the session registers and served
    /// from cache, so this is cheap enough to poll. Server-scope (no
    /// prior attach needed); answered with [`ServerFrame::Analysis`],
    /// or [`ServerFrame::Error`] for an unknown session.
    Analyze {
        /// Client-chosen request id, echoed in the reply.
        seq: u64,
        /// The session whose report to fetch.
        session: SessionId,
    },
}

/// A message from the wire server to a remote client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Successful handshake reply.
    HelloAck {
        /// The server's [`WIRE_VERSION`] (equal to the client's).
        version: u32,
        /// Sessions hosted at handshake time, attachable by id.
        sessions: Vec<SessionId>,
        /// Sessions quarantined at handshake time (failed a durable
        /// restore), each with its restore-failure reason. Not
        /// attachable; listed so a remote operator can see *why* a
        /// session is missing from `sessions`.
        quarantined: Vec<QuarantinedSession>,
    },
    /// A non-snapshot request was accepted (attach done, command in
    /// the mailbox).
    Ack {
        /// The request id this acknowledges.
        seq: u64,
    },
    /// A request failed (unknown session, bad command, shut-down
    /// server…), or — with no `seq` — the connection itself is in
    /// trouble (handshake rejection, malformed frame). Connection-level
    /// errors close the connection; request-level ones do not.
    Error {
        /// The failed request's id; `None` for connection-level errors.
        seq: Option<u64>,
        /// What went wrong.
        message: String,
    },
    /// Reply to a [`SessionCommand::Snapshot`] command.
    Snapshot {
        /// The request id this answers.
        seq: u64,
        /// The consistent point-in-time view.
        snapshot: SessionSnapshot,
    },
    /// Reply to a [`SessionCommand::FetchRange`] or
    /// [`SessionCommand::ReplayFrom`] command: one page of trace
    /// history.
    Trace {
        /// The request id this answers.
        seq: u64,
        /// The page (bounded; see [`TraceSlice::complete`]).
        slice: TraceSlice,
    },
    /// Reply to a [`ClientFrame::ListSessions`] request: the live
    /// session directory clients discover and attach against.
    Sessions {
        /// The request id this answers.
        seq: u64,
        /// One row per hosted session (quarantined ids included, marked
        /// by their [`crate::HealthState`]).
        sessions: Vec<SessionInfo>,
    },
    /// Reply to a [`ClientFrame::ListMetrics`] request: the fleet-wide
    /// telemetry snapshot.
    Metrics {
        /// The request id this answers.
        seq: u64,
        /// The point-in-time fleet view (boxed: it is by far the
        /// largest payload, and boxing keeps the frame enum small).
        snapshot: Box<MetricsSnapshot>,
    },
    /// Reply to a [`SessionCommand::SeekTo`] or
    /// [`SessionCommand::StepBack`] command: where the time-travel
    /// replica landed.
    Seek {
        /// The request id this answers.
        seq: u64,
        /// The seek outcome (boxed: the optional serialized trace makes
        /// this a large payload, and boxing keeps the frame enum small).
        report: Box<SeekReport>,
    },
    /// Reply to a [`ClientFrame::Analyze`] request: the session's
    /// cached static-analysis report.
    Analysis {
        /// The request id this answers.
        seq: u64,
        /// The full report (boxed: diagnostics-heavy reports dwarf the
        /// other variants, and boxing keeps the frame enum small).
        report: Box<gmdf_analyze::AnalysisReport>,
    },
    /// One event from an attached session's broadcast stream. The
    /// event carries its session id — a multiplexed connection's merged
    /// stream demultiplexes on it.
    Event {
        /// The broadcast event (including [`EngineEvent::Lagged`] when
        /// this (connection, session) queue fell behind).
        event: EngineEvent,
    },
}

fn tagged(tag: &str, fields: Vec<(Content, Content)>) -> Content {
    Content::Map(vec![(Content::Str(tag.to_owned()), Content::Map(fields))])
}

fn field(name: &str, value: Content) -> (Content, Content) {
    (Content::Str(name.to_owned()), value)
}

fn get<T: Deserialize>(fields: &[(Content, Content)], name: &str) -> Result<T, DeError> {
    T::from_content(content_get(fields, name).ok_or_else(|| DeError::missing(name))?)
}

// `SessionCommand` cannot derive its serde impls: the `Snapshot`
// variant carries an in-process reply channel. On the wire the variant
// is just `{"Snapshot":{"include_trace":…}}`; deserialization installs
// a dangling reply sender, which the wire server replaces with its own
// before forwarding (`apply_command` tolerates a dead reply channel).
// Every other variant matches the derive format exactly.
impl Serialize for SessionCommand {
    fn to_content(&self) -> Content {
        match self {
            SessionCommand::ScheduleSignal {
                time_ns,
                label,
                value,
            } => tagged(
                "ScheduleSignal",
                vec![
                    field("time_ns", time_ns.to_content()),
                    field("label", label.to_content()),
                    field("value", value.to_content()),
                ],
            ),
            SessionCommand::AddBreakpoint { matcher, one_shot } => tagged(
                "AddBreakpoint",
                vec![
                    field("matcher", matcher.to_content()),
                    field("one_shot", one_shot.to_content()),
                ],
            ),
            SessionCommand::ClearBreakpoints => Content::Str("ClearBreakpoints".to_owned()),
            SessionCommand::Step => Content::Str("Step".to_owned()),
            SessionCommand::Resume => Content::Str("Resume".to_owned()),
            SessionCommand::RunFor { duration_ns } => tagged(
                "RunFor",
                vec![field("duration_ns", duration_ns.to_content())],
            ),
            SessionCommand::Snapshot { include_trace, .. } => tagged(
                "Snapshot",
                vec![field("include_trace", include_trace.to_content())],
            ),
            SessionCommand::FetchRange { t0_ns, t1_ns, .. } => tagged(
                "FetchRange",
                vec![
                    field("t0_ns", t0_ns.to_content()),
                    field("t1_ns", t1_ns.to_content()),
                ],
            ),
            SessionCommand::ReplayFrom { seq, limit, .. } => tagged(
                "ReplayFrom",
                vec![
                    field("seq", seq.to_content()),
                    field("limit", limit.to_content()),
                ],
            ),
            SessionCommand::SeekTo {
                t_ns,
                include_trace,
                ..
            } => tagged(
                "SeekTo",
                vec![
                    field("t_ns", t_ns.to_content()),
                    field("include_trace", include_trace.to_content()),
                ],
            ),
            SessionCommand::StepBack {
                entries,
                include_trace,
                ..
            } => tagged(
                "StepBack",
                vec![
                    field("entries", entries.to_content()),
                    field("include_trace", include_trace.to_content()),
                ],
            ),
            SessionCommand::ReplayWindow { t0_ns, t1_ns, .. } => tagged(
                "ReplayWindow",
                vec![
                    field("t0_ns", t0_ns.to_content()),
                    field("t1_ns", t1_ns.to_content()),
                ],
            ),
        }
    }
}

impl Deserialize for SessionCommand {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        if let Some(tag) = c.as_str() {
            return match tag {
                "ClearBreakpoints" => Ok(SessionCommand::ClearBreakpoints),
                "Step" => Ok(SessionCommand::Step),
                "Resume" => Ok(SessionCommand::Resume),
                other => Err(DeError::custom(format!(
                    "unknown variant `{other}` of SessionCommand"
                ))),
            };
        }
        let entries = c
            .as_map()
            .ok_or_else(|| DeError::custom("expected variant map for SessionCommand"))?;
        let (tag, body) = entries
            .first()
            .ok_or_else(|| DeError::custom("empty variant map for SessionCommand"))?;
        let tag = tag
            .as_str()
            .ok_or_else(|| DeError::custom("expected string variant tag"))?;
        let fields = body
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected field map for `{tag}`")))?;
        match tag {
            "ScheduleSignal" => Ok(SessionCommand::ScheduleSignal {
                time_ns: get(fields, "time_ns")?,
                label: get(fields, "label")?,
                value: get(fields, "value")?,
            }),
            "AddBreakpoint" => Ok(SessionCommand::AddBreakpoint {
                matcher: get(fields, "matcher")?,
                one_shot: get(fields, "one_shot")?,
            }),
            "RunFor" => Ok(SessionCommand::RunFor {
                duration_ns: get(fields, "duration_ns")?,
            }),
            "Snapshot" => {
                // The wire carries no reply channel; install a dangling
                // sender the transport re-wires before forwarding.
                let (reply, _) = mpsc::channel();
                Ok(SessionCommand::Snapshot {
                    reply,
                    include_trace: get(fields, "include_trace")?,
                })
            }
            "FetchRange" => {
                let (reply, _) = mpsc::channel();
                Ok(SessionCommand::FetchRange {
                    t0_ns: get(fields, "t0_ns")?,
                    t1_ns: get(fields, "t1_ns")?,
                    reply,
                })
            }
            "ReplayFrom" => {
                let (reply, _) = mpsc::channel();
                Ok(SessionCommand::ReplayFrom {
                    seq: get(fields, "seq")?,
                    limit: get(fields, "limit")?,
                    reply,
                })
            }
            "SeekTo" => {
                let (reply, _) = mpsc::channel();
                Ok(SessionCommand::SeekTo {
                    t_ns: get(fields, "t_ns")?,
                    include_trace: get(fields, "include_trace")?,
                    reply,
                })
            }
            "StepBack" => {
                let (reply, _) = mpsc::channel();
                Ok(SessionCommand::StepBack {
                    entries: get(fields, "entries")?,
                    include_trace: get(fields, "include_trace")?,
                    reply,
                })
            }
            "ReplayWindow" => {
                let (reply, _) = mpsc::channel();
                Ok(SessionCommand::ReplayWindow {
                    t0_ns: get(fields, "t0_ns")?,
                    t1_ns: get(fields, "t1_ns")?,
                    reply,
                })
            }
            other => Err(DeError::custom(format!(
                "unknown variant `{other}` of SessionCommand"
            ))),
        }
    }
}

/// An envelope too large for the wire: its encoded payload exceeds
/// [`MAX_FRAME_LEN`], so writing it would either truncate the length
/// prefix or feed the peer a frame its decoder must reject. Carries the
/// offending payload length so senders can substitute a bounded notice
/// (see `write_server_frame` in the wire layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// Encoded payload length that broke the limit.
    pub payload_len: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame limit",
            self.payload_len
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Encodes one envelope as a length-prefixed frame, ready to write.
///
/// # Errors
///
/// Rejects envelopes whose payload exceeds [`MAX_FRAME_LEN`] — an
/// unchecked `as u32` cast here would silently truncate the length
/// prefix and desynchronize the stream for every later frame.
pub fn encode_frame<T: Serialize>(frame: &T) -> Result<Vec<u8>, FrameTooLarge> {
    let mut json = String::new();
    let mut out = Vec::new();
    encode_frame_into(frame, &mut json, &mut out)?;
    Ok(out)
}

/// The buffer-reuse form of [`encode_frame`]: appends one
/// length-prefixed frame to `out`, rendering the JSON through the
/// caller-owned `json` scratch buffer. A hot encode loop (the
/// per-connection streamer batching event frames) keeps both buffers
/// warm, so steady-state encoding allocates nothing — instead of one
/// fresh `String` plus one fresh `Vec` per frame.
///
/// `json` is cleared on entry; `out` is appended to (never truncated),
/// so successive frames batch into one write. On error `out` is left
/// exactly as it was.
///
/// # Errors
///
/// Rejects envelopes whose payload exceeds [`MAX_FRAME_LEN`], like
/// [`encode_frame`].
pub fn encode_frame_into<T: Serialize>(
    frame: &T,
    json: &mut String,
    out: &mut Vec<u8>,
) -> Result<(), FrameTooLarge> {
    json.clear();
    serde_json::write_to_string(frame, json);
    if json.len() > MAX_FRAME_LEN {
        return Err(FrameTooLarge {
            payload_len: json.len(),
        });
    }
    out.reserve(4 + json.len());
    out.extend_from_slice(&(json.len() as u32).to_be_bytes());
    out.extend_from_slice(json.as_bytes());
    Ok(())
}

/// Decodes one frame payload (the JSON bytes *after* the length
/// prefix) into an envelope.
///
/// # Errors
///
/// Returns a message for non-UTF-8 or shape-mismatched payloads.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text =
        std::str::from_utf8(payload).map_err(|e| format!("frame payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Incremental frame deframer: feed it bytes in whatever chunks the
/// socket hands out (a frame may straddle any number of reads — same
/// contract as the UART decoder on the target side), take complete
/// payloads out as they materialize.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Takes the next complete frame payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// Returns a message when the peer announces a frame longer than
    /// [`MAX_FRAME_LEN`] — the stream is desynchronized and the
    /// connection should be dropped.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, String> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: a reply carrying a payload past
    /// [`MAX_FRAME_LEN`] must come back as [`FrameTooLarge`], not as a
    /// frame whose length prefix the decoder will reject (or, for
    /// payloads past `u32::MAX`, a silently truncated prefix that
    /// desynchronizes every later frame).
    #[test]
    fn oversized_envelope_is_an_error_not_a_bad_prefix() {
        let fits = ServerFrame::Error {
            seq: Some(1),
            message: "x".repeat(1024),
        };
        assert!(encode_frame(&fits).is_ok());

        let too_big = ServerFrame::Error {
            seq: Some(2),
            message: "x".repeat(MAX_FRAME_LEN + 1),
        };
        let err = encode_frame(&too_big).expect_err("must refuse to encode");
        assert!(err.payload_len > MAX_FRAME_LEN);
        let shown = err.to_string();
        assert!(shown.contains("exceeds"), "unhelpful error: {shown}");
    }

    /// The boundary itself is legal: a payload of exactly
    /// `MAX_FRAME_LEN` bytes round-trips through the decoder.
    #[test]
    fn frame_at_the_limit_round_trips() {
        // JSON overhead: {"type":"error","seq":3,"message":"..."} — pad
        // the message so the whole payload lands exactly on the limit.
        let probe = ServerFrame::Error {
            seq: Some(3),
            message: String::new(),
        };
        let overhead = serde_json::to_string(&probe).expect("serializes").len();
        let frame = ServerFrame::Error {
            seq: Some(3),
            message: "y".repeat(MAX_FRAME_LEN - overhead),
        };
        let bytes = encode_frame(&frame).expect("exactly at the limit encodes");
        assert_eq!(bytes.len(), 4 + MAX_FRAME_LEN);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        let payload = decoder
            .next_payload()
            .expect("length prefix is within bounds")
            .expect("complete");
        assert_eq!(payload.len(), MAX_FRAME_LEN);
    }
}
