//! Property tests on the expression language: well-typed expressions
//! always evaluate, evaluation matches the inferred type, and evaluation
//! is deterministic.

use gmdf_comdes::{BinOp, Expr, SignalType, SignalValue, UnOp};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Generates a well-typed expression of the requested type over variables
/// `b0..b1: bool`, `i0..i1: int`, `r0..r1: real`.
fn arb_expr(ty: SignalType, depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return match ty {
            SignalType::Bool => prop_oneof![
                any::<bool>().prop_map(Expr::Bool),
                (0..2u8).prop_map(|i| Expr::var(&format!("b{i}"))),
            ]
            .boxed(),
            SignalType::Int => prop_oneof![
                (-100i64..100).prop_map(Expr::Int),
                (0..2u8).prop_map(|i| Expr::var(&format!("i{i}"))),
            ]
            .boxed(),
            SignalType::Real => prop_oneof![
                (-100.0f64..100.0).prop_map(Expr::Real),
                (0..2u8).prop_map(|i| Expr::var(&format!("r{i}"))),
            ]
            .boxed(),
        };
    }
    let d = depth - 1;
    match ty {
        SignalType::Bool => prop_oneof![
            arb_expr(SignalType::Bool, 0),
            (arb_expr(SignalType::Bool, d), arb_expr(SignalType::Bool, d))
                .prop_map(|(a, b)| a.and(b)),
            (arb_expr(SignalType::Bool, d), arb_expr(SignalType::Bool, d))
                .prop_map(|(a, b)| a.or(b)),
            arb_expr(SignalType::Bool, d).prop_map(Expr::not),
            (arb_expr(SignalType::Real, d), arb_expr(SignalType::Real, d))
                .prop_map(|(a, b)| a.lt(b)),
            (arb_expr(SignalType::Int, d), arb_expr(SignalType::Int, d)).prop_map(|(a, b)| a.ge(b)),
            (arb_expr(SignalType::Int, d), arb_expr(SignalType::Real, d))
                .prop_map(|(a, b)| a.eq_(b)),
        ]
        .boxed(),
        SignalType::Int => prop_oneof![
            arb_expr(SignalType::Int, 0),
            (arb_expr(SignalType::Int, d), arb_expr(SignalType::Int, d))
                .prop_map(|(a, b)| a.add(b)),
            (arb_expr(SignalType::Int, d), arb_expr(SignalType::Int, d))
                .prop_map(|(a, b)| a.mul(b)),
            (arb_expr(SignalType::Int, d), arb_expr(SignalType::Int, d))
                .prop_map(|(a, b)| a.div(b)),
            (arb_expr(SignalType::Int, d), arb_expr(SignalType::Int, d))
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Rem, Box::new(a), Box::new(b)) }),
            arb_expr(SignalType::Int, d).prop_map(Expr::neg),
            arb_expr(SignalType::Real, d).prop_map(|e| Expr::ToInt(Box::new(e))),
            (
                arb_expr(SignalType::Bool, d),
                arb_expr(SignalType::Int, d),
                arb_expr(SignalType::Int, d)
            )
                .prop_map(|(c, t, e)| Expr::If(Box::new(c), Box::new(t), Box::new(e))),
        ]
        .boxed(),
        SignalType::Real => prop_oneof![
            arb_expr(SignalType::Real, 0),
            (arb_expr(SignalType::Real, d), arb_expr(SignalType::Real, d))
                .prop_map(|(a, b)| a.add(b)),
            (arb_expr(SignalType::Real, d), arb_expr(SignalType::Int, d))
                .prop_map(|(a, b)| a.mul(b)),
            (arb_expr(SignalType::Real, d), arb_expr(SignalType::Real, d))
                .prop_map(|(a, b)| a.div(b)),
            (arb_expr(SignalType::Real, d), arb_expr(SignalType::Real, d))
                .prop_map(|(a, b)| { Expr::Binary(BinOp::Min, Box::new(a), Box::new(b)) }),
            arb_expr(SignalType::Int, d).prop_map(|e| Expr::ToReal(Box::new(e))),
            arb_expr(SignalType::Real, d).prop_map(|e| Expr::Unary(UnOp::Abs, Box::new(e))),
            (
                arb_expr(SignalType::Bool, d),
                arb_expr(SignalType::Real, d),
                arb_expr(SignalType::Real, d)
            )
                .prop_map(|(c, t, e)| Expr::If(Box::new(c), Box::new(t), Box::new(e))),
        ]
        .boxed(),
    }
}

fn env_types() -> BTreeMap<String, SignalType> {
    let mut m = BTreeMap::new();
    for i in 0..2 {
        m.insert(format!("b{i}"), SignalType::Bool);
        m.insert(format!("i{i}"), SignalType::Int);
        m.insert(format!("r{i}"), SignalType::Real);
    }
    m
}

fn arb_env() -> impl Strategy<Value = BTreeMap<String, SignalValue>> {
    (
        proptest::collection::vec(any::<bool>(), 2),
        proptest::collection::vec(-1000i64..1000, 2),
        proptest::collection::vec(-1000.0f64..1000.0, 2),
    )
        .prop_map(|(bs, is, rs)| {
            let mut m = BTreeMap::new();
            for (i, b) in bs.into_iter().enumerate() {
                m.insert(format!("b{i}"), SignalValue::Bool(b));
            }
            for (i, v) in is.into_iter().enumerate() {
                m.insert(format!("i{i}"), SignalValue::Int(v));
            }
            for (i, v) in rs.into_iter().enumerate() {
                m.insert(format!("r{i}"), SignalValue::Real(v));
            }
            m
        })
}

fn arb_typed() -> impl Strategy<Value = (SignalType, Expr)> {
    prop_oneof![
        Just(SignalType::Bool),
        Just(SignalType::Int),
        Just(SignalType::Real),
    ]
    .prop_flat_map(|ty| arb_expr(ty, 4).prop_map(move |e| (ty, e)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Well-typed expressions type-check to the requested type, always
    /// evaluate, and the runtime type matches the static one (modulo
    /// int→real widening in mixed arms, which infer_type also reports).
    #[test]
    fn typing_soundness((ty, expr) in arb_typed(), env in arb_env()) {
        let inferred = expr.infer_type(&env_types()).expect("well-typed by construction");
        // The generator requests `ty` but mixed if-arms may widen.
        prop_assert!(
            inferred == ty || (ty == SignalType::Int && inferred == SignalType::Real)
                || (ty == SignalType::Real && inferred == SignalType::Real)
        );
        let v = expr.eval(&env).expect("well-typed expressions evaluate");
        prop_assert_eq!(v.signal_type(), inferred, "runtime type = static type");
    }

    /// Evaluation is deterministic (same env → bit-identical result).
    #[test]
    fn evaluation_is_deterministic((_, expr) in arb_typed(), env in arb_env()) {
        let a = expr.eval(&env).unwrap();
        let b = expr.eval(&env).unwrap();
        prop_assert_eq!(a.to_raw(), b.to_raw());
    }

    /// Free variables are exactly the variables evaluation needs: binding
    /// only `free_vars()` always suffices.
    #[test]
    fn free_vars_are_sufficient((_, expr) in arb_typed(), env in arb_env()) {
        let mut minimal = BTreeMap::new();
        for v in expr.free_vars() {
            minimal.insert(v.clone(), env[&v]);
        }
        let full = expr.eval(&env).unwrap();
        let min = expr.eval(&minimal).unwrap();
        prop_assert_eq!(full.to_raw(), min.to_raw());
    }
}
