//! Serde round trips for the COMDES model types themselves (systems are
//! data: they travel between the modeling tool, the code generator and
//! the debugger as documents).

use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, ModalBlock, Mode, NetworkBuilder, NodeSpec, Port,
    SignalValue, System, Timing, VAR_TIME_IN_STATE,
};

fn heterogeneous_system() -> System {
    let fsm = FsmBuilder::new()
        .input(Port::real("err"))
        .output(Port::int("mode"))
        .state("Coarse", |s| s.during("mode", Expr::Int(0)))
        .state("Fine", |s| s.during("mode", Expr::Int(1)))
        .transition(
            "Coarse",
            "Fine",
            Expr::Unary(gmdf_comdes::UnOp::Abs, Box::new(Expr::var("err"))).lt(Expr::Real(1.0)),
        )
        .transition(
            "Fine",
            "Coarse",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.5)),
        )
        .build()
        .unwrap();
    let mode_net = |k: f64| {
        NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k })
            .block(
                "z",
                BasicOp::UnitDelay {
                    initial: SignalValue::Real(0.0),
                },
            )
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "z.x")
            .unwrap()
            .connect("z.y", "y")
            .unwrap()
            .build()
            .unwrap()
    };
    let modal = ModalBlock {
        data_inputs: vec![Port::real("x")],
        outputs: vec![Port::real("y")],
        modes: vec![
            Mode {
                name: "coarse".into(),
                network: mode_net(4.0),
            },
            Mode {
                name: "fine".into(),
                network: mode_net(0.5),
            },
        ],
    };
    let net = NetworkBuilder::new()
        .input(Port::real("err"))
        .output(Port::real("u"))
        .state_machine("sup", fsm)
        .modal("ctl", modal)
        .connect("err", "sup.err")
        .unwrap()
        .connect("sup.mode", "ctl.mode")
        .unwrap()
        .connect("err", "ctl.x")
        .unwrap()
        .connect("ctl.y", "u")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Ctl", net)
        .input("err", "error")
        .output("u", "drive")
        .timing(Timing::periodic(10_000_000, 3))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("hetero").with_node(node)
}

#[test]
fn system_json_round_trip_is_identity() {
    let system = heterogeneous_system();
    let json = serde_json::to_string_pretty(&system).unwrap();
    let back: System = serde_json::from_str(&json).unwrap();
    assert_eq!(system, back);
    assert!(back.check().is_ok());
}

#[test]
fn round_tripped_system_compiles_and_behaves_identically() {
    let system = heterogeneous_system();
    let json = serde_json::to_string(&system).unwrap();
    let back: System = serde_json::from_str(&json).unwrap();

    // Both interpret identically.
    let run = |sys: &System| {
        let mut interp = gmdf_comdes::Interpreter::new(sys).unwrap();
        interp.add_stimulus(0, "error", SignalValue::Real(3.0));
        interp.add_stimulus(50_000_000, "error", SignalValue::Real(0.25));
        interp.run_until(200_000_000).unwrap();
        interp.trace().to_vec()
    };
    assert_eq!(run(&system), run(&back));
}

#[test]
fn expression_json_survives_deep_nesting() {
    // serde_json's default recursion limit (128 levels) caps practical
    // expression depth around ~30 binary-op chains; guards and actions in
    // real models sit far below that.
    let mut e = Expr::var("x");
    for i in 0..25 {
        e = e.add(Expr::Real(i as f64)).mul(Expr::var("x"));
    }
    let json = serde_json::to_string(&e).unwrap();
    let back: Expr = serde_json::from_str(&json).unwrap();
    assert_eq!(e, back);
}
