//! Actors: the unit of concurrency and timing in COMDES.
//!
//! "An application is modeled as a network of distributed embedded actors
//! that communicate by exchanging labeled messages (signals) using
//! non-blocking state-message communication" (paper §III). Each actor wraps
//! a component [`Network`] in a periodic task under *Distributed Timed
//! Multitasking*: inputs are latched at task release and outputs published
//! exactly at the deadline instant, eliminating I/O jitter.

use crate::error::ComdesError;
use crate::network::Network;
use crate::signal::Port;
use serde::{Deserialize, Serialize};

/// Timing parameters of an actor's periodic task (all in nanoseconds,
/// relative to the node's time base).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Release period.
    pub period_ns: u64,
    /// Offset of the first release.
    pub offset_ns: u64,
    /// Relative deadline (output latch instant), `0 < deadline ≤ period`.
    pub deadline_ns: u64,
    /// Fixed priority; **lower value = higher priority**.
    pub priority: u8,
}

impl Timing {
    /// Convenience constructor with `deadline = period`, `offset = 0`.
    pub fn periodic(period_ns: u64, priority: u8) -> Self {
        Timing {
            period_ns,
            offset_ns: 0,
            deadline_ns: period_ns,
            priority,
        }
    }

    /// The actor's sampling interval in seconds — the `dt` every stateful
    /// block and guard sees. Computed identically by the interpreter and
    /// the code generator.
    pub fn dt_seconds(&self) -> f64 {
        self.period_ns as f64 / 1e9
    }

    /// Checks `period > 0` and `0 < deadline ≤ period`.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::BadTiming`] describing the violation.
    pub fn check(&self) -> Result<(), ComdesError> {
        if self.period_ns == 0 {
            return Err(ComdesError::BadTiming("period must be > 0".into()));
        }
        if self.deadline_ns == 0 || self.deadline_ns > self.period_ns {
            return Err(ComdesError::BadTiming(format!(
                "deadline {} must be in (0, period {}]",
                self.deadline_ns, self.period_ns
            )));
        }
        Ok(())
    }
}

/// Binding of an actor input port to a signal label on the node's board.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorInput {
    /// The port (must match a network input of the same name and type).
    pub port: Port,
    /// Signal label read (latched) at task release. Labels are written by
    /// other actors' outputs or by the environment (sensors).
    pub label: String,
}

/// Binding of an actor output port to a signal label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorOutput {
    /// The port (must match a network output of the same name and type).
    pub port: Port,
    /// Signal label published at the deadline instant.
    pub label: String,
}

/// A COMDES actor: a named, periodically scheduled component network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// Actor name (unique within the system).
    pub name: String,
    /// Input signal bindings.
    pub inputs: Vec<ActorInput>,
    /// Output signal bindings.
    pub outputs: Vec<ActorOutput>,
    /// The component network computing outputs from inputs.
    pub network: Network,
    /// Task timing.
    pub timing: Timing,
}

impl Actor {
    /// Validates the actor: name, timing, network, and that the signal
    /// bindings exactly cover the network's exported ports (same order,
    /// name and type).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), ComdesError> {
        if !gmdf_metamodel::is_valid_name(&self.name) {
            return Err(ComdesError::InvalidName(self.name.clone()));
        }
        self.timing.check()?;
        self.network.check()?;
        let in_ports: Vec<&Port> = self.inputs.iter().map(|i| &i.port).collect();
        let net_in: Vec<&Port> = self.network.inputs.iter().collect();
        if in_ports != net_in {
            return Err(ComdesError::BadSystem(format!(
                "actor `{}` input bindings do not match its network inputs",
                self.name
            )));
        }
        let out_ports: Vec<&Port> = self.outputs.iter().map(|o| &o.port).collect();
        let net_out: Vec<&Port> = self.network.outputs.iter().collect();
        if out_ports != net_out {
            return Err(ComdesError::BadSystem(format!(
                "actor `{}` output bindings do not match its network outputs",
                self.name
            )));
        }
        for (i, inp) in self.inputs.iter().enumerate() {
            if self.inputs[..i]
                .iter()
                .any(|p| p.port.name == inp.port.name)
            {
                return Err(ComdesError::DuplicateName(inp.port.name.clone()));
            }
        }
        for (i, out) in self.outputs.iter().enumerate() {
            if self.outputs[..i]
                .iter()
                .any(|p| p.port.name == out.port.name)
            {
                return Err(ComdesError::DuplicateName(out.port.name.clone()));
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`Actor`].
///
/// ```
/// use gmdf_comdes::{ActorBuilder, NetworkBuilder, BasicOp, Port, Timing};
///
/// # fn main() -> Result<(), gmdf_comdes::ComdesError> {
/// let net = NetworkBuilder::new()
///     .input(Port::real("t"))
///     .output(Port::real("u"))
///     .block("g", BasicOp::Gain { k: -1.0 })
///     .connect("t", "g.x")?
///     .connect("g.y", "u")?
///     .build()?;
/// let actor = ActorBuilder::new("Controller", net)
///     .input("t", "temperature")
///     .output("u", "valve")
///     .timing(Timing::periodic(10_000_000, 1))
///     .build()?;
/// assert_eq!(actor.inputs[0].label, "temperature");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ActorBuilder {
    name: String,
    network: Network,
    inputs: Vec<(String, String)>,
    outputs: Vec<(String, String)>,
    timing: Timing,
}

impl ActorBuilder {
    /// Starts building an actor around `network` with default timing
    /// (10 ms period, priority 10).
    pub fn new(name: &str, network: Network) -> Self {
        ActorBuilder {
            name: name.to_owned(),
            network,
            inputs: Vec::new(),
            outputs: Vec::new(),
            timing: Timing::periodic(10_000_000, 10),
        }
    }

    /// Binds network input port `port` to signal `label`.
    pub fn input(mut self, port: &str, label: &str) -> Self {
        self.inputs.push((port.to_owned(), label.to_owned()));
        self
    }

    /// Binds network output port `port` to signal `label`.
    pub fn output(mut self, port: &str, label: &str) -> Self {
        self.outputs.push((port.to_owned(), label.to_owned()));
        self
    }

    /// Sets the task timing.
    pub fn timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Resolves port names and validates the actor.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::Unknown`] for unbound port names and any
    /// error from [`Actor::check`]. Every network port must be bound.
    pub fn build(self) -> Result<Actor, ComdesError> {
        let find = |ports: &[Port], name: &str| -> Result<Port, ComdesError> {
            ports
                .iter()
                .find(|p| p.name == name)
                .cloned()
                .ok_or_else(|| ComdesError::Unknown(format!("port `{name}`")))
        };
        let mut inputs = Vec::new();
        for p in &self.network.inputs {
            let label = self
                .inputs
                .iter()
                .find(|(port, _)| *port == p.name)
                .map(|(_, l)| l.clone())
                .ok_or_else(|| {
                    ComdesError::BadSystem(format!(
                        "actor `{}`: network input `{}` is not bound to a signal",
                        self.name, p.name
                    ))
                })?;
            inputs.push(ActorInput {
                port: find(&self.network.inputs, &p.name)?,
                label,
            });
        }
        let mut outputs = Vec::new();
        for p in &self.network.outputs {
            let label = self
                .outputs
                .iter()
                .find(|(port, _)| *port == p.name)
                .map(|(_, l)| l.clone())
                .ok_or_else(|| {
                    ComdesError::BadSystem(format!(
                        "actor `{}`: network output `{}` is not bound to a signal",
                        self.name, p.name
                    ))
                })?;
            outputs.push(ActorOutput {
                port: find(&self.network.outputs, &p.name)?,
                label,
            });
        }
        let actor = Actor {
            name: self.name,
            inputs,
            outputs,
            network: self.network,
            timing: self.timing,
        };
        actor.check()?;
        Ok(actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicOp;
    use crate::network::NetworkBuilder;

    fn net() -> Network {
        NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 2.0 })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_binds_ports() {
        let a = ActorBuilder::new("A", net())
            .input("x", "sensor")
            .output("y", "act")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        assert_eq!(a.inputs[0].label, "sensor");
        assert_eq!(a.outputs[0].port.name, "y");
        assert!((a.timing.dt_seconds() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn unbound_port_rejected() {
        let err = ActorBuilder::new("A", net())
            .output("y", "act")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("not bound"));
    }

    #[test]
    fn timing_validation() {
        assert!(Timing::periodic(0, 1).check().is_err());
        assert!(Timing {
            period_ns: 10,
            offset_ns: 0,
            deadline_ns: 0,
            priority: 1
        }
        .check()
        .is_err());
        assert!(Timing {
            period_ns: 10,
            offset_ns: 0,
            deadline_ns: 11,
            priority: 1
        }
        .check()
        .is_err());
        assert!(Timing {
            period_ns: 10,
            offset_ns: 5,
            deadline_ns: 10,
            priority: 1
        }
        .check()
        .is_ok());
    }

    #[test]
    fn bad_actor_name_rejected() {
        let err = ActorBuilder::new("9bad", net())
            .input("x", "s")
            .output("y", "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, ComdesError::InvalidName(_)));
    }
}
