//! Systems: distributed deployments of actors onto nodes.
//!
//! A COMDES application is "a network of distributed embedded actors"
//! (paper §III). A [`System`] assigns actors to [`NodeSpec`]s (embedded
//! controllers); actors exchange labeled signals through state-message
//! communication — each label has exactly one producer and any number of
//! consumers, locally or across the network.

use crate::actor::Actor;
use crate::error::ComdesError;
use crate::signal::SignalType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One embedded controller in the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node name (unique within the system).
    pub name: String,
    /// CPU clock frequency in Hz (converts instruction cycles to time).
    pub cpu_hz: u64,
    /// Actors deployed on this node.
    pub actors: Vec<Actor>,
}

impl NodeSpec {
    /// Creates a node with the given clock.
    pub fn new(name: &str, cpu_hz: u64) -> Self {
        NodeSpec {
            name: name.to_owned(),
            cpu_hz,
            actors: Vec::new(),
        }
    }
}

/// Where a signal label gets its value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignalOrigin {
    /// Produced by an actor output (node index, actor index).
    Actor {
        /// Producing node index.
        node: usize,
        /// Producing actor index within the node.
        actor: usize,
    },
    /// Not produced by any actor — an environment input (sensor); the
    /// simulation harness writes it.
    Environment,
}

/// A fully specified distributed application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    /// System name.
    pub name: String,
    /// Nodes with their deployed actors.
    pub nodes: Vec<NodeSpec>,
}

impl System {
    /// Creates an empty system.
    pub fn new(name: &str) -> Self {
        System {
            name: name.to_owned(),
            nodes: Vec::new(),
        }
    }

    /// Adds a node and returns `self` for chaining.
    pub fn with_node(mut self, node: NodeSpec) -> Self {
        self.nodes.push(node);
        self
    }

    /// All actors with their `(node_index, actor_index)` coordinates.
    pub fn actors(&self) -> impl Iterator<Item = ((usize, usize), &Actor)> {
        self.nodes.iter().enumerate().flat_map(|(ni, n)| {
            n.actors
                .iter()
                .enumerate()
                .map(move |(ai, a)| ((ni, ai), a))
        })
    }

    /// Finds an actor by name.
    pub fn actor_by_name(&self, name: &str) -> Option<((usize, usize), &Actor)> {
        self.actors().find(|(_, a)| a.name == name)
    }

    /// The signal map: label → (type, origin). Labels consumed but never
    /// produced are [`SignalOrigin::Environment`] inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::BadSystem`] if two actors produce the same
    /// label or a label is used with conflicting types.
    pub fn signal_map(&self) -> Result<BTreeMap<String, (SignalType, SignalOrigin)>, ComdesError> {
        let mut map: BTreeMap<String, (SignalType, SignalOrigin)> = BTreeMap::new();
        for ((ni, ai), actor) in self.actors() {
            for out in &actor.outputs {
                if let Some((_, origin)) = map.get(&out.label) {
                    if *origin != SignalOrigin::Environment {
                        return Err(ComdesError::BadSystem(format!(
                            "signal `{}` has two producers",
                            out.label
                        )));
                    }
                }
                if let Some((ty, _)) = map.get(&out.label) {
                    if *ty != out.port.ty {
                        return Err(ComdesError::BadSystem(format!(
                            "signal `{}` used with types {} and {}",
                            out.label, ty, out.port.ty
                        )));
                    }
                }
                map.insert(
                    out.label.clone(),
                    (
                        out.port.ty,
                        SignalOrigin::Actor {
                            node: ni,
                            actor: ai,
                        },
                    ),
                );
            }
        }
        for (_, actor) in self.actors() {
            for inp in &actor.inputs {
                match map.get(&inp.label) {
                    Some((ty, _)) if *ty != inp.port.ty => {
                        return Err(ComdesError::BadSystem(format!(
                            "signal `{}` used with types {} and {}",
                            inp.label, ty, inp.port.ty
                        )));
                    }
                    Some(_) => {}
                    None => {
                        map.insert(inp.label.clone(), (inp.port.ty, SignalOrigin::Environment));
                    }
                }
            }
        }
        Ok(map)
    }

    /// Labels written by the environment (sensor inputs).
    pub fn environment_signals(&self) -> Vec<String> {
        self.signal_map()
            .map(|m| {
                m.into_iter()
                    .filter(|(_, (_, o))| *o == SignalOrigin::Environment)
                    .map(|(l, _)| l)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Validates the whole system: node/actor names, per-actor checks and
    /// the signal map.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), ComdesError> {
        if !gmdf_metamodel::is_valid_name(&self.name) {
            return Err(ComdesError::InvalidName(self.name.clone()));
        }
        if self.nodes.is_empty() {
            return Err(ComdesError::BadSystem("system has no nodes".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !gmdf_metamodel::is_valid_name(&n.name) {
                return Err(ComdesError::InvalidName(n.name.clone()));
            }
            if self.nodes[..i].iter().any(|p| p.name == n.name) {
                return Err(ComdesError::DuplicateName(n.name.clone()));
            }
            if n.cpu_hz == 0 {
                return Err(ComdesError::BadSystem(format!(
                    "node `{}` has zero clock frequency",
                    n.name
                )));
            }
        }
        let mut seen = Vec::new();
        for (_, a) in self.actors() {
            if seen.contains(&&a.name) {
                return Err(ComdesError::DuplicateName(a.name.clone()));
            }
            seen.push(&a.name);
            a.check()?;
        }
        self.signal_map()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorBuilder, Timing};
    use crate::block::BasicOp;
    use crate::network::NetworkBuilder;
    use crate::signal::Port;

    fn gain_actor(name: &str, input: &str, output: &str) -> Actor {
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 2.0 })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap();
        ActorBuilder::new(name, net)
            .input("x", input)
            .output("y", output)
            .timing(Timing::periodic(10_000_000, 1))
            .build()
            .unwrap()
    }

    fn two_node_system() -> System {
        let mut n0 = NodeSpec::new("node0", 50_000_000);
        n0.actors.push(gain_actor("Sensor", "raw", "filtered"));
        let mut n1 = NodeSpec::new("node1", 50_000_000);
        n1.actors.push(gain_actor("Control", "filtered", "u"));
        System::new("plant").with_node(n0).with_node(n1)
    }

    #[test]
    fn valid_system_checks() {
        let sys = two_node_system();
        assert!(sys.check().is_ok());
        let map = sys.signal_map().unwrap();
        assert_eq!(map["raw"], (SignalType::Real, SignalOrigin::Environment));
        assert_eq!(
            map["filtered"],
            (SignalType::Real, SignalOrigin::Actor { node: 0, actor: 0 })
        );
        assert_eq!(sys.environment_signals(), vec!["raw".to_owned()]);
    }

    #[test]
    fn duplicate_producer_rejected() {
        let mut sys = two_node_system();
        sys.nodes[1]
            .actors
            .push(gain_actor("Rogue", "raw", "filtered"));
        assert!(matches!(
            sys.check().unwrap_err(),
            ComdesError::BadSystem(_)
        ));
    }

    #[test]
    fn type_conflict_rejected() {
        let mut sys = two_node_system();
        // Consumer of `filtered` as bool.
        let net = NetworkBuilder::new()
            .input(Port::boolean("x"))
            .output(Port::boolean("y"))
            .block("n", BasicOp::Not)
            .connect("x", "n.x")
            .unwrap()
            .connect("n.q", "y")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("BoolReader", net)
            .input("x", "filtered")
            .output("y", "alarm")
            .build()
            .unwrap();
        sys.nodes[0].actors.push(actor);
        assert!(matches!(
            sys.check().unwrap_err(),
            ComdesError::BadSystem(_)
        ));
    }

    #[test]
    fn duplicate_actor_name_rejected() {
        let mut sys = two_node_system();
        sys.nodes[0].actors.push(gain_actor("Control", "a", "b"));
        assert!(matches!(
            sys.check().unwrap_err(),
            ComdesError::DuplicateName(_)
        ));
    }

    #[test]
    fn actor_lookup() {
        let sys = two_node_system();
        let ((ni, ai), a) = sys.actor_by_name("Control").unwrap();
        assert_eq!((ni, ai), (1, 0));
        assert_eq!(a.name, "Control");
        assert!(sys.actor_by_name("Ghost").is_none());
    }

    #[test]
    fn empty_system_rejected() {
        assert!(System::new("empty").check().is_err());
    }

    #[test]
    fn zero_clock_rejected() {
        let sys = System::new("s").with_node(NodeSpec::new("n", 0));
        assert!(sys.check().is_err());
    }
}
