//! FNV-1a hashing for hot paths keyed by short strings.
//!
//! `std`'s default SipHash defends against adversarial key collisions,
//! which matters for untrusted input but costs ~5× on the short label
//! and node-name keys the analysis passes hash by the hundred per
//! session registration. Model content is the user's own input, so the
//! collision-DoS threat model does not apply there.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FNV-1a streaming hasher.
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(OFFSET_BASIS)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into std collections.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// `HashSet` keyed with FNV-1a.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut set = FnvHashSet::default();
        for i in 0..1000 {
            set.insert(format!("label_{i}"));
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains("label_7"));
        assert!(!set.contains("label_1000"));
    }

    #[test]
    fn streaming_matches_one_shot() {
        use std::hash::Hash;
        let mut a = FnvHasher::default();
        "board/temp".hash(&mut a);
        let mut b = FnvHasher::default();
        "board/temp".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
