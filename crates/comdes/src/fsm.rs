//! State-machine function blocks.
//!
//! "The behaviour of stateful components is usually described with state
//! machine models (state transition graphs), which can be ultimately
//! represented by state transition functions" (paper §III). The state
//! machine block is also GMDF's flagship animation target: the debugger
//! highlights the active state as the embedded code runs.
//!
//! ## Execution semantics (one synchronous step)
//!
//! 1. `time_in_state = ticks · dt` is bound, along with every input port
//!    and `dt`, into the guard environment.
//! 2. The first outgoing transition of the current state (in declaration
//!    order — declaration order *is* priority) whose guard evaluates true
//!    fires: the current state changes, `ticks` resets to 0,
//!    `time_in_state` rebinds to 0, and the new state's **entry actions**
//!    run. At most one transition fires per step.
//! 3. If no transition fires, `ticks` increments.
//! 4. The (possibly new) current state's **during actions** run.
//! 5. Outputs are the output latches; actions write latches, and latches
//!    hold their value until overwritten (initialized to type zero).
//!
//! State layout on the target: `state: Int(initial)`, `ticks: Int(0)`,
//! then one latch cell per output port.

use crate::error::ComdesError;
use crate::expr::Expr;
use crate::signal::{Port, SignalValue};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Reserved variable name: seconds spent in the current state.
pub const VAR_TIME_IN_STATE: &str = "time_in_state";
/// Reserved variable name: the actor period in seconds.
pub const VAR_DT: &str = "dt";

/// An output assignment performed by an entry or during action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// Output port name to write.
    pub output: String,
    /// Expression over input ports, `time_in_state` and `dt`.
    pub expr: Expr,
}

impl Assign {
    /// Creates an assignment.
    pub fn new(output: &str, expr: Expr) -> Self {
        Assign {
            output: output.to_owned(),
            expr,
        }
    }
}

/// One state of a state-machine block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// State name (unique within the machine).
    pub name: String,
    /// Actions run once when the state is entered.
    pub entry: Vec<Assign>,
    /// Actions run on every step while the state is current.
    pub during: Vec<Assign>,
}

/// A guarded transition between two states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state index.
    pub from: usize,
    /// Target state index.
    pub to: usize,
    /// Boolean guard over inputs, `time_in_state` and `dt`.
    pub guard: Expr,
}

/// A state-machine function block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachineBlock {
    /// Input ports (guard/action variables).
    pub inputs: Vec<Port>,
    /// Output ports (latched).
    pub outputs: Vec<Port>,
    /// States; index 0 is not special — see `initial`.
    pub states: Vec<State>,
    /// Transitions; declaration order among same-source transitions is the
    /// firing priority.
    pub transitions: Vec<Transition>,
    /// Index of the initial state.
    pub initial: usize,
}

/// Mutable runtime state of one state-machine block instance.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmState {
    /// Current state index.
    pub current: usize,
    /// Completed steps since the current state was entered.
    pub ticks: i64,
    /// Output latches, positionally matching the block's output ports.
    pub latches: Vec<SignalValue>,
}

/// Result of one FSM step, reported so the instrumentation layer can emit
/// state-entry commands exactly when the generated code would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmStepInfo {
    /// `Some((from, to))` if a transition fired this step.
    pub fired: Option<(usize, usize)>,
}

impl StateMachineBlock {
    /// Fresh runtime state (initial state, zeroed latches).
    pub fn initial_state(&self) -> FsmState {
        FsmState {
            current: self.initial,
            ticks: 0,
            latches: self.outputs.iter().map(|p| p.ty.zero()).collect(),
        }
    }

    /// Builds the guard/action environment for the current step.
    fn env(
        &self,
        inputs: &[SignalValue],
        time_in_state: f64,
        dt: f64,
    ) -> BTreeMap<String, SignalValue> {
        let mut env: BTreeMap<String, SignalValue> = self
            .inputs
            .iter()
            .zip(inputs.iter())
            .map(|(p, v)| (p.name.clone(), *v))
            .collect();
        env.insert(VAR_TIME_IN_STATE.to_owned(), time_in_state.into());
        env.insert(VAR_DT.to_owned(), dt.into());
        env
    }

    fn run_assigns(
        &self,
        assigns: &[Assign],
        env: &BTreeMap<String, SignalValue>,
        latches: &mut [SignalValue],
    ) -> Result<(), ComdesError> {
        for a in assigns {
            let idx = self
                .outputs
                .iter()
                .position(|p| p.name == a.output)
                .ok_or_else(|| ComdesError::Unknown(format!("output `{}`", a.output)))?;
            let v = a.expr.eval(env)?;
            latches[idx] = crate::block::coerce(v, self.outputs[idx].ty);
        }
        Ok(())
    }

    /// Executes one synchronous step (see module docs for the exact
    /// ordering) and returns the outputs plus transition info.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::Eval`] if a guard or action fails to evaluate
    /// (unbound variable, type misuse) — the validator rules this out for
    /// checked machines.
    pub fn step(
        &self,
        state: &mut FsmState,
        inputs: &[SignalValue],
        dt: f64,
    ) -> Result<(Vec<SignalValue>, FsmStepInfo), ComdesError> {
        let tis = state.ticks as f64 * dt;
        let mut env = self.env(inputs, tis, dt);
        let from = state.current;
        let mut fired = None;
        for t in self.transitions.iter().filter(|t| t.from == from) {
            let g =
                t.guard.eval(&env)?.as_bool().ok_or_else(|| {
                    ComdesError::Eval(format!("guard `{}` is not boolean", t.guard))
                })?;
            if g {
                fired = Some((from, t.to));
                state.current = t.to;
                state.ticks = 0;
                env.insert(VAR_TIME_IN_STATE.to_owned(), 0.0.into());
                let entry = self.states[t.to].entry.clone();
                self.run_assigns(&entry, &env, &mut state.latches)?;
                break;
            }
        }
        if fired.is_none() {
            state.ticks += 1;
        }
        let during = self.states[state.current].during.clone();
        self.run_assigns(&during, &env, &mut state.latches)?;
        Ok((state.latches.clone(), FsmStepInfo { fired }))
    }

    /// Index of a state by name.
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s.name == name)
    }

    /// Structural well-formedness: nonempty, valid initial index, in-range
    /// transition endpoints, unique state names, boolean guards, known
    /// action targets.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::BadStateMachine`] or
    /// [`ComdesError::TypeError`] describing the first problem found.
    pub fn check(&self) -> Result<(), ComdesError> {
        if self.states.is_empty() {
            return Err(ComdesError::BadStateMachine("no states".into()));
        }
        if self.initial >= self.states.len() {
            return Err(ComdesError::BadStateMachine(format!(
                "initial state index {} out of range",
                self.initial
            )));
        }
        for (i, s) in self.states.iter().enumerate() {
            if self.states[..i].iter().any(|p| p.name == s.name) {
                return Err(ComdesError::DuplicateName(s.name.clone()));
            }
        }
        let mut tenv: BTreeMap<String, crate::signal::SignalType> =
            self.inputs.iter().map(|p| (p.name.clone(), p.ty)).collect();
        tenv.insert(
            VAR_TIME_IN_STATE.to_owned(),
            crate::signal::SignalType::Real,
        );
        tenv.insert(VAR_DT.to_owned(), crate::signal::SignalType::Real);
        for t in &self.transitions {
            if t.from >= self.states.len() || t.to >= self.states.len() {
                return Err(ComdesError::BadStateMachine(format!(
                    "transition {} -> {} out of range",
                    t.from, t.to
                )));
            }
            let ty = t.guard.infer_type(&tenv)?;
            if ty != crate::signal::SignalType::Bool {
                return Err(ComdesError::TypeError(format!(
                    "guard `{}` has type {ty}, expected bool",
                    t.guard
                )));
            }
        }
        for s in &self.states {
            for a in s.entry.iter().chain(s.during.iter()) {
                let port = self
                    .outputs
                    .iter()
                    .find(|p| p.name == a.output)
                    .ok_or_else(|| ComdesError::Unknown(format!("output `{}`", a.output)))?;
                let ty = a.expr.infer_type(&tenv)?;
                let ok = ty == port.ty
                    || (ty == crate::signal::SignalType::Int
                        && port.ty == crate::signal::SignalType::Real);
                if !ok {
                    return Err(ComdesError::TypeError(format!(
                        "action on `{}` has type {ty}, port is {}",
                        a.output, port.ty
                    )));
                }
            }
        }
        Ok(())
    }

    /// States with no incoming transition that are not initial — usually a
    /// modeling mistake; surfaced as a warning by the validator.
    pub fn unreachable_states(&self) -> Vec<&str> {
        let mut reachable = vec![false; self.states.len()];
        reachable[self.initial] = true;
        // Fixed-point over the transition graph.
        loop {
            let mut changed = false;
            for t in &self.transitions {
                if reachable[t.from] && !reachable[t.to] {
                    reachable[t.to] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.states
            .iter()
            .enumerate()
            .filter(|&(i, _)| !reachable[i])
            .map(|(_, s)| s.name.as_str())
            .collect()
    }
}

/// Fluent builder for [`StateMachineBlock`].
///
/// ```
/// use gmdf_comdes::{FsmBuilder, Expr, Port};
///
/// # fn main() -> Result<(), gmdf_comdes::ComdesError> {
/// let fsm = FsmBuilder::new()
///     .input(Port::boolean("button"))
///     .output(Port::boolean("lamp"))
///     .state("Off", |s| s.during("lamp", Expr::Bool(false)))
///     .state("On", |s| s.during("lamp", Expr::Bool(true)))
///     .transition("Off", "On", Expr::var("button"))
///     .transition("On", "Off", Expr::var("button").not())
///     .initial("Off")
///     .build()?;
/// assert_eq!(fsm.states.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FsmBuilder {
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    states: Vec<State>,
    transitions: Vec<(String, String, Expr)>,
    initial: Option<String>,
}

/// Builder scope for one state, used by [`FsmBuilder::state`].
#[derive(Debug, Default)]
pub struct StateBuilder {
    entry: Vec<Assign>,
    during: Vec<Assign>,
}

impl StateBuilder {
    /// Adds an entry action.
    pub fn entry(mut self, output: &str, expr: Expr) -> Self {
        self.entry.push(Assign::new(output, expr));
        self
    }

    /// Adds a during action.
    pub fn during(mut self, output: &str, expr: Expr) -> Self {
        self.during.push(Assign::new(output, expr));
        self
    }
}

impl FsmBuilder {
    /// Starts an empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an input port.
    pub fn input(mut self, port: Port) -> Self {
        self.inputs.push(port);
        self
    }

    /// Declares an output port.
    pub fn output(mut self, port: Port) -> Self {
        self.outputs.push(port);
        self
    }

    /// Declares a state; `f` configures its actions.
    pub fn state(mut self, name: &str, f: impl FnOnce(StateBuilder) -> StateBuilder) -> Self {
        let sb = f(StateBuilder::default());
        self.states.push(State {
            name: name.to_owned(),
            entry: sb.entry,
            during: sb.during,
        });
        self
    }

    /// Declares a plain state with no actions.
    pub fn plain_state(self, name: &str) -> Self {
        self.state(name, |s| s)
    }

    /// Declares a transition by state names; declaration order among
    /// same-source transitions is the firing priority.
    pub fn transition(mut self, from: &str, to: &str, guard: Expr) -> Self {
        self.transitions
            .push((from.to_owned(), to.to_owned(), guard));
        self
    }

    /// Names the initial state (defaults to the first declared state).
    pub fn initial(mut self, name: &str) -> Self {
        self.initial = Some(name.to_owned());
        self
    }

    /// Resolves names and checks the machine.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::Unknown`] for undeclared state names and any
    /// error from [`StateMachineBlock::check`].
    pub fn build(self) -> Result<StateMachineBlock, ComdesError> {
        let index = |n: &str| -> Result<usize, ComdesError> {
            self.states
                .iter()
                .position(|s| s.name == n)
                .ok_or_else(|| ComdesError::Unknown(format!("state `{n}`")))
        };
        let initial = match &self.initial {
            Some(n) => index(n)?,
            None => 0,
        };
        let transitions = self
            .transitions
            .iter()
            .map(|(f, t, g)| {
                Ok(Transition {
                    from: index(f)?,
                    to: index(t)?,
                    guard: g.clone(),
                })
            })
            .collect::<Result<Vec<_>, ComdesError>>()?;
        let block = StateMachineBlock {
            inputs: self.inputs,
            outputs: self.outputs,
            states: self.states,
            transitions,
            initial,
        };
        block.check()?;
        Ok(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalType;

    fn toggle() -> StateMachineBlock {
        FsmBuilder::new()
            .input(Port::boolean("btn"))
            .output(Port::boolean("lamp"))
            .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
            .state("On", |s| s.entry("lamp", Expr::Bool(true)))
            .transition("Off", "On", Expr::var("btn"))
            .transition("On", "Off", Expr::var("btn").not())
            .initial("Off")
            .build()
            .unwrap()
    }

    #[test]
    fn toggles_on_button() {
        let fsm = toggle();
        let mut st = fsm.initial_state();
        let (out, info) = fsm.step(&mut st, &[true.into()], 0.1).unwrap();
        assert_eq!(out[0], SignalValue::Bool(true));
        assert_eq!(info.fired, Some((0, 1)));
        let (out, info) = fsm.step(&mut st, &[true.into()], 0.1).unwrap();
        assert_eq!(out[0], SignalValue::Bool(true));
        assert_eq!(info.fired, None);
        let (out, info) = fsm.step(&mut st, &[false.into()], 0.1).unwrap();
        assert_eq!(out[0], SignalValue::Bool(false));
        assert_eq!(info.fired, Some((1, 0)));
    }

    #[test]
    fn at_most_one_transition_per_step() {
        // Off -> On -> Off chain with always-true guards must advance only
        // one hop per step.
        let fsm = FsmBuilder::new()
            .output(Port::int("s"))
            .state("A", |s| s.during("s", Expr::Int(0)))
            .state("B", |s| s.during("s", Expr::Int(1)))
            .state("C", |s| s.during("s", Expr::Int(2)))
            .transition("A", "B", Expr::Bool(true))
            .transition("B", "C", Expr::Bool(true))
            .build()
            .unwrap();
        let mut st = fsm.initial_state();
        let (out, _) = fsm.step(&mut st, &[], 0.1).unwrap();
        assert_eq!(out[0], SignalValue::Int(1));
        let (out, _) = fsm.step(&mut st, &[], 0.1).unwrap();
        assert_eq!(out[0], SignalValue::Int(2));
    }

    #[test]
    fn priority_is_declaration_order() {
        let fsm = FsmBuilder::new()
            .output(Port::int("s"))
            .plain_state("A")
            .state("B", |s| s.during("s", Expr::Int(1)))
            .state("C", |s| s.during("s", Expr::Int(2)))
            .transition("A", "B", Expr::Bool(true))
            .transition("A", "C", Expr::Bool(true))
            .build()
            .unwrap();
        let mut st = fsm.initial_state();
        fsm.step(&mut st, &[], 0.1).unwrap();
        assert_eq!(st.current, fsm.state_index("B").unwrap());
    }

    #[test]
    fn time_in_state_guard() {
        // Dwell in A for 3 ticks of dt=1.0 then move to B.
        let fsm = FsmBuilder::new()
            .output(Port::int("s"))
            .state("A", |s| s.during("s", Expr::Int(0)))
            .state("B", |s| s.during("s", Expr::Int(1)))
            .transition("A", "B", Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(3.0)))
            .build()
            .unwrap();
        let mut st = fsm.initial_state();
        let mut states = Vec::new();
        for _ in 0..5 {
            let (out, _) = fsm.step(&mut st, &[], 1.0).unwrap();
            states.push(out[0].as_int().unwrap());
        }
        // tis = 0,1,2,3 → fires on the 4th step.
        assert_eq!(states, [0, 0, 0, 1, 1]);
    }

    #[test]
    fn latches_hold_between_assignments() {
        let fsm = FsmBuilder::new()
            .output(Port::real("v"))
            .state("A", |s| s.entry("v", Expr::Real(5.0)))
            .plain_state("B")
            .transition("A", "B", Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(1.0)))
            .build()
            .unwrap();
        let mut st = fsm.initial_state();
        // No entry on initial state activation (entry runs on *transitions*),
        // so latch starts at type zero.
        let (out, _) = fsm.step(&mut st, &[], 1.0).unwrap();
        assert_eq!(out[0], SignalValue::Real(0.0));
        let (out, _) = fsm.step(&mut st, &[], 1.0).unwrap(); // fires A->B
        assert_eq!(out[0], SignalValue::Real(0.0)); // B has no actions; latch holds
    }

    #[test]
    fn check_rejects_bad_machines() {
        let no_states = StateMachineBlock {
            inputs: vec![],
            outputs: vec![],
            states: vec![],
            transitions: vec![],
            initial: 0,
        };
        assert!(no_states.check().is_err());

        let bad_guard = FsmBuilder::new()
            .plain_state("A")
            .transition("A", "A", Expr::Int(1))
            .build();
        assert!(matches!(bad_guard.unwrap_err(), ComdesError::TypeError(_)));

        let unknown_state = FsmBuilder::new()
            .plain_state("A")
            .transition("A", "Ghost", Expr::Bool(true))
            .build();
        assert!(matches!(
            unknown_state.unwrap_err(),
            ComdesError::Unknown(_)
        ));

        let dup = FsmBuilder::new().plain_state("A").plain_state("A").build();
        assert!(matches!(dup.unwrap_err(), ComdesError::DuplicateName(_)));
    }

    #[test]
    fn action_type_checked_against_port() {
        let bad = FsmBuilder::new()
            .output(Port::boolean("q"))
            .state("A", |s| s.during("q", Expr::Int(1)))
            .build();
        assert!(matches!(bad.unwrap_err(), ComdesError::TypeError(_)));
        // int → real widening is allowed
        let ok = FsmBuilder::new()
            .output(Port::real("v"))
            .state("A", |s| s.during("v", Expr::Int(1)))
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn unreachable_states_reported() {
        let fsm = FsmBuilder::new()
            .plain_state("A")
            .plain_state("B")
            .plain_state("Island")
            .transition("A", "B", Expr::Bool(true))
            .transition("B", "A", Expr::Bool(true))
            .build()
            .unwrap();
        assert_eq!(fsm.unreachable_states(), ["Island"]);
    }

    #[test]
    fn entry_sees_inputs_and_zero_time() {
        let fsm = FsmBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .plain_state("A")
            .state("B", |s| {
                s.entry("y", Expr::var("x").add(Expr::var(VAR_TIME_IN_STATE)))
            })
            .transition("A", "B", Expr::Bool(true))
            .build()
            .unwrap();
        let mut st = fsm.initial_state();
        let (out, _) = fsm.step(&mut st, &[4.5.into()], 0.25).unwrap();
        assert_eq!(out[0], SignalValue::Real(4.5)); // time_in_state rebound to 0
        assert_eq!(fsm.outputs[0].ty, SignalType::Real);
    }
}
