//! Basic (signal-processing) function blocks.
//!
//! COMDES actors "are configured from prefabricated executable components
//! such as basic (signal processing), composite, modal and state-machine
//! function blocks" (paper §III). This module is the prefabricated basic
//! block library; composite/modal blocks live in
//! [`network`](crate::network) and state-machine blocks in
//! [`fsm`](crate::fsm).
//!
//! Every op documents its **state layout** — named cells with initial
//! values — because the code generator allocates the same cells on the
//! target, and the JTAG watch list addresses them by name. The [`step`]
//! semantics here are the *reference semantics*; the compiled bytecode is
//! property-tested to produce bit-identical results.
//!
//! [`step`]: BasicOp::step

use crate::expr::Expr;
use crate::signal::{Port, SignalType, SignalValue};
use serde::{Deserialize, Serialize};

/// Comparison operator for the [`BasicOp::Compare`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
}

impl CmpOp {
    fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A prefabricated basic function block.
///
/// Port conventions: unary real blocks use `x → y`; binary real blocks use
/// `a, b → y`; boolean outputs are named `q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BasicOp {
    /// Constant source: `→ y` (type of the value). Stateless.
    Const(SignalValue),
    /// Proportional gain: `x → y = k·x`. Stateless.
    Gain {
        /// Multiplier.
        k: f64,
    },
    /// Constant offset: `x → y = x + c`. Stateless.
    Offset {
        /// Added constant.
        c: f64,
    },
    /// Addition: `a, b → y = a + b`. Stateless.
    Sum,
    /// Subtraction: `a, b → y = a − b`. Stateless.
    Sub,
    /// Multiplication: `a, b → y = a·b`. Stateless.
    Mul,
    /// Division: `a, b → y = a / b` (IEEE semantics). Stateless.
    Div,
    /// Minimum: `a, b → y`. Stateless.
    Min,
    /// Maximum: `a, b → y`. Stateless.
    Max,
    /// Absolute value: `x → y`. Stateless.
    Abs,
    /// Negation: `x → y = −x`. Stateless.
    Neg,
    /// Saturation: `x → y = min(max(x, lo), hi)`. Stateless.
    Limit {
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
    /// Deadband: `x → y = 0 if |x| < width else x`. Stateless.
    Deadband {
        /// Half-width of the dead zone.
        width: f64,
    },
    /// Two-point hysteresis: `x → q`. State: `q0: Bool(false)`.
    /// `q' = x ≥ high ? true : (x ≤ low ? false : q)`.
    Hysteresis {
        /// Switch-off threshold.
        low: f64,
        /// Switch-on threshold.
        high: f64,
    },
    /// Clamped integrator: `x → y`. State: `acc: Real(initial)`.
    /// `acc' = clamp(acc + gain·x·dt); y = acc'`.
    Integrator {
        /// Integration gain.
        gain: f64,
        /// Initial accumulator value.
        initial: f64,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
    /// Backward-difference derivative: `x → y = (x − prev)/dt`.
    /// State: `prev: Real(0)`.
    Derivative,
    /// First-order low-pass: `x → y`. State: `y0: Real(0)`.
    /// `y' = y + alpha·(x − y)`.
    LowPass {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Moving average over the last `window` samples: `x → y`.
    /// State: `window` ring cells (`Real(0)` each) + `idx: Int(0)` +
    /// `count: Int(0)`.
    MovingAverage {
        /// Window length (≥ 1; builders should keep this small, the code
        /// generator unrolls the summation).
        window: u8,
    },
    /// PID controller: `sp, pv → u`. State: `integral: Real(0)`,
    /// `prev_err: Real(0)`. `e = sp − pv; I' = I + e·dt;
    /// u = clamp(kp·e + ki·I' + kd·(e − prev_err)/dt); prev_err' = e`.
    Pid {
        /// Proportional gain.
        kp: f64,
        /// Integral gain.
        ki: f64,
        /// Derivative gain.
        kd: f64,
        /// Output lower clamp.
        lo: f64,
        /// Output upper clamp.
        hi: f64,
    },
    /// Unit delay: `x → y = previous x`. State: `prev(initial)`.
    /// The only block without direct feedthrough — it legally breaks
    /// dataflow loops. Port types follow `initial`'s type.
    UnitDelay {
        /// Initial output (also fixes the port type).
        initial: SignalValue,
    },
    /// Sample-and-hold: `x, hold → y`. State: `held: Real(0)`.
    /// `if !hold { held' = x }; y = held'`.
    SampleHold,
    /// Slew-rate limiter: `x → y`. State: `prev: Real(0)`.
    /// `y = prev + clamp(x − prev, −max_fall·dt, max_rise·dt)`.
    RateLimiter {
        /// Maximum rise per second.
        max_rise: f64,
        /// Maximum fall per second.
        max_fall: f64,
    },
    /// Up counter: `inc, reset → n`. State: `cnt: Int(min)`.
    /// Reset dominates; saturates or wraps at `max`.
    Counter {
        /// Reset / minimum value.
        min: i64,
        /// Maximum value.
        max: i64,
        /// Wrap to `min` on overflow instead of saturating.
        wrap: bool,
    },
    /// On-delay timer: `x → q` true once `x` has been continuously true for
    /// `delay` seconds. State: `elapsed: Real(0)`.
    TimerOn {
        /// Required continuous-true time in seconds.
        delay: f64,
    },
    /// Pulse generator: `→ q` true for the first `duty`-fraction of each
    /// `period`. State: `phase: Real(0)`.
    PulseGen {
        /// Period in seconds.
        period: f64,
        /// Duty cycle in `[0, 1]`.
        duty: f64,
    },
    /// Logical and: `a, b → q`. Stateless.
    And,
    /// Logical or: `a, b → q`. Stateless.
    Or,
    /// Logical exclusive-or: `a, b → q`. Stateless.
    Xor,
    /// Logical negation: `x → q`. Stateless.
    Not,
    /// Set/reset latch (reset dominant): `s, r → q`. State: `q0: Bool(false)`.
    SrLatch,
    /// Rising-edge detector: `x → q = x ∧ ¬prev`. State: `prev: Bool(false)`.
    RisingEdge,
    /// Numeric comparison: `a, b → q`. Stateless.
    Compare(CmpOp),
    /// Two-way selector: `sel, a, b → y = sel ? a : b`. Stateless.
    Select,
    /// Generic expression block: declared input ports, outputs computed by
    /// expressions over them. Stateless.
    Func {
        /// Declared input ports (the expressions' variables).
        inputs: Vec<Port>,
        /// `(output port, defining expression)` pairs, evaluated in order.
        outputs: Vec<(Port, Expr)>,
    },
}

impl BasicOp {
    /// Input port signature, in positional order.
    pub fn inputs(&self) -> Vec<Port> {
        use BasicOp::*;
        match self {
            Const(_) | PulseGen { .. } => vec![],
            Gain { .. }
            | Offset { .. }
            | Abs
            | Neg
            | Limit { .. }
            | Deadband { .. }
            | Derivative
            | LowPass { .. }
            | MovingAverage { .. }
            | RateLimiter { .. }
            | Integrator { .. } => vec![Port::real("x")],
            Hysteresis { .. } => vec![Port::real("x")],
            Sum | Sub | Mul | Div | Min | Max => vec![Port::real("a"), Port::real("b")],
            Pid { .. } => vec![Port::real("sp"), Port::real("pv")],
            UnitDelay { initial } => vec![Port::new("x", initial.signal_type())],
            SampleHold => vec![Port::real("x"), Port::boolean("hold")],
            Counter { .. } => vec![Port::boolean("inc"), Port::boolean("reset")],
            TimerOn { .. } | Not | RisingEdge => vec![Port::boolean("x")],
            And | Or | Xor => vec![Port::boolean("a"), Port::boolean("b")],
            SrLatch => vec![Port::boolean("s"), Port::boolean("r")],
            Compare(_) => vec![Port::real("a"), Port::real("b")],
            Select => vec![Port::boolean("sel"), Port::real("a"), Port::real("b")],
            Func { inputs, .. } => inputs.clone(),
        }
    }

    /// Input port *names* in positional order, allocation-free.
    ///
    /// `None` for [`BasicOp::Func`], whose signature is user-defined —
    /// callers fall back to [`BasicOp::inputs`] there. Lint walks every
    /// block of every actor on the server's session-registration path,
    /// so the common case must not build `Vec<Port>` per block.
    pub fn input_names(&self) -> Option<&'static [&'static str]> {
        use BasicOp::*;
        Some(match self {
            Const(_) | PulseGen { .. } => &[],
            Gain { .. }
            | Offset { .. }
            | Abs
            | Neg
            | Limit { .. }
            | Deadband { .. }
            | Derivative
            | LowPass { .. }
            | MovingAverage { .. }
            | RateLimiter { .. }
            | Integrator { .. }
            | Hysteresis { .. }
            | UnitDelay { .. }
            | TimerOn { .. }
            | Not
            | RisingEdge => &["x"],
            Sum | Sub | Mul | Div | Min | Max | And | Or | Xor | Compare(_) => &["a", "b"],
            Pid { .. } => &["sp", "pv"],
            SampleHold => &["x", "hold"],
            Counter { .. } => &["inc", "reset"],
            SrLatch => &["s", "r"],
            Select => &["sel", "a", "b"],
            Func { .. } => return None,
        })
    }

    /// Output port signature, in positional order.
    pub fn outputs(&self) -> Vec<Port> {
        use BasicOp::*;
        match self {
            Const(v) => vec![Port::new("y", v.signal_type())],
            UnitDelay { initial } => vec![Port::new("y", initial.signal_type())],
            Hysteresis { .. }
            | TimerOn { .. }
            | PulseGen { .. }
            | And
            | Or
            | Xor
            | Not
            | SrLatch
            | RisingEdge
            | Compare(_) => vec![Port::boolean("q")],
            Counter { .. } => vec![Port::int("n")],
            Pid { .. } => vec![Port::real("u")],
            Func { outputs, .. } => outputs.iter().map(|(p, _)| p.clone()).collect(),
            _ => vec![Port::real("y")],
        }
    }

    /// Named state cells with initial values — the layout the code
    /// generator reproduces on the target.
    pub fn state_layout(&self) -> Vec<(String, SignalValue)> {
        use BasicOp::*;
        match self {
            Hysteresis { .. } => vec![("q0".into(), false.into())],
            Integrator { initial, .. } => vec![("acc".into(), (*initial).into())],
            Derivative => vec![("prev".into(), 0.0.into())],
            LowPass { .. } => vec![("y0".into(), 0.0.into())],
            MovingAverage { window } => {
                let mut cells: Vec<(String, SignalValue)> = (0..*window)
                    .map(|i| (format!("w{i}"), 0.0.into()))
                    .collect();
                cells.push(("idx".into(), 0i64.into()));
                cells.push(("count".into(), 0i64.into()));
                cells
            }
            Pid { .. } => vec![
                ("integral".into(), 0.0.into()),
                ("prev_err".into(), 0.0.into()),
            ],
            UnitDelay { initial } => vec![("prev".into(), *initial)],
            SampleHold => vec![("held".into(), 0.0.into())],
            RateLimiter { .. } => vec![("prev".into(), 0.0.into())],
            Counter { min, .. } => vec![("cnt".into(), (*min).into())],
            TimerOn { .. } => vec![("elapsed".into(), 0.0.into())],
            PulseGen { .. } => vec![("phase".into(), 0.0.into())],
            SrLatch => vec![("q0".into(), false.into())],
            RisingEdge => vec![("prev".into(), false.into())],
            _ => vec![],
        }
    }

    /// `true` if outputs depend on current-step inputs. Only
    /// [`BasicOp::UnitDelay`] returns `false`; it may appear inside dataflow
    /// cycles.
    pub fn has_direct_feedthrough(&self) -> bool {
        !matches!(self, BasicOp::UnitDelay { .. })
    }

    /// Executes one synchronous step: reads `inputs` (positional, matching
    /// [`inputs`](Self::inputs)), updates `state` (matching
    /// [`state_layout`](Self::state_layout)) and returns outputs
    /// (positional, matching [`outputs`](Self::outputs)).
    ///
    /// `dt` is the owning actor's period in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `state` have the wrong arity or types; the
    /// network validator guarantees both before execution.
    pub fn step(
        &self,
        state: &mut [SignalValue],
        inputs: &[SignalValue],
        dt: f64,
    ) -> Vec<SignalValue> {
        use BasicOp::*;
        let r = |i: usize| inputs[i].as_real().expect("real input");
        let b = |i: usize| inputs[i].as_bool().expect("bool input");
        match self {
            Const(v) => vec![*v],
            Gain { k } => vec![(k * r(0)).into()],
            Offset { c } => vec![(r(0) + c).into()],
            Sum => vec![(r(0) + r(1)).into()],
            Sub => vec![(r(0) - r(1)).into()],
            Mul => vec![(r(0) * r(1)).into()],
            Div => vec![(r(0) / r(1)).into()],
            Min => vec![r(0).min(r(1)).into()],
            Max => vec![r(0).max(r(1)).into()],
            Abs => vec![r(0).abs().into()],
            Neg => vec![(-r(0)).into()],
            Limit { lo, hi } => vec![r(0).max(*lo).min(*hi).into()],
            Deadband { width } => {
                let x = r(0);
                vec![if x.abs() < *width { 0.0 } else { x }.into()]
            }
            Hysteresis { low, high } => {
                let x = r(0);
                let q = state[0].as_bool().expect("bool state");
                let q2 = if x >= *high {
                    true
                } else if x <= *low {
                    false
                } else {
                    q
                };
                state[0] = q2.into();
                vec![q2.into()]
            }
            Integrator { gain, lo, hi, .. } => {
                let acc = state[0].as_real().expect("real state");
                let acc2 = (acc + gain * r(0) * dt).max(*lo).min(*hi);
                state[0] = acc2.into();
                vec![acc2.into()]
            }
            Derivative => {
                let prev = state[0].as_real().expect("real state");
                let x = r(0);
                state[0] = x.into();
                vec![((x - prev) / dt).into()]
            }
            LowPass { alpha } => {
                let y = state[0].as_real().expect("real state");
                let y2 = y + alpha * (r(0) - y);
                state[0] = y2.into();
                vec![y2.into()]
            }
            MovingAverage { window } => {
                let w = *window as usize;
                let x = r(0);
                let idx = state[w].as_int().expect("int state") as usize % w;
                let count = state[w + 1].as_int().expect("int state");
                state[idx] = x.into();
                state[w] = (((idx + 1) % w) as i64).into();
                let count2 = (count + 1).min(w as i64);
                state[w + 1] = count2.into();
                let mut sum = 0.0;
                for cell in state.iter().take(w) {
                    sum += cell.as_real().expect("real cell");
                }
                vec![(sum / count2 as f64).into()]
            }
            Pid { kp, ki, kd, lo, hi } => {
                let integral = state[0].as_real().expect("real state");
                let prev_err = state[1].as_real().expect("real state");
                let e = r(0) - r(1);
                let integral2 = integral + e * dt;
                let d = (e - prev_err) / dt;
                let u = (kp * e + ki * integral2 + kd * d).max(*lo).min(*hi);
                state[0] = integral2.into();
                state[1] = e.into();
                vec![u.into()]
            }
            UnitDelay { .. } => {
                // Output only; the state update happens in the network's
                // late-update phase (see crate::interp).
                vec![state[0]]
            }
            SampleHold => {
                if !b(1) {
                    state[0] = inputs[0];
                }
                vec![state[0]]
            }
            RateLimiter { max_rise, max_fall } => {
                let prev = state[0].as_real().expect("real state");
                let dy = (r(0) - prev).max(-max_fall * dt).min(max_rise * dt);
                let y = prev + dy;
                state[0] = y.into();
                vec![y.into()]
            }
            Counter { min, max, wrap } => {
                let cnt = state[0].as_int().expect("int state");
                let cnt2 = if b(1) {
                    *min
                } else if b(0) {
                    let n = cnt.wrapping_add(1);
                    if n > *max {
                        if *wrap {
                            *min
                        } else {
                            *max
                        }
                    } else {
                        n
                    }
                } else {
                    cnt
                };
                state[0] = cnt2.into();
                vec![cnt2.into()]
            }
            TimerOn { delay } => {
                let elapsed = state[0].as_real().expect("real state");
                let e2 = if b(0) { elapsed + dt } else { 0.0 };
                state[0] = e2.into();
                vec![(e2 >= *delay).into()]
            }
            PulseGen { period, duty } => {
                let phase = state[0].as_real().expect("real state");
                let q = phase < duty * period;
                let mut p2 = phase + dt;
                if p2 >= *period {
                    p2 -= period;
                }
                state[0] = p2.into();
                vec![q.into()]
            }
            And => vec![(b(0) && b(1)).into()],
            Or => vec![(b(0) || b(1)).into()],
            Xor => vec![(b(0) ^ b(1)).into()],
            Not => vec![(!b(0)).into()],
            SrLatch => {
                let q = state[0].as_bool().expect("bool state");
                let q2 = if b(1) {
                    false
                } else if b(0) {
                    true
                } else {
                    q
                };
                state[0] = q2.into();
                vec![q2.into()]
            }
            RisingEdge => {
                let prev = state[0].as_bool().expect("bool state");
                let x = b(0);
                state[0] = x.into();
                vec![(x && !prev).into()]
            }
            Compare(op) => vec![op.apply(r(0), r(1)).into()],
            Select => vec![if b(0) { inputs[1] } else { inputs[2] }],
            Func {
                inputs: ports,
                outputs,
            } => {
                let env: std::collections::BTreeMap<String, SignalValue> = ports
                    .iter()
                    .zip(inputs.iter())
                    .map(|(p, v)| (p.name.clone(), *v))
                    .collect();
                outputs
                    .iter()
                    .map(|(port, e)| {
                        let v = e.eval(&env).expect("validated expression");
                        coerce(v, port.ty)
                    })
                    .collect()
            }
        }
    }
}

/// Coerces an expression result onto a port type (`int → real` widening
/// only; everything else must already match).
///
/// # Panics
///
/// Panics on an incompatible pair — validation rules that out.
pub(crate) fn coerce(v: SignalValue, ty: SignalType) -> SignalValue {
    match (v, ty) {
        (SignalValue::Int(i), SignalType::Real) => SignalValue::Real(i as f64),
        _ => {
            assert_eq!(v.signal_type(), ty, "validated port type");
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_series(op: &BasicOp, series: &[Vec<SignalValue>], dt: f64) -> Vec<Vec<SignalValue>> {
        let mut state: Vec<SignalValue> = op.state_layout().into_iter().map(|(_, v)| v).collect();
        series.iter().map(|i| op.step(&mut state, i, dt)).collect()
    }

    #[test]
    fn stateless_arithmetic() {
        let mut s = vec![];
        assert_eq!(
            BasicOp::Sum.step(&mut s, &[2.0.into(), 3.0.into()], 0.1),
            vec![SignalValue::Real(5.0)]
        );
        assert_eq!(
            BasicOp::Div.step(&mut s, &[1.0.into(), 0.0.into()], 0.1),
            vec![SignalValue::Real(f64::INFINITY)]
        );
        assert_eq!(
            BasicOp::Limit { lo: -1.0, hi: 1.0 }.step(&mut s, &[5.0.into()], 0.1),
            vec![SignalValue::Real(1.0)]
        );
        assert_eq!(
            BasicOp::Deadband { width: 0.5 }.step(&mut s, &[0.3.into()], 0.1),
            vec![SignalValue::Real(0.0)]
        );
    }

    #[test]
    fn hysteresis_switching() {
        let op = BasicOp::Hysteresis {
            low: 20.0,
            high: 22.0,
        };
        let ins: Vec<Vec<SignalValue>> = [19.0, 21.0, 22.5, 21.0, 19.5, 21.0]
            .iter()
            .map(|&x| vec![x.into()])
            .collect();
        let outs = run_series(&op, &ins, 0.1);
        let qs: Vec<bool> = outs.iter().map(|o| o[0].as_bool().unwrap()).collect();
        assert_eq!(qs, [false, false, true, true, false, false]);
    }

    #[test]
    fn integrator_accumulates_and_clamps() {
        let op = BasicOp::Integrator {
            gain: 1.0,
            initial: 0.0,
            lo: 0.0,
            hi: 0.25,
        };
        let ins: Vec<Vec<SignalValue>> = (0..4).map(|_| vec![1.0.into()]).collect();
        let outs = run_series(&op, &ins, 0.1);
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert!((ys[0] - 0.1).abs() < 1e-12);
        assert!((ys[1] - 0.2).abs() < 1e-12);
        assert!((ys[2] - 0.25).abs() < 1e-12); // clamped
        assert!((ys[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn derivative_backward_difference() {
        let op = BasicOp::Derivative;
        let ins: Vec<Vec<SignalValue>> = [0.0, 1.0, 1.0].iter().map(|&x| vec![x.into()]).collect();
        let outs = run_series(&op, &ins, 0.5);
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert_eq!(ys, [0.0, 2.0, 0.0]);
    }

    #[test]
    fn unit_delay_emits_state_without_update() {
        let op = BasicOp::UnitDelay {
            initial: SignalValue::Real(9.0),
        };
        let mut state: Vec<SignalValue> = op.state_layout().into_iter().map(|(_, v)| v).collect();
        // step never updates state; the network late-update phase does.
        assert_eq!(
            op.step(&mut state, &[1.0.into()], 0.1),
            vec![SignalValue::Real(9.0)]
        );
        assert_eq!(state[0], SignalValue::Real(9.0));
        assert!(!op.has_direct_feedthrough());
    }

    #[test]
    fn moving_average_warmup_and_steady() {
        let op = BasicOp::MovingAverage { window: 3 };
        let ins: Vec<Vec<SignalValue>> = [3.0, 6.0, 9.0, 12.0]
            .iter()
            .map(|&x| vec![x.into()])
            .collect();
        let outs = run_series(&op, &ins, 0.1);
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert_eq!(ys, [3.0, 4.5, 6.0, 9.0]);
    }

    #[test]
    fn pid_proportional_only() {
        let op = BasicOp::Pid {
            kp: 2.0,
            ki: 0.0,
            kd: 0.0,
            lo: -100.0,
            hi: 100.0,
        };
        let outs = run_series(&op, &[vec![10.0.into(), 7.0.into()]], 0.1);
        assert_eq!(outs[0][0], SignalValue::Real(6.0));
    }

    #[test]
    fn pid_integral_accumulates() {
        let op = BasicOp::Pid {
            kp: 0.0,
            ki: 1.0,
            kd: 0.0,
            lo: -100.0,
            hi: 100.0,
        };
        let ins: Vec<Vec<SignalValue>> = (0..3).map(|_| vec![1.0.into(), 0.0.into()]).collect();
        let outs = run_series(&op, &ins, 0.5);
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert_eq!(ys, [0.5, 1.0, 1.5]);
    }

    #[test]
    fn counter_saturates_and_wraps() {
        let inc = |v: bool| vec![SignalValue::Bool(v), SignalValue::Bool(false)];
        let sat = BasicOp::Counter {
            min: 0,
            max: 2,
            wrap: false,
        };
        let ins: Vec<_> = (0..4).map(|_| inc(true)).collect();
        let outs = run_series(&sat, &ins, 0.1);
        let ns: Vec<i64> = outs.iter().map(|o| o[0].as_int().unwrap()).collect();
        assert_eq!(ns, [1, 2, 2, 2]);

        let wrap = BasicOp::Counter {
            min: 0,
            max: 2,
            wrap: true,
        };
        let outs = run_series(&wrap, &ins, 0.1);
        let ns: Vec<i64> = outs.iter().map(|o| o[0].as_int().unwrap()).collect();
        assert_eq!(ns, [1, 2, 0, 1]);
    }

    #[test]
    fn counter_reset_dominates() {
        let op = BasicOp::Counter {
            min: 5,
            max: 10,
            wrap: false,
        };
        let outs = run_series(
            &op,
            &[
                vec![true.into(), false.into()],
                vec![true.into(), true.into()],
            ],
            0.1,
        );
        assert_eq!(outs[1][0], SignalValue::Int(5));
    }

    #[test]
    fn timer_on_delay() {
        let op = BasicOp::TimerOn { delay: 0.3 };
        let ins: Vec<Vec<SignalValue>> = [true, true, true, false, true]
            .iter()
            .map(|&x| vec![x.into()])
            .collect();
        let outs = run_series(&op, &ins, 0.1);
        let qs: Vec<bool> = outs.iter().map(|o| o[0].as_bool().unwrap()).collect();
        assert_eq!(qs, [false, false, true, false, false]);
    }

    #[test]
    fn pulse_generator_duty_cycle() {
        let op = BasicOp::PulseGen {
            period: 1.0,
            duty: 0.5,
        };
        let ins: Vec<Vec<SignalValue>> = (0..10).map(|_| vec![]).collect();
        let outs = run_series(&op, &ins, 0.25);
        let qs: Vec<bool> = outs.iter().map(|o| o[0].as_bool().unwrap()).collect();
        assert_eq!(
            qs,
            [true, true, false, false, true, true, false, false, true, true]
        );
    }

    #[test]
    fn sr_latch_reset_dominant() {
        let op = BasicOp::SrLatch;
        let outs = run_series(
            &op,
            &[
                vec![true.into(), false.into()],
                vec![false.into(), false.into()],
                vec![true.into(), true.into()],
            ],
            0.1,
        );
        let qs: Vec<bool> = outs.iter().map(|o| o[0].as_bool().unwrap()).collect();
        assert_eq!(qs, [true, true, false]);
    }

    #[test]
    fn rising_edge_detects_transitions() {
        let op = BasicOp::RisingEdge;
        let ins: Vec<Vec<SignalValue>> = [false, true, true, false, true]
            .iter()
            .map(|&x| vec![x.into()])
            .collect();
        let outs = run_series(&op, &ins, 0.1);
        let qs: Vec<bool> = outs.iter().map(|o| o[0].as_bool().unwrap()).collect();
        assert_eq!(qs, [false, true, false, false, true]);
    }

    #[test]
    fn sample_hold() {
        let op = BasicOp::SampleHold;
        let outs = run_series(
            &op,
            &[
                vec![1.0.into(), false.into()],
                vec![2.0.into(), true.into()],
                vec![3.0.into(), false.into()],
            ],
            0.1,
        );
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert_eq!(ys, [1.0, 1.0, 3.0]);
    }

    #[test]
    fn rate_limiter_slews() {
        let op = BasicOp::RateLimiter {
            max_rise: 1.0,
            max_fall: 2.0,
        };
        let ins: Vec<Vec<SignalValue>> = [10.0, 10.0, -10.0]
            .iter()
            .map(|&x| vec![x.into()])
            .collect();
        let outs = run_series(&op, &ins, 1.0);
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert_eq!(ys, [1.0, 2.0, 0.0]);
    }

    #[test]
    fn select_and_compare() {
        let mut s = vec![];
        assert_eq!(
            BasicOp::Select.step(&mut s, &[true.into(), 1.0.into(), 2.0.into()], 0.1),
            vec![SignalValue::Real(1.0)]
        );
        assert_eq!(
            BasicOp::Compare(CmpOp::Ge).step(&mut s, &[2.0.into(), 2.0.into()], 0.1),
            vec![SignalValue::Bool(true)]
        );
    }

    #[test]
    fn func_block_evaluates_expressions() {
        let op = BasicOp::Func {
            inputs: vec![Port::real("t"), Port::real("sp")],
            outputs: vec![(Port::real("err"), Expr::var("sp").sub(Expr::var("t")))],
        };
        let mut s = vec![];
        let out = op.step(&mut s, &[20.0.into(), 22.5.into()], 0.1);
        assert_eq!(out, vec![SignalValue::Real(2.5)]);
        assert_eq!(op.inputs().len(), 2);
        assert_eq!(op.outputs()[0].name, "err");
    }

    #[test]
    fn port_signatures_consistent_with_step_arity() {
        let ops = [
            BasicOp::Const(1.0.into()),
            BasicOp::Gain { k: 2.0 },
            BasicOp::Sum,
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.0,
                kd: 0.0,
                lo: -1.0,
                hi: 1.0,
            },
            BasicOp::Select,
            BasicOp::Counter {
                min: 0,
                max: 5,
                wrap: false,
            },
            BasicOp::MovingAverage { window: 4 },
        ];
        for op in ops {
            let mut state: Vec<SignalValue> =
                op.state_layout().into_iter().map(|(_, v)| v).collect();
            let inputs: Vec<SignalValue> = op.inputs().iter().map(|p| p.ty.zero()).collect();
            let outs = op.step(&mut state, &inputs, 0.1);
            assert_eq!(outs.len(), op.outputs().len(), "{op:?}");
            for (o, p) in outs.iter().zip(op.outputs()) {
                assert_eq!(o.signal_type(), p.ty, "{op:?}");
            }
        }
    }
}
