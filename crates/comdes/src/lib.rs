//! # gmdf-comdes — the COMDES domain-specific modeling language
//!
//! Reproduction of the COMDES-II framework the GMDF paper (Zeng, Guo,
//! Angelov — DATE 2010) uses as its input language: "a component-based
//! framework for distributed control systems, featuring open architecture
//! and predictable operation under hard real-time constraints" (§III).
//!
//! The crate provides:
//!
//! * [`BasicOp`] — the prefabricated basic function-block library;
//! * [`StateMachineBlock`] / [`FsmBuilder`] — state-machine function blocks;
//! * [`ModalBlock`], [`CompositeBlock`], [`Network`] / [`NetworkBuilder`] —
//!   hierarchical component networks;
//! * [`Actor`] / [`ActorBuilder`], [`System`], [`NodeSpec`] — distributed
//!   deployment under Distributed Timed Multitasking timing;
//! * [`Interpreter`] — the reference executor (the semantic oracle the
//!   code generator is property-tested against);
//! * [`export_system`] — reflection into the generic
//!   [`gmdf_metamodel`] layer for the debugger's abstraction step;
//! * [`lint`] — static warnings for runtime-debuggable design slips.
//!
//! ```
//! use gmdf_comdes::{ActorBuilder, BasicOp, Interpreter, NetworkBuilder, NodeSpec,
//!                   Port, SignalValue, System, Timing};
//!
//! # fn main() -> Result<(), gmdf_comdes::ComdesError> {
//! // A one-block control actor: u = -0.5 * error.
//! let net = NetworkBuilder::new()
//!     .input(Port::real("err"))
//!     .output(Port::real("u"))
//!     .block("p", BasicOp::Gain { k: -0.5 })
//!     .connect("err", "p.x")?
//!     .connect("p.y", "u")?
//!     .build()?;
//! let actor = ActorBuilder::new("Ctl", net)
//!     .input("err", "error")
//!     .output("u", "drive")
//!     .timing(Timing::periodic(1_000_000, 0))
//!     .build()?;
//! let mut node = NodeSpec::new("ecu", 48_000_000);
//! node.actors.push(actor);
//! let system = System::new("loop").with_node(node);
//!
//! let mut sim = Interpreter::new(&system)?;
//! sim.add_stimulus(0, "error", SignalValue::Real(4.0));
//! sim.run_until(2_000_000)?;
//! assert_eq!(sim.board()["drive"], SignalValue::Real(-2.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actor;
mod block;
mod error;
mod export;
mod expr;
pub mod fnv;
mod fsm;
mod interp;
mod lint;
mod network;
mod signal;
mod system;

pub use actor::{Actor, ActorBuilder, ActorInput, ActorOutput, Timing};
pub use block::{BasicOp, CmpOp};
pub use error::ComdesError;
pub use export::{comdes_metamodel, export_system, COMDES_METAMODEL};
pub use expr::{trunc_to_int, BinOp, Expr, UnOp};
pub use fsm::{
    Assign, FsmBuilder, FsmState, FsmStepInfo, State, StateBuilder, StateMachineBlock, Transition,
    VAR_DT, VAR_TIME_IN_STATE,
};
pub use interp::{
    init_network, run_network, step_network, ActivationRecord, BehaviorEvent, Interpreter, RtBlock,
    RtNetwork, SignalWrite,
};
pub use lint::{lint, LintWarning};
pub use network::{
    Block, BlockInstance, CompositeBlock, Connection, ModalBlock, Mode, Network, NetworkBuilder,
    Sink, Source,
};
pub use signal::{Port, SignalType, SignalValue};
pub use system::{NodeSpec, SignalOrigin, System};
