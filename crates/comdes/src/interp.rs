//! Reference interpreter: executes COMDES models directly at the model
//! level.
//!
//! This is the *semantic oracle* of the reproduction. The code generator
//! ([`gmdf-codegen`]) compiles the same models to bytecode; a property test
//! checks that compiled execution produces **bit-identical** signal traces.
//! The debugger uses the interpreter to derive expected behaviour
//! ("checking whether the application meets system requirements", paper
//! §II) and to classify implementation errors.
//!
//! Timing model: idealized Distributed Timed Multitasking with zero
//! execution time — inputs latch at release instants, outputs publish at
//! deadline instants, signals broadcast with zero latency. The target
//! simulator refines this with real CPU costs; under deadline latching the
//! *published values and instants* must coincide with the interpreter's.
//!
//! [`gmdf-codegen`]: ../../gmdf_codegen/index.html

use crate::error::ComdesError;
use crate::fsm::FsmState;
use crate::network::{Block, Network, Sink, Source};
use crate::signal::SignalValue;
use crate::system::System;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A model-level behaviour occurrence, reported by the interpreter and —
/// through the command interface — by the running target code. Comparing
/// the two streams is how the debugger detects implementation errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorEvent {
    /// A state-machine block changed state.
    StateEnter {
        /// Path of the FSM block (`actor/…/block`).
        block_path: String,
        /// Name of the state left.
        from: String,
        /// Name of the state entered.
        to: String,
    },
    /// A modal block switched modes.
    ModeSwitch {
        /// Path of the modal block.
        block_path: String,
        /// Name of the mode left (empty on first activation).
        from: String,
        /// Name of the mode entered.
        to: String,
    },
}

impl BehaviorEvent {
    /// Path of the block the event concerns.
    pub fn block_path(&self) -> &str {
        match self {
            BehaviorEvent::StateEnter { block_path, .. }
            | BehaviorEvent::ModeSwitch { block_path, .. } => block_path,
        }
    }
}

/// Runtime state of one block instance.
#[derive(Debug, Clone, PartialEq)]
pub enum RtBlock {
    /// Basic block state cells.
    Basic(Vec<SignalValue>),
    /// State-machine runtime.
    Fsm(FsmState),
    /// Modal runtime: last active mode plus per-mode network states.
    Modal {
        /// Previously active mode (None before first step).
        last: Option<usize>,
        /// Per-mode sub-network states.
        modes: Vec<RtNetwork>,
    },
    /// Composite runtime: the nested network's state.
    Composite(RtNetwork),
}

/// Runtime state of a network: one [`RtBlock`] per block instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RtNetwork {
    /// Positional block states.
    pub blocks: Vec<RtBlock>,
}

/// Builds the initial runtime state for `net`.
pub fn init_network(net: &Network) -> RtNetwork {
    let blocks = net
        .blocks
        .iter()
        .map(|bi| match &bi.block {
            Block::Basic(op) => {
                RtBlock::Basic(op.state_layout().into_iter().map(|(_, v)| v).collect())
            }
            Block::StateMachine(fsm) => RtBlock::Fsm(fsm.initial_state()),
            Block::Modal(m) => RtBlock::Modal {
                last: None,
                modes: m.modes.iter().map(|mo| init_network(&mo.network)).collect(),
            },
            Block::Composite(c) => RtBlock::Composite(init_network(&c.network)),
        })
        .collect();
    RtNetwork { blocks }
}

/// Executes one synchronous step of `net`.
///
/// `path` is the element-path prefix (actor name and enclosing block
/// names) used to label emitted [`BehaviorEvent`]s; `events` collects
/// them.
///
/// # Errors
///
/// Returns [`ComdesError`] if an expression fails to evaluate — validated
/// networks never do.
pub fn step_network(
    net: &Network,
    rt: &mut RtNetwork,
    inputs: &[SignalValue],
    dt: f64,
    path: &mut Vec<String>,
    events: &mut Vec<BehaviorEvent>,
) -> Result<Vec<SignalValue>, ComdesError> {
    let n = net.blocks.len();
    let mut produced: Vec<Option<Vec<SignalValue>>> = vec![None; n];

    // Phase 1: loop-breaking blocks emit their state as output.
    for (bi, inst) in net.blocks.iter().enumerate() {
        if !inst.block.has_direct_feedthrough() {
            if let RtBlock::Basic(state) = &rt.blocks[bi] {
                produced[bi] = Some(vec![state[0]]);
            }
        }
    }

    // Input gathering helper: resolve the driver of (block, port) if any.
    let driver = |block: &str, port: &str| -> Option<&Source> {
        net.connections
            .iter()
            .find(|c| matches!(&c.to, Sink::Block { block: b, port: p } if b == block && p == port))
            .map(|c| &c.from)
    };
    let resolve = |src: &Source,
                   produced: &Vec<Option<Vec<SignalValue>>>|
     -> Result<SignalValue, ComdesError> {
        match src {
            Source::Input(p) => {
                let idx = net
                    .inputs
                    .iter()
                    .position(|q| q.name == *p)
                    .ok_or_else(|| ComdesError::BadConnection(format!("no input `{p}`")))?;
                Ok(inputs[idx])
            }
            Source::Block { block, port } => {
                let bi = net
                    .block_index(block)
                    .ok_or_else(|| ComdesError::Unknown(format!("block `{block}`")))?;
                let oi = net.blocks[bi]
                    .block
                    .outputs()
                    .iter()
                    .position(|q| q.name == *port)
                    .ok_or_else(|| ComdesError::Unknown(format!("output `{block}.{port}`")))?;
                produced[bi]
                    .as_ref()
                    .map(|o| o[oi])
                    .ok_or_else(|| ComdesError::Eval(format!("`{block}` not yet computed")))
            }
        }
    };
    let gather = |inst: &crate::network::BlockInstance,
                  produced: &Vec<Option<Vec<SignalValue>>>|
     -> Result<Vec<SignalValue>, ComdesError> {
        inst.block
            .inputs()
            .iter()
            .map(|p| match driver(&inst.name, &p.name) {
                Some(src) => resolve(src, produced),
                None => Ok(p.ty.zero()),
            })
            .collect()
    };

    // Phase 2: feedthrough blocks in topological order.
    for bi in net.topo_order()? {
        let inst = &net.blocks[bi];
        if !inst.block.has_direct_feedthrough() {
            continue; // already emitted
        }
        let ins = gather(inst, &produced)?;
        let outs = match (&inst.block, &mut rt.blocks[bi]) {
            (Block::Basic(op), RtBlock::Basic(state)) => op.step(state, &ins, dt),
            (Block::StateMachine(fsm), RtBlock::Fsm(state)) => {
                let (outs, info) = fsm.step(state, &ins, dt)?;
                if let Some((from, to)) = info.fired {
                    path.push(inst.name.clone());
                    events.push(BehaviorEvent::StateEnter {
                        block_path: path.join("/"),
                        from: fsm.states[from].name.clone(),
                        to: fsm.states[to].name.clone(),
                    });
                    path.pop();
                }
                outs
            }
            (Block::Modal(m), RtBlock::Modal { last, modes }) => {
                let raw = ins[0]
                    .as_int()
                    .ok_or_else(|| ComdesError::Eval("mode selector must be int".into()))?;
                let active = m.clamp_mode(raw);
                if *last != Some(active) {
                    path.push(inst.name.clone());
                    events.push(BehaviorEvent::ModeSwitch {
                        block_path: path.join("/"),
                        from: last.map(|l| m.modes[l].name.clone()).unwrap_or_default(),
                        to: m.modes[active].name.clone(),
                    });
                    path.pop();
                    *last = Some(active);
                }
                path.push(inst.name.clone());
                path.push(m.modes[active].name.clone());
                let outs = step_network(
                    &m.modes[active].network,
                    &mut modes[active],
                    &ins[1..],
                    dt,
                    path,
                    events,
                )?;
                path.pop();
                path.pop();
                outs
            }
            (Block::Composite(c), RtBlock::Composite(inner)) => {
                path.push(inst.name.clone());
                let outs = step_network(&c.network, inner, &ins, dt, path, events)?;
                path.pop();
                outs
            }
            _ => return Err(ComdesError::Eval("runtime/definition mismatch".into())),
        };
        produced[bi] = Some(outs);
    }

    // Phase 3: late state update for loop-breaking blocks.
    for (bi, inst) in net.blocks.iter().enumerate() {
        if inst.block.has_direct_feedthrough() {
            continue;
        }
        let ins = gather(inst, &produced)?;
        if let RtBlock::Basic(state) = &mut rt.blocks[bi] {
            state[0] = ins[0];
        }
    }

    // Network outputs.
    net.outputs
        .iter()
        .map(|p| {
            let src = net
                .connections
                .iter()
                .find(|c| matches!(&c.to, Sink::Output(q) if *q == p.name))
                .map(|c| &c.from)
                .ok_or_else(|| {
                    ComdesError::BadConnection(format!("output `{}` not driven", p.name))
                })?;
            resolve(src, &produced)
        })
        .collect()
}

/// One signal-board write, recorded in the interpreter's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalWrite {
    /// Simulation time of the write (deadline instant for actor outputs).
    pub time_ns: u64,
    /// Signal label.
    pub label: String,
    /// Written value.
    pub value: SignalValue,
    /// `true` for environment stimuli, `false` for actor publications.
    pub from_environment: bool,
}

/// Record of one actor task activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationRecord {
    /// Release (and input latch) instant.
    pub release_ns: u64,
    /// Actor name.
    pub actor: String,
    /// Model-level behaviour events produced by this step.
    pub events: Vec<BehaviorEvent>,
    /// Output values latched for publication at the deadline.
    pub outputs: Vec<(String, SignalValue)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    // Order matters: at equal timestamps, environment writes land first,
    // then deadline publications, then releases latching inputs.
    Environment = 0,
    Deadline = 1,
    Release = 2,
}

/// Reference interpreter for a whole [`System`].
///
/// ```
/// use gmdf_comdes::{Interpreter, System, NodeSpec, ActorBuilder, NetworkBuilder,
///                   BasicOp, Port, Timing, SignalValue};
///
/// # fn main() -> Result<(), gmdf_comdes::ComdesError> {
/// let net = NetworkBuilder::new()
///     .input(Port::real("x"))
///     .output(Port::real("y"))
///     .block("g", BasicOp::Gain { k: 2.0 })
///     .connect("x", "g.x")?
///     .connect("g.y", "y")?
///     .build()?;
/// let actor = ActorBuilder::new("Doubler", net)
///     .input("x", "in")
///     .output("y", "out")
///     .timing(Timing::periodic(1_000_000, 0))
///     .build()?;
/// let mut node = NodeSpec::new("n0", 1_000_000);
/// node.actors.push(actor);
/// let system = System::new("demo").with_node(node);
///
/// let mut interp = Interpreter::new(&system)?;
/// interp.add_stimulus(0, "in", SignalValue::Real(21.0));
/// interp.run_until(2_000_000)?;
/// assert_eq!(interp.board()["out"], SignalValue::Real(42.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter<'a> {
    system: &'a System,
    board: BTreeMap<String, SignalValue>,
    runtimes: Vec<Vec<ActorRt>>,
    stimuli: Vec<(u64, String, SignalValue)>,
    trace: Vec<SignalWrite>,
    records: Vec<ActivationRecord>,
    now_ns: u64,
}

#[derive(Debug)]
struct ActorRt {
    rt: RtNetwork,
    next_release_idx: u64,
    pending: Option<(u64, Vec<SignalValue>)>,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a validated system; the signal board is
    /// initialized to type zeros for every label.
    ///
    /// # Errors
    ///
    /// Propagates [`System::check`] failures.
    pub fn new(system: &'a System) -> Result<Self, ComdesError> {
        system.check()?;
        let board = system
            .signal_map()?
            .into_iter()
            .map(|(label, (ty, _))| (label, ty.zero()))
            .collect();
        let runtimes = system
            .nodes
            .iter()
            .map(|n| {
                n.actors
                    .iter()
                    .map(|a| ActorRt {
                        rt: init_network(&a.network),
                        next_release_idx: 0,
                        pending: None,
                    })
                    .collect()
            })
            .collect();
        Ok(Interpreter {
            system,
            board,
            runtimes,
            stimuli: Vec::new(),
            trace: Vec::new(),
            records: Vec::new(),
            now_ns: 0,
        })
    }

    /// Schedules an environment write (sensor value) at `time_ns`.
    ///
    /// Stimuli must target environment labels; writes to produced labels
    /// would be overwritten by the producer and are still applied (useful
    /// for initial conditions).
    pub fn add_stimulus(&mut self, time_ns: u64, label: &str, value: SignalValue) {
        self.stimuli.push((time_ns, label.to_owned(), value));
        self.stimuli.sort_by_key(|a| a.0);
    }

    /// Current signal board (label → last value).
    pub fn board(&self) -> &BTreeMap<String, SignalValue> {
        &self.board
    }

    /// All board writes so far, in order.
    pub fn trace(&self) -> &[SignalWrite] {
        &self.trace
    }

    /// All actor activations so far, in order.
    pub fn records(&self) -> &[ActivationRecord] {
        &self.records
    }

    /// Current simulation time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances simulation to `t_end_ns` (inclusive), processing all
    /// environment writes, deadlines and releases in deterministic order.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (never for validated systems).
    pub fn run_until(&mut self, t_end_ns: u64) -> Result<(), ComdesError> {
        // Build the event list for (now, t_end].
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Ev {
            time: u64,
            kind: EventKind,
            node: usize,
            actor: usize,
            stim: usize,
        }
        let mut events: Vec<Ev> = Vec::new();
        // Deadlines carried over from releases in earlier run_until windows.
        for (ni, node) in self.runtimes.iter().enumerate() {
            for (ai, art) in node.iter().enumerate() {
                if let Some((due, _)) = art.pending {
                    if due <= t_end_ns {
                        events.push(Ev {
                            time: due,
                            kind: EventKind::Deadline,
                            node: ni,
                            actor: ai,
                            stim: usize::MAX,
                        });
                    }
                }
            }
        }
        for (si, (t, _, _)) in self.stimuli.iter().enumerate() {
            if *t >= self.now_ns && *t <= t_end_ns {
                events.push(Ev {
                    time: *t,
                    kind: EventKind::Environment,
                    node: 0,
                    actor: 0,
                    stim: si,
                });
            }
        }
        for (ni, node) in self.system.nodes.iter().enumerate() {
            for (ai, actor) in node.actors.iter().enumerate() {
                let t = &actor.timing;
                let mut k = self.runtimes[ni][ai].next_release_idx;
                loop {
                    let rel = t.offset_ns + k * t.period_ns;
                    if rel > t_end_ns {
                        break;
                    }
                    events.push(Ev {
                        time: rel,
                        kind: EventKind::Release,
                        node: ni,
                        actor: ai,
                        stim: usize::MAX,
                    });
                    let dl = rel + t.deadline_ns;
                    if dl <= t_end_ns {
                        events.push(Ev {
                            time: dl,
                            kind: EventKind::Deadline,
                            node: ni,
                            actor: ai,
                            stim: usize::MAX,
                        });
                    }
                    k += 1;
                }
            }
        }
        events.sort();

        let consumed_stimuli: Vec<usize> = events
            .iter()
            .filter(|e| e.kind == EventKind::Environment)
            .map(|e| e.stim)
            .collect();

        for ev in &events {
            self.now_ns = ev.time;
            match ev.kind {
                EventKind::Environment => {
                    let (t, label, value) = self.stimuli[ev.stim].clone();
                    self.board.insert(label.clone(), value);
                    self.trace.push(SignalWrite {
                        time_ns: t,
                        label,
                        value,
                        from_environment: true,
                    });
                }
                EventKind::Deadline => {
                    let actor = &self.system.nodes[ev.node].actors[ev.actor];
                    let art = &mut self.runtimes[ev.node][ev.actor];
                    if let Some((due, outs)) = art.pending.take() {
                        debug_assert_eq!(due, ev.time);
                        for (binding, value) in actor.outputs.iter().zip(outs.iter()) {
                            self.board.insert(binding.label.clone(), *value);
                            self.trace.push(SignalWrite {
                                time_ns: ev.time,
                                label: binding.label.clone(),
                                value: *value,
                                from_environment: false,
                            });
                        }
                    }
                }
                EventKind::Release => {
                    let actor = &self.system.nodes[ev.node].actors[ev.actor];
                    // Latch inputs at release.
                    let latched: Vec<SignalValue> = actor
                        .inputs
                        .iter()
                        .map(|i| {
                            self.board
                                .get(&i.label)
                                .copied()
                                .unwrap_or_else(|| i.port.ty.zero())
                        })
                        .collect();
                    let dt = actor.timing.dt_seconds();
                    let mut path = vec![actor.name.clone()];
                    let mut bevents = Vec::new();
                    let art = &mut self.runtimes[ev.node][ev.actor];
                    let outs = step_network(
                        &actor.network,
                        &mut art.rt,
                        &latched,
                        dt,
                        &mut path,
                        &mut bevents,
                    )?;
                    art.pending = Some((ev.time + actor.timing.deadline_ns, outs.clone()));
                    art.next_release_idx += 1;
                    self.records.push(ActivationRecord {
                        release_ns: ev.time,
                        actor: actor.name.clone(),
                        events: bevents,
                        outputs: actor
                            .outputs
                            .iter()
                            .zip(outs.iter())
                            .map(|(b, v)| (b.label.clone(), *v))
                            .collect(),
                    });
                }
            }
        }
        // Drop consumed stimuli (iterate in reverse to keep indexes valid).
        let mut consumed = consumed_stimuli;
        consumed.sort_unstable();
        for si in consumed.into_iter().rev() {
            self.stimuli.remove(si);
        }
        self.now_ns = t_end_ns;
        Ok(())
    }
}

/// Steps a single network repeatedly with the given per-step inputs —
/// convenience for unit and property tests.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run_network(
    net: &Network,
    steps: &[Vec<SignalValue>],
    dt: f64,
) -> Result<Vec<Vec<SignalValue>>, ComdesError> {
    let mut rt = init_network(net);
    let mut path = Vec::new();
    let mut events = Vec::new();
    steps
        .iter()
        .map(|ins| step_network(net, &mut rt, ins, dt, &mut path, &mut events))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorBuilder, Timing};
    use crate::block::BasicOp;
    use crate::expr::Expr;
    use crate::fsm::FsmBuilder;
    use crate::network::{ModalBlock, Mode, NetworkBuilder};
    use crate::signal::Port;
    use crate::system::NodeSpec;

    fn accumulator_net() -> Network {
        // y[k] = y[k-1] + 1 via UnitDelay feedback.
        NetworkBuilder::new()
            .output(Port::real("y"))
            .block("add", BasicOp::Sum)
            .block(
                "z",
                BasicOp::UnitDelay {
                    initial: SignalValue::Real(0.0),
                },
            )
            .block("one", BasicOp::Const(SignalValue::Real(1.0)))
            .connect("one.y", "add.a")
            .unwrap()
            .connect("z.y", "add.b")
            .unwrap()
            .connect("add.y", "z.x")
            .unwrap()
            .connect("add.y", "y")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn feedback_loop_accumulates() {
        let net = accumulator_net();
        let steps: Vec<Vec<SignalValue>> = (0..4).map(|_| vec![]).collect();
        let outs = run_network(&net, &steps, 0.1).unwrap();
        let ys: Vec<f64> = outs.iter().map(|o| o[0].as_real().unwrap()).collect();
        assert_eq!(ys, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unconnected_input_reads_zero() {
        let net = NetworkBuilder::new()
            .output(Port::real("y"))
            .block("s", BasicOp::Offset { c: 7.0 })
            .connect("s.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let outs = run_network(&net, &[vec![]], 0.1).unwrap();
        assert_eq!(outs[0][0], SignalValue::Real(7.0));
    }

    #[test]
    fn fsm_events_carry_paths() {
        let fsm = FsmBuilder::new()
            .input(Port::boolean("go"))
            .output(Port::boolean("on"))
            .state("Idle", |s| s.entry("on", Expr::Bool(false)))
            .state("Run", |s| s.entry("on", Expr::Bool(true)))
            .transition("Idle", "Run", Expr::var("go"))
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .input(Port::boolean("go"))
            .output(Port::boolean("on"))
            .state_machine("ctl", fsm)
            .connect("go", "ctl.go")
            .unwrap()
            .connect("ctl.on", "on")
            .unwrap()
            .build()
            .unwrap();
        let mut rt = init_network(&net);
        let mut path = vec!["Heater".to_owned()];
        let mut events = Vec::new();
        step_network(&net, &mut rt, &[true.into()], 0.1, &mut path, &mut events).unwrap();
        assert_eq!(
            events,
            vec![BehaviorEvent::StateEnter {
                block_path: "Heater/ctl".into(),
                from: "Idle".into(),
                to: "Run".into(),
            }]
        );
        assert_eq!(path, vec!["Heater".to_owned()]); // restored
    }

    fn pass_mode(k: f64) -> Network {
        NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn modal_switches_and_freezes_inactive() {
        // Mode 0: integrator; Mode 1: gain. Integrator state must freeze
        // while mode 1 is active.
        let m0 = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block(
                "i",
                BasicOp::Integrator {
                    gain: 1.0,
                    initial: 0.0,
                    lo: -1e9,
                    hi: 1e9,
                },
            )
            .connect("x", "i.x")
            .unwrap()
            .connect("i.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let modal = ModalBlock {
            data_inputs: vec![Port::real("x")],
            outputs: vec![Port::real("y")],
            modes: vec![
                Mode {
                    name: "integrate".into(),
                    network: m0,
                },
                Mode {
                    name: "pass".into(),
                    network: pass_mode(1.0),
                },
            ],
        };
        let net = NetworkBuilder::new()
            .input(Port::int("m"))
            .input(Port::real("x"))
            .output(Port::real("y"))
            .modal("modal", modal)
            .connect("m", "modal.mode")
            .unwrap()
            .connect("x", "modal.x")
            .unwrap()
            .connect("modal.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let mut rt = init_network(&net);
        let mut path = vec!["A".to_owned()];
        let mut ev = Vec::new();
        let dt = 1.0;
        let s1 = step_network(
            &net,
            &mut rt,
            &[0i64.into(), 2.0.into()],
            dt,
            &mut path,
            &mut ev,
        )
        .unwrap();
        assert_eq!(s1[0], SignalValue::Real(2.0)); // integral = 2
        let s2 = step_network(
            &net,
            &mut rt,
            &[1i64.into(), 5.0.into()],
            dt,
            &mut path,
            &mut ev,
        )
        .unwrap();
        assert_eq!(s2[0], SignalValue::Real(5.0)); // pass-through
        let s3 = step_network(
            &net,
            &mut rt,
            &[0i64.into(), 1.0.into()],
            dt,
            &mut path,
            &mut ev,
        )
        .unwrap();
        assert_eq!(s3[0], SignalValue::Real(3.0)); // integral resumed from 2
                                                   // Mode switch events: initial activation, 0->1, 1->0.
        let switches: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e, BehaviorEvent::ModeSwitch { .. }))
            .collect();
        assert_eq!(switches.len(), 3);
        if let BehaviorEvent::ModeSwitch {
            block_path,
            from,
            to,
        } = switches[1]
        {
            assert_eq!(block_path, "A/modal");
            assert_eq!(from, "integrate");
            assert_eq!(to, "pass");
        } else {
            panic!("expected mode switch");
        }
    }

    #[test]
    fn modal_selector_clamps() {
        let modal = ModalBlock {
            data_inputs: vec![Port::real("x")],
            outputs: vec![Port::real("y")],
            modes: vec![
                Mode {
                    name: "a".into(),
                    network: pass_mode(1.0),
                },
                Mode {
                    name: "b".into(),
                    network: pass_mode(10.0),
                },
            ],
        };
        let net = NetworkBuilder::new()
            .input(Port::int("m"))
            .input(Port::real("x"))
            .output(Port::real("y"))
            .modal("modal", modal)
            .connect("m", "modal.mode")
            .unwrap()
            .connect("x", "modal.x")
            .unwrap()
            .connect("modal.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let steps = vec![
            vec![SignalValue::Int(-3), SignalValue::Real(1.0)],
            vec![SignalValue::Int(99), SignalValue::Real(1.0)],
        ];
        let outs = run_network(&net, &steps, 0.1).unwrap();
        assert_eq!(outs[0][0], SignalValue::Real(1.0)); // clamped to mode 0
        assert_eq!(outs[1][0], SignalValue::Real(10.0)); // clamped to mode 1
    }

    #[test]
    fn composite_nesting() {
        let inner = pass_mode(3.0);
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .composite("sub", inner)
            .connect("x", "sub.x")
            .unwrap()
            .connect("sub.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let outs = run_network(&net, &[vec![2.0.into()]], 0.1).unwrap();
        assert_eq!(outs[0][0], SignalValue::Real(6.0));
    }

    fn two_actor_system() -> System {
        // Producer doubles `raw` into `mid`; consumer negates `mid` into `out`.
        let p = ActorBuilder::new("Producer", pass_mode(2.0))
            .input("x", "raw")
            .output("y", "mid")
            .timing(Timing {
                period_ns: 1_000,
                offset_ns: 0,
                deadline_ns: 1_000,
                priority: 0,
            })
            .build()
            .unwrap();
        let c = ActorBuilder::new("Consumer", pass_mode(-1.0))
            .input("x", "mid")
            .output("y", "out")
            .timing(Timing {
                period_ns: 1_000,
                offset_ns: 0,
                deadline_ns: 1_000,
                priority: 1,
            })
            .build()
            .unwrap();
        let mut n0 = NodeSpec::new("n0", 1_000_000_000);
        n0.actors.push(p);
        let mut n1 = NodeSpec::new("n1", 1_000_000_000);
        n1.actors.push(c);
        System::new("pipeline").with_node(n0).with_node(n1)
    }

    #[test]
    fn deadline_publication_ordering() {
        let sys = two_actor_system();
        let mut interp = Interpreter::new(&sys).unwrap();
        interp.add_stimulus(0, "raw", SignalValue::Real(10.0));
        interp.run_until(3_000).unwrap();
        // t=0: env write raw=10; both release latching (raw=10, mid=0).
        // t=1000: producer publishes mid=20, consumer publishes out=0;
        //         then releases latch mid=20 (deadline before release).
        // t=2000: publishes mid=20, out=-20.
        assert_eq!(interp.board()["mid"], SignalValue::Real(20.0));
        assert_eq!(interp.board()["out"], SignalValue::Real(-20.0));
        // Trace ordering at t=1000: deadline writes precede the next latch.
        let t1000: Vec<_> = interp
            .trace()
            .iter()
            .filter(|w| w.time_ns == 1_000)
            .collect();
        assert_eq!(t1000.len(), 2);
    }

    #[test]
    fn activation_records_capture_outputs() {
        let sys = two_actor_system();
        let mut interp = Interpreter::new(&sys).unwrap();
        interp.add_stimulus(0, "raw", SignalValue::Real(1.0));
        interp.run_until(1_000).unwrap();
        let recs: Vec<_> = interp
            .records()
            .iter()
            .filter(|r| r.actor == "Producer")
            .collect();
        assert_eq!(recs.len(), 2); // releases at 0 and 1000
        assert_eq!(
            recs[0].outputs,
            vec![("mid".to_owned(), SignalValue::Real(2.0))]
        );
    }

    #[test]
    fn incremental_run_matches_single_run() {
        let sys = two_actor_system();
        let mut a = Interpreter::new(&sys).unwrap();
        a.add_stimulus(0, "raw", SignalValue::Real(3.0));
        a.add_stimulus(1_500, "raw", SignalValue::Real(-3.0));
        a.run_until(5_000).unwrap();

        let mut b = Interpreter::new(&sys).unwrap();
        b.add_stimulus(0, "raw", SignalValue::Real(3.0));
        b.add_stimulus(1_500, "raw", SignalValue::Real(-3.0));
        b.run_until(1_200).unwrap();
        b.run_until(2_600).unwrap();
        b.run_until(5_000).unwrap();

        assert_eq!(a.board(), b.board());
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.records().len(), b.records().len());
    }

    #[test]
    fn offset_delays_first_release() {
        let actor = ActorBuilder::new("Late", pass_mode(1.0))
            .input("x", "in")
            .output("y", "out")
            .timing(Timing {
                period_ns: 1_000,
                offset_ns: 500,
                deadline_ns: 1_000,
                priority: 0,
            })
            .build()
            .unwrap();
        let mut node = NodeSpec::new("n", 1_000_000);
        node.actors.push(actor);
        let sys = System::new("s").with_node(node);
        let mut interp = Interpreter::new(&sys).unwrap();
        interp.run_until(400).unwrap();
        assert!(interp.records().is_empty());
        interp.run_until(600).unwrap();
        assert_eq!(interp.records().len(), 1);
        assert_eq!(interp.records()[0].release_ns, 500);
    }
}
