//! Export of COMDES systems as generic metamodel instances.
//!
//! GMDF's abstraction step (paper Fig. 4) operates on *metamodel elements*:
//! the user pairs each input-language metaclass with a GDM graphical
//! pattern. This module defines the COMDES metamodel in
//! [`gmdf_metamodel`] terms and reflects a [`System`] into a conforming
//! [`Model`], so the debugger can treat COMDES like any other MOF-style
//! input language.
//!
//! Element paths in the exported model (`Actor/block/State`) are aligned
//! with the interpreter's [`BehaviorEvent`](crate::BehaviorEvent) paths and
//! with the code generator's symbol names, which is what lets the debugger
//! bind runtime commands back to model elements.

use crate::actor::Actor;
use crate::error::ComdesError;
use crate::network::{Block, Connection, Network, Sink, Source};
use crate::system::System;
use gmdf_metamodel::{DataType, Metamodel, MetamodelBuilder, Model, ModelError, ObjectId, Value};
use std::sync::Arc;

/// Package name of the COMDES metamodel.
pub const COMDES_METAMODEL: &str = "comdes";

/// Builds the COMDES metamodel (idempotent; callers usually share the
/// result through an `Arc`).
///
/// # Panics
///
/// Never panics in practice — the metamodel is a fixed literal; a builder
/// failure would be a programming error.
pub fn comdes_metamodel() -> Metamodel {
    let mut b = MetamodelBuilder::new(COMDES_METAMODEL);
    b.class("Named")
        .expect("fixed metamodel")
        .set_abstract(true)
        .attribute("name", DataType::Str, true)
        .expect("fixed metamodel");
    b.class("System")
        .expect("fixed metamodel")
        .supertype("Named")
        .expect("fixed metamodel")
        .containment_many("nodes", "Node")
        .expect("fixed metamodel");
    b.class("Node")
        .expect("fixed metamodel")
        .supertype("Named")
        .expect("fixed metamodel")
        .attribute("cpu_hz", DataType::Int, true)
        .expect("fixed metamodel")
        .containment_many("actors", "Actor")
        .expect("fixed metamodel");
    b.class("Actor")
        .expect("fixed metamodel")
        .supertype("Named")
        .expect("fixed metamodel")
        .attribute("period_ns", DataType::Int, true)
        .expect("fixed metamodel")
        .attribute("deadline_ns", DataType::Int, true)
        .expect("fixed metamodel")
        .attribute("offset_ns", DataType::Int, true)
        .expect("fixed metamodel")
        .attribute("priority", DataType::Int, true)
        .expect("fixed metamodel")
        .containment_many("ports", "SignalPort")
        .expect("fixed metamodel")
        .containment_many("blocks", "FunctionBlock")
        .expect("fixed metamodel")
        .containment_many("connections", "Connection")
        .expect("fixed metamodel");
    b.class("SignalPort")
        .expect("fixed metamodel")
        .supertype("Named")
        .expect("fixed metamodel")
        .attribute("ty", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("label", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("direction", DataType::Str, true)
        .expect("fixed metamodel");
    b.class("FunctionBlock")
        .expect("fixed metamodel")
        .set_abstract(true)
        .supertype("Named")
        .expect("fixed metamodel");
    b.class("BasicBlock")
        .expect("fixed metamodel")
        .supertype("FunctionBlock")
        .expect("fixed metamodel")
        .attribute("op", DataType::Str, true)
        .expect("fixed metamodel");
    b.class("StateMachineBlock")
        .expect("fixed metamodel")
        .supertype("FunctionBlock")
        .expect("fixed metamodel")
        .containment_many("states", "State")
        .expect("fixed metamodel")
        .containment_many("transitions", "Transition")
        .expect("fixed metamodel");
    b.class("State")
        .expect("fixed metamodel")
        .supertype("Named")
        .expect("fixed metamodel")
        .attribute("initial", DataType::Bool, true)
        .expect("fixed metamodel")
        .attribute("entry", DataType::List(Box::new(DataType::Str)), false)
        .expect("fixed metamodel")
        .attribute("during", DataType::List(Box::new(DataType::Str)), false)
        .expect("fixed metamodel");
    b.class("Transition")
        .expect("fixed metamodel")
        .attribute("guard", DataType::Str, true)
        .expect("fixed metamodel")
        .cross_required("source", "State")
        .expect("fixed metamodel")
        .cross_required("target", "State")
        .expect("fixed metamodel");
    b.class("ModalBlock")
        .expect("fixed metamodel")
        .supertype("FunctionBlock")
        .expect("fixed metamodel")
        .containment_many("modes", "Mode")
        .expect("fixed metamodel");
    b.class("Mode")
        .expect("fixed metamodel")
        .supertype("Named")
        .expect("fixed metamodel")
        .containment_many("blocks", "FunctionBlock")
        .expect("fixed metamodel")
        .containment_many("connections", "Connection")
        .expect("fixed metamodel");
    b.class("CompositeBlock")
        .expect("fixed metamodel")
        .supertype("FunctionBlock")
        .expect("fixed metamodel")
        .containment_many("blocks", "FunctionBlock")
        .expect("fixed metamodel")
        .containment_many("connections", "Connection")
        .expect("fixed metamodel");
    b.class("Connection")
        .expect("fixed metamodel")
        .attribute("from", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("to", DataType::Str, true)
        .expect("fixed metamodel");
    b.build().expect("fixed metamodel")
}

fn endpoint_str_source(s: &Source) -> String {
    match s {
        Source::Input(p) => p.clone(),
        Source::Block { block, port } => format!("{block}.{port}"),
    }
}

fn endpoint_str_sink(s: &Sink) -> String {
    match s {
        Sink::Output(p) => p.clone(),
        Sink::Block { block, port } => format!("{block}.{port}"),
    }
}

fn export_connections(
    model: &mut Model,
    parent: ObjectId,
    connections: &[Connection],
) -> Result<(), ModelError> {
    for c in connections {
        let obj = model.create("Connection")?;
        model.set_attr(obj, "from", Value::from(endpoint_str_source(&c.from)))?;
        model.set_attr(obj, "to", Value::from(endpoint_str_sink(&c.to)))?;
        model.add_child(parent, "connections", obj)?;
    }
    Ok(())
}

fn export_network_blocks(
    model: &mut Model,
    parent: ObjectId,
    net: &Network,
) -> Result<(), ModelError> {
    for inst in &net.blocks {
        let obj = match &inst.block {
            Block::Basic(op) => {
                let obj = model.create("BasicBlock")?;
                let op_name = format!("{op:?}");
                let short = op_name
                    .split([' ', '(', '{'])
                    .next()
                    .unwrap_or("Basic")
                    .to_owned();
                model.set_attr(obj, "op", Value::from(short))?;
                obj
            }
            Block::StateMachine(fsm) => {
                let obj = model.create("StateMachineBlock")?;
                let mut state_ids = Vec::with_capacity(fsm.states.len());
                for (si, s) in fsm.states.iter().enumerate() {
                    let sobj = model.create("State")?;
                    model.set_attr(sobj, "name", Value::from(s.name.as_str()))?;
                    model.set_attr(sobj, "initial", Value::Bool(si == fsm.initial))?;
                    let entry: Value = s
                        .entry
                        .iter()
                        .map(|a| format!("{} = {}", a.output, a.expr))
                        .collect();
                    model.set_attr(sobj, "entry", entry)?;
                    let during: Value = s
                        .during
                        .iter()
                        .map(|a| format!("{} = {}", a.output, a.expr))
                        .collect();
                    model.set_attr(sobj, "during", during)?;
                    model.add_child(obj, "states", sobj)?;
                    state_ids.push(sobj);
                }
                for t in &fsm.transitions {
                    let tobj = model.create("Transition")?;
                    model.set_attr(tobj, "guard", Value::from(t.guard.to_string()))?;
                    model.add_ref(tobj, "source", state_ids[t.from])?;
                    model.add_ref(tobj, "target", state_ids[t.to])?;
                    model.add_child(obj, "transitions", tobj)?;
                }
                obj
            }
            Block::Modal(m) => {
                let obj = model.create("ModalBlock")?;
                for mode in &m.modes {
                    let mobj = model.create("Mode")?;
                    model.set_attr(mobj, "name", Value::from(mode.name.as_str()))?;
                    export_network_blocks(model, mobj, &mode.network)?;
                    export_connections(model, mobj, &mode.network.connections)?;
                    model.add_child(obj, "modes", mobj)?;
                }
                obj
            }
            Block::Composite(c) => {
                let obj = model.create("CompositeBlock")?;
                export_network_blocks(model, obj, &c.network)?;
                export_connections(model, obj, &c.network.connections)?;
                obj
            }
        };
        model.set_attr(obj, "name", Value::from(inst.name.as_str()))?;
        model.add_child(parent, "blocks", obj)?;
    }
    Ok(())
}

fn export_actor(model: &mut Model, parent: ObjectId, actor: &Actor) -> Result<(), ModelError> {
    let obj = model.create("Actor")?;
    model.set_attr(obj, "name", Value::from(actor.name.as_str()))?;
    model.set_attr(obj, "period_ns", Value::Int(actor.timing.period_ns as i64))?;
    model.set_attr(
        obj,
        "deadline_ns",
        Value::Int(actor.timing.deadline_ns as i64),
    )?;
    model.set_attr(obj, "offset_ns", Value::Int(actor.timing.offset_ns as i64))?;
    model.set_attr(obj, "priority", Value::Int(actor.timing.priority as i64))?;
    for (binding, dir) in actor
        .inputs
        .iter()
        .map(|i| ((&i.port, &i.label), "in"))
        .chain(actor.outputs.iter().map(|o| ((&o.port, &o.label), "out")))
    {
        let (port, label) = binding;
        let pobj = model.create("SignalPort")?;
        model.set_attr(pobj, "name", Value::from(port.name.as_str()))?;
        model.set_attr(pobj, "ty", Value::from(port.ty.to_string()))?;
        model.set_attr(pobj, "label", Value::from(label.as_str()))?;
        model.set_attr(pobj, "direction", Value::from(dir))?;
        model.add_child(obj, "ports", pobj)?;
    }
    export_network_blocks(model, obj, &actor.network)?;
    export_connections(model, obj, &actor.network.connections)?;
    model.add_child(parent, "actors", obj)?;
    Ok(())
}

/// Reflects a validated COMDES system into a conforming metamodel
/// instance.
///
/// # Errors
///
/// Returns [`ComdesError`] if the system fails validation, or wraps a
/// [`ModelError`] (which cannot occur for validated systems).
pub fn export_system(system: &System) -> Result<(Arc<Metamodel>, Model), ComdesError> {
    system.check()?;
    let mm = Arc::new(comdes_metamodel());
    let mut model = Model::new(mm.clone());
    let wrap = |e: ModelError| ComdesError::BadSystem(format!("export failed: {e}"));
    let root = model.create("System").map_err(wrap)?;
    model
        .set_attr(root, "name", Value::from(system.name.as_str()))
        .map_err(wrap)?;
    for node in &system.nodes {
        let nobj = model.create("Node").map_err(wrap)?;
        model
            .set_attr(nobj, "name", Value::from(node.name.as_str()))
            .map_err(wrap)?;
        model
            .set_attr(nobj, "cpu_hz", Value::Int(node.cpu_hz as i64))
            .map_err(wrap)?;
        for actor in &node.actors {
            export_actor(&mut model, nobj, actor).map_err(wrap)?;
        }
        model.add_child(root, "nodes", nobj).map_err(wrap)?;
    }
    Ok((mm, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorBuilder, Timing};
    use crate::expr::Expr;
    use crate::fsm::FsmBuilder;
    use crate::network::NetworkBuilder;
    use crate::signal::Port;
    use crate::system::NodeSpec;
    use gmdf_metamodel::ElementPath;

    fn fsm_system() -> System {
        let fsm = FsmBuilder::new()
            .input(Port::boolean("go"))
            .output(Port::boolean("on"))
            .state("Idle", |s| s.entry("on", Expr::Bool(false)))
            .state("Run", |s| s.entry("on", Expr::Bool(true)))
            .transition("Idle", "Run", Expr::var("go"))
            .transition("Run", "Idle", Expr::var("go").not())
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .input(Port::boolean("go"))
            .output(Port::boolean("on"))
            .state_machine("ctl", fsm)
            .connect("go", "ctl.go")
            .unwrap()
            .connect("ctl.on", "on")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("Heater", net)
            .input("go", "switch")
            .output("on", "relay")
            .timing(Timing::periodic(5_000_000, 1))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("node0", 48_000_000);
        node.actors.push(actor);
        System::new("demo").with_node(node)
    }

    #[test]
    fn exports_conformant_model() {
        let sys = fsm_system();
        let (_, model) = export_system(&sys).unwrap();
        let report = gmdf_metamodel::validate(&model);
        assert!(report.is_conformant(), "{report}");
    }

    #[test]
    fn element_paths_match_interpreter_convention() {
        let sys = fsm_system();
        let (_, model) = export_system(&sys).unwrap();
        // The interpreter emits events with block_path "Heater/ctl" and
        // state names; the exported model must resolve the state path.
        let path: ElementPath = "demo/node0/Heater/ctl/Run".parse().unwrap();
        let obj = path.resolve(&model);
        assert!(obj.is_some(), "state path must resolve in exported model");
        assert_eq!(model.class_name_of(obj.unwrap()), "State");
    }

    #[test]
    fn transitions_reference_states() {
        let sys = fsm_system();
        let (_, model) = export_system(&sys).unwrap();
        let transitions = model.objects_of_class("Transition");
        assert_eq!(transitions.len(), 2);
        for t in transitions {
            let src = model.ref_one(t, "source").unwrap().unwrap();
            let dst = model.ref_one(t, "target").unwrap().unwrap();
            assert_eq!(model.class_name_of(src), "State");
            assert_eq!(model.class_name_of(dst), "State");
            assert!(model.attr(t, "guard").unwrap().is_some());
        }
    }

    #[test]
    fn initial_state_flagged() {
        let sys = fsm_system();
        let (_, model) = export_system(&sys).unwrap();
        let states = model.objects_of_class("State");
        let initials: Vec<_> = states
            .iter()
            .filter(|&&s| model.attr(s, "initial").unwrap() == Some(&Value::Bool(true)))
            .collect();
        assert_eq!(initials.len(), 1);
        assert_eq!(model.name_of(*initials[0]), Some("Idle"));
    }

    #[test]
    fn ports_and_timing_exported() {
        let sys = fsm_system();
        let (_, model) = export_system(&sys).unwrap();
        let actor = model.objects_of_class("Actor")[0];
        assert_eq!(
            model.attr(actor, "period_ns").unwrap(),
            Some(&Value::Int(5_000_000))
        );
        let ports = model.refs(actor, "ports").unwrap();
        assert_eq!(ports.len(), 2);
        let labels: Vec<_> = ports
            .iter()
            .map(|&p| {
                model
                    .attr(p, "label")
                    .unwrap()
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert_eq!(labels, ["switch", "relay"]);
    }

    #[test]
    fn connections_exported_as_strings() {
        let sys = fsm_system();
        let (_, model) = export_system(&sys).unwrap();
        let conns = model.objects_of_class("Connection");
        assert_eq!(conns.len(), 2);
        let froms: Vec<_> = conns
            .iter()
            .map(|&c| {
                model
                    .attr(c, "from")
                    .unwrap()
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert!(froms.contains(&"go".to_owned()));
        assert!(froms.contains(&"ctl.on".to_owned()));
    }

    #[test]
    fn metamodel_is_reusable() {
        let mm = comdes_metamodel();
        assert_eq!(mm.name(), COMDES_METAMODEL);
        assert!(mm.class_by_name("ModalBlock").is_some());
        assert!(mm.class_by_name("CompositeBlock").is_some());
        // FunctionBlock is abstract.
        let fb = mm.class_by_name("FunctionBlock").unwrap();
        assert!(mm.class(fb).is_abstract);
    }
}
