//! Expression language for guards, actions and generic computation blocks.
//!
//! COMDES specifies component behaviour "in terms of functions relating
//! input to output signals" (paper §III). This module provides the side-
//! effect-free expression AST those functions, guards and state actions are
//! written in, together with static type checking and evaluation.
//!
//! Semantics notes (mirrored exactly by the bytecode compiler, which is
//! property-tested against [`Expr::eval`]):
//! * `and` / `or` are **strict** (both operands evaluated) — expressions
//!   are pure, so only cost differs;
//! * mixed `int`/`real` arithmetic widens the `int` operand;
//! * `/` and `%` on integers follow Rust semantics and yield 0 on division
//!   by zero (the target VM traps-to-zero rather than faulting);
//! * comparisons on mixed numeric operands compare as `real`.

use crate::error::ComdesError;
use crate::signal::{SignalType, SignalValue};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation (`int` or `real`).
    Neg,
    /// Logical negation (`bool`).
    Not,
    /// Absolute value (`int` or `real`).
    Abs,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on `int`; 0 on division by zero).
    Div,
    /// Remainder (`int` only; 0 on division by zero).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Logical and (strict).
    And,
    /// Logical or (strict).
    Or,
    /// Logical exclusive-or.
    Xor,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
}

impl BinOp {
    /// `true` for `Lt/Le/Gt/Ge/Eq/Ne`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// `true` for `And/Or/Xor`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor)
    }
}

/// A side-effect-free expression over named signal variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// Named variable (an input port, latched signal or builtin).
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional: `if c { t } else { e }` (both arms same type).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Explicit `int`/`bool` → `real` conversion.
    ToReal(Box<Expr>),
    /// Explicit `real` → `int` conversion (truncation toward zero).
    ToInt(Box<Expr>),
}

// The fluent builder methods below intentionally shadow `std::ops` names
// (`add`, `mul`, `neg`, `not`, …): they build AST nodes rather than compute,
// and the DSL reads naturally at model-construction sites. Operator
// overloading is deliberately avoided (C-OVERLOAD): `a + b` computing
// nothing would be more surprising than `a.add(b)` building a node.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self && rhs` (strict).
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// `self || rhs` (strict).
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// `!self`.
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    /// All variable names referenced, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(n) if !out.contains(n) => {
                out.push(n.clone());
            }
            Expr::Unary(_, e) | Expr::ToReal(e) | Expr::ToInt(e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::If(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
            _ => {}
        }
    }

    /// Infers the expression's type under `env` (variable name → type).
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::TypeError`] for unbound variables and operator
    /// misuse, with a message naming the offending subexpression.
    pub fn infer_type(
        &self,
        env: &BTreeMap<String, SignalType>,
    ) -> Result<SignalType, ComdesError> {
        use SignalType::*;
        match self {
            Expr::Bool(_) => Ok(Bool),
            Expr::Int(_) => Ok(Int),
            Expr::Real(_) => Ok(Real),
            Expr::Var(n) => env
                .get(n)
                .copied()
                .ok_or_else(|| ComdesError::TypeError(format!("unbound variable `{n}`"))),
            Expr::Unary(op, e) => {
                let t = e.infer_type(env)?;
                match (op, t) {
                    (UnOp::Neg | UnOp::Abs, Int) => Ok(Int),
                    (UnOp::Neg | UnOp::Abs, Real) => Ok(Real),
                    (UnOp::Not, Bool) => Ok(Bool),
                    _ => Err(ComdesError::TypeError(format!(
                        "{op:?} cannot apply to {t}"
                    ))),
                }
            }
            Expr::Binary(op, a, b) => {
                let ta = a.infer_type(env)?;
                let tb = b.infer_type(env)?;
                if op.is_logical() {
                    return if ta == Bool && tb == Bool {
                        Ok(Bool)
                    } else {
                        Err(ComdesError::TypeError(format!(
                            "{op:?} needs bool operands"
                        )))
                    };
                }
                if op.is_comparison() {
                    return match (ta, tb) {
                        (Bool, Bool) if matches!(op, BinOp::Eq | BinOp::Ne) => Ok(Bool),
                        (Int, Int) | (Real, Real) | (Int, Real) | (Real, Int) => Ok(Bool),
                        _ => Err(ComdesError::TypeError(format!(
                            "{op:?} cannot compare {ta} with {tb}"
                        ))),
                    };
                }
                // Arithmetic.
                match (ta, tb) {
                    (Int, Int) => Ok(Int),
                    (Real, Real) | (Int, Real) | (Real, Int) => {
                        if matches!(op, BinOp::Rem) {
                            Err(ComdesError::TypeError("% needs int operands".into()))
                        } else {
                            Ok(Real)
                        }
                    }
                    _ => Err(ComdesError::TypeError(format!(
                        "{op:?} cannot apply to {ta} and {tb}"
                    ))),
                }
            }
            Expr::If(c, t, e) => {
                if c.infer_type(env)? != Bool {
                    return Err(ComdesError::TypeError("if condition must be bool".into()));
                }
                let tt = t.infer_type(env)?;
                let te = e.infer_type(env)?;
                match (tt, te) {
                    _ if tt == te => Ok(tt),
                    (Int, Real) | (Real, Int) => Ok(Real),
                    _ => Err(ComdesError::TypeError(format!(
                        "if arms have incompatible types {tt} and {te}"
                    ))),
                }
            }
            Expr::ToReal(e) => match e.infer_type(env)? {
                Bool | Int | Real => Ok(Real),
            },
            Expr::ToInt(e) => match e.infer_type(env)? {
                Real | Int => Ok(Int),
                Bool => Ok(Int),
            },
        }
    }

    /// Evaluates the expression under `env` (variable name → value).
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::Eval`] for unbound variables; type errors
    /// surface as `Eval` too (call [`infer_type`](Self::infer_type) first
    /// for static checking).
    pub fn eval(&self, env: &BTreeMap<String, SignalValue>) -> Result<SignalValue, ComdesError> {
        use SignalValue::*;
        let num = |v: SignalValue| -> Result<f64, ComdesError> {
            v.as_real()
                .ok_or_else(|| ComdesError::Eval(format!("expected numeric, got {v}")))
        };
        match self {
            Expr::Bool(b) => Ok(Bool(*b)),
            Expr::Int(i) => Ok(Int(*i)),
            Expr::Real(r) => Ok(Real(*r)),
            Expr::Var(n) => env
                .get(n)
                .copied()
                .ok_or_else(|| ComdesError::Eval(format!("unbound variable `{n}`"))),
            Expr::Unary(op, e) => {
                let v = e.eval(env)?;
                match (op, v) {
                    (UnOp::Neg, Int(i)) => Ok(Int(i.wrapping_neg())),
                    (UnOp::Neg, Real(r)) => Ok(Real(-r)),
                    (UnOp::Abs, Int(i)) => Ok(Int(i.wrapping_abs())),
                    (UnOp::Abs, Real(r)) => Ok(Real(r.abs())),
                    (UnOp::Not, Bool(b)) => Ok(Bool(!b)),
                    _ => Err(ComdesError::Eval(format!("{op:?} cannot apply to {v}"))),
                }
            }
            Expr::Binary(op, a, b) => {
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                if op.is_logical() {
                    let (x, y) = match (va, vb) {
                        (Bool(x), Bool(y)) => (x, y),
                        _ => return Err(ComdesError::Eval("logical op needs bools".into())),
                    };
                    return Ok(Bool(match op {
                        BinOp::And => x && y,
                        BinOp::Or => x || y,
                        BinOp::Xor => x ^ y,
                        _ => unreachable!(),
                    }));
                }
                if op.is_comparison() {
                    return match (va, vb) {
                        (Bool(x), Bool(y)) => match op {
                            BinOp::Eq => Ok(Bool(x == y)),
                            BinOp::Ne => Ok(Bool(x != y)),
                            _ => Err(ComdesError::Eval("cannot order bools".into())),
                        },
                        (Int(x), Int(y)) => Ok(Bool(cmp_ord(*op, &x, &y))),
                        _ => {
                            let (x, y) = (num(va)?, num(vb)?);
                            Ok(Bool(cmp_real(*op, x, y)))
                        }
                    };
                }
                // Arithmetic.
                match (va, vb) {
                    (Int(x), Int(y)) => Ok(Int(int_arith(*op, x, y)?)),
                    _ => {
                        let (x, y) = (num(va)?, num(vb)?);
                        Ok(Real(real_arith(*op, x, y)?))
                    }
                }
            }
            Expr::If(c, t, e) => {
                let cond = c
                    .eval(env)?
                    .as_bool()
                    .ok_or_else(|| ComdesError::Eval("if condition must be bool".into()))?;
                // Strict evaluation of both arms keeps cost deterministic and
                // mirrors the generated straight-line code path count.
                let vt = t.eval(env)?;
                let ve = e.eval(env)?;
                let pick = if cond { vt } else { ve };
                // Unify mixed int/real arms to real, matching infer_type.
                match (vt, ve) {
                    (Int(_), Real(_)) | (Real(_), Int(_)) => Ok(Real(num(pick)?)),
                    _ => Ok(pick),
                }
            }
            Expr::ToReal(e) => {
                let v = e.eval(env)?;
                match v {
                    Bool(b) => Ok(Real(if b { 1.0 } else { 0.0 })),
                    Int(i) => Ok(Real(i as f64)),
                    Real(r) => Ok(Real(r)),
                }
            }
            Expr::ToInt(e) => {
                let v = e.eval(env)?;
                match v {
                    Bool(b) => Ok(Int(b as i64)),
                    Int(i) => Ok(Int(i)),
                    Real(r) => Ok(Int(trunc_to_int(r))),
                }
            }
        }
    }
}

/// Truncation used by `ToInt`: toward zero, saturating at i64 bounds, 0 for
/// NaN — mirrored by the VM's `F2I` instruction.
pub fn trunc_to_int(r: f64) -> i64 {
    if r.is_nan() {
        0
    } else if r >= i64::MAX as f64 {
        i64::MAX
    } else if r <= i64::MIN as f64 {
        i64::MIN
    } else {
        r as i64
    }
}

fn cmp_ord<T: PartialOrd + PartialEq>(op: BinOp, x: &T, y: &T) -> bool {
    match op {
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        _ => unreachable!(),
    }
}

fn cmp_real(op: BinOp, x: f64, y: f64) -> bool {
    cmp_ord(op, &x, &y)
}

/// Integer arithmetic with wrap-on-overflow and 0-on-div-by-zero, matching
/// the VM's integer ALU.
fn int_arith(op: BinOp, x: i64, y: i64) -> Result<i64, ComdesError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::Rem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        _ => {
            return Err(ComdesError::Eval(format!(
                "{op:?} is not integer arithmetic"
            )))
        }
    })
}

fn real_arith(op: BinOp, x: f64, y: f64) -> Result<f64, ComdesError> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::Rem => return Err(ComdesError::Eval("% needs int operands".into())),
        _ => return Err(ComdesError::Eval(format!("{op:?} is not arithmetic"))),
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Real(r) => write!(f, "{r}"),
            Expr::Var(n) => write!(f, "{n}"),
            Expr::Unary(op, e) => match op {
                UnOp::Neg => write!(f, "(-{e})"),
                UnOp::Not => write!(f, "(!{e})"),
                UnOp::Abs => write!(f, "abs({e})"),
            },
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Min => return write!(f, "min({a}, {b})"),
                    BinOp::Max => return write!(f, "max({a}, {b})"),
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Xor => "^",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::ToReal(e) => write!(f, "real({e})"),
            Expr::ToInt(e) => write!(f, "int({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_t(pairs: &[(&str, SignalType)]) -> BTreeMap<String, SignalType> {
        pairs.iter().map(|(n, t)| (n.to_string(), *t)).collect()
    }

    fn env_v(pairs: &[(&str, SignalValue)]) -> BTreeMap<String, SignalValue> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn literal_types_and_values() {
        let env = BTreeMap::new();
        assert_eq!(
            Expr::Int(3).infer_type(&env_t(&[])).unwrap(),
            SignalType::Int
        );
        assert_eq!(Expr::Real(1.5).eval(&env).unwrap(), SignalValue::Real(1.5));
    }

    #[test]
    fn arithmetic_widening() {
        let te = env_t(&[("x", SignalType::Int), ("y", SignalType::Real)]);
        let e = Expr::var("x").add(Expr::var("y"));
        assert_eq!(e.infer_type(&te).unwrap(), SignalType::Real);
        let ve = env_v(&[("x", 2i64.into()), ("y", 0.5.into())]);
        assert_eq!(e.eval(&ve).unwrap(), SignalValue::Real(2.5));
    }

    #[test]
    fn integer_division_by_zero_yields_zero() {
        let e = Expr::Int(7).div(Expr::Int(0));
        assert_eq!(e.eval(&BTreeMap::new()).unwrap(), SignalValue::Int(0));
        let e = Expr::Binary(BinOp::Rem, Box::new(Expr::Int(7)), Box::new(Expr::Int(0)));
        assert_eq!(e.eval(&BTreeMap::new()).unwrap(), SignalValue::Int(0));
    }

    #[test]
    fn integer_overflow_wraps() {
        let e = Expr::Int(i64::MAX).add(Expr::Int(1));
        assert_eq!(
            e.eval(&BTreeMap::new()).unwrap(),
            SignalValue::Int(i64::MIN)
        );
    }

    #[test]
    fn comparisons_mixed_numeric() {
        let e = Expr::Int(2).lt(Expr::Real(2.5));
        assert_eq!(e.infer_type(&env_t(&[])).unwrap(), SignalType::Bool);
        assert_eq!(e.eval(&BTreeMap::new()).unwrap(), SignalValue::Bool(true));
    }

    #[test]
    fn bool_equality_but_not_order() {
        let eq = Expr::Bool(true).eq_(Expr::Bool(false));
        assert_eq!(eq.eval(&BTreeMap::new()).unwrap(), SignalValue::Bool(false));
        let lt = Expr::Bool(true).lt(Expr::Bool(false));
        assert!(lt.infer_type(&env_t(&[])).is_err());
    }

    #[test]
    fn logical_ops() {
        let e = Expr::Bool(true).and(Expr::Bool(false)).or(Expr::Bool(true));
        assert_eq!(e.eval(&BTreeMap::new()).unwrap(), SignalValue::Bool(true));
        let bad = Expr::Int(1).and(Expr::Bool(true));
        assert!(bad.infer_type(&env_t(&[])).is_err());
    }

    #[test]
    fn if_expression_unifies_arms() {
        let e = Expr::If(
            Box::new(Expr::Bool(true)),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Real(2.0)),
        );
        assert_eq!(e.infer_type(&env_t(&[])).unwrap(), SignalType::Real);
        assert_eq!(e.eval(&BTreeMap::new()).unwrap(), SignalValue::Real(1.0));
    }

    #[test]
    fn if_condition_must_be_bool() {
        let e = Expr::If(
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(2)),
        );
        assert!(e.infer_type(&env_t(&[])).is_err());
        assert!(e.eval(&BTreeMap::new()).is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(
            Expr::ToReal(Box::new(Expr::Bool(true)))
                .eval(&BTreeMap::new())
                .unwrap(),
            SignalValue::Real(1.0)
        );
        assert_eq!(
            Expr::ToInt(Box::new(Expr::Real(-2.7)))
                .eval(&BTreeMap::new())
                .unwrap(),
            SignalValue::Int(-2)
        );
        assert_eq!(trunc_to_int(f64::NAN), 0);
        assert_eq!(trunc_to_int(1e300), i64::MAX);
        assert_eq!(trunc_to_int(-1e300), i64::MIN);
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::var("ghost");
        assert!(e.infer_type(&env_t(&[])).is_err());
        assert!(e.eval(&BTreeMap::new()).is_err());
    }

    #[test]
    fn free_vars_in_order_no_dupes() {
        let e = Expr::var("b").add(Expr::var("a")).mul(Expr::var("b"));
        assert_eq!(e.free_vars(), ["b", "a"]);
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::var("x").add(Expr::Int(1)).ge(Expr::Real(3.0));
        assert_eq!(e.to_string(), "((x + 1) >= 3)");
        let m = Expr::Binary(
            BinOp::Min,
            Box::new(Expr::var("a")),
            Box::new(Expr::var("b")),
        );
        assert_eq!(m.to_string(), "min(a, b)");
    }

    #[test]
    fn neg_abs() {
        assert_eq!(
            Expr::Int(-5).neg().eval(&BTreeMap::new()).unwrap(),
            SignalValue::Int(5)
        );
        assert_eq!(
            Expr::Unary(UnOp::Abs, Box::new(Expr::Real(-2.5)))
                .eval(&BTreeMap::new())
                .unwrap(),
            SignalValue::Real(2.5)
        );
        assert_eq!(
            Expr::Unary(UnOp::Abs, Box::new(Expr::Int(i64::MIN)))
                .eval(&BTreeMap::new())
                .unwrap(),
            SignalValue::Int(i64::MIN) // wrapping_abs
        );
    }
}
