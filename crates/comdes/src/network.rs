//! Dataflow networks of function blocks, plus the composite and modal
//! blocks that nest them.
//!
//! "Actors are modeled as component networks that are configured from
//! prefabricated executable components" (paper §III). A [`Network`] is such
//! a component network: exported input/output ports, named block
//! instances, and point-to-point connections. Networks nest through
//! [`CompositeBlock`] (plain hierarchy) and [`ModalBlock`] (one
//! sub-network per mode, selected by an integer `mode` input — the
//! heterogeneous "state instance invokes a dataflow instance" pattern of
//! paper §II is a state-machine block feeding a modal block's selector).

use crate::block::BasicOp;
use crate::error::ComdesError;
use crate::fsm::StateMachineBlock;
use crate::signal::{Port, SignalType};
use serde::{Deserialize, Serialize};

/// A function block: basic, state-machine, modal or composite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Block {
    /// A prefabricated basic block.
    Basic(BasicOp),
    /// A state-machine block.
    StateMachine(StateMachineBlock),
    /// A modal block (mode-selected sub-networks).
    Modal(ModalBlock),
    /// A composite block (one nested sub-network).
    Composite(CompositeBlock),
}

impl Block {
    /// Input port signature.
    pub fn inputs(&self) -> Vec<Port> {
        match self {
            Block::Basic(op) => op.inputs(),
            Block::StateMachine(fsm) => fsm.inputs.clone(),
            Block::Modal(m) => {
                let mut v = vec![Port::int("mode")];
                v.extend(m.data_inputs.iter().cloned());
                v
            }
            Block::Composite(c) => c.network.inputs.clone(),
        }
    }

    /// Output port signature.
    pub fn outputs(&self) -> Vec<Port> {
        match self {
            Block::Basic(op) => op.outputs(),
            Block::StateMachine(fsm) => fsm.outputs.clone(),
            Block::Modal(m) => m.outputs.clone(),
            Block::Composite(c) => c.network.outputs.clone(),
        }
    }

    /// `false` only for loop-breaking blocks (currently
    /// [`BasicOp::UnitDelay`]).
    pub fn has_direct_feedthrough(&self) -> bool {
        match self {
            Block::Basic(op) => op.has_direct_feedthrough(),
            _ => true,
        }
    }

    /// Structural well-formedness of the block itself (recursive).
    ///
    /// # Errors
    ///
    /// Propagates nested network / state machine / modal errors.
    pub fn check(&self) -> Result<(), ComdesError> {
        match self {
            Block::Basic(op) => check_basic(op),
            Block::StateMachine(fsm) => fsm.check(),
            Block::Modal(m) => m.check(),
            Block::Composite(c) => c.network.check(),
        }
    }
}

fn check_basic(op: &BasicOp) -> Result<(), ComdesError> {
    match op {
        BasicOp::MovingAverage { window } if *window == 0 => Err(ComdesError::TypeError(
            "moving average window must be >= 1".into(),
        )),
        BasicOp::LowPass { alpha } if !(*alpha > 0.0 && *alpha <= 1.0) => Err(
            ComdesError::TypeError("low-pass alpha must be in (0, 1]".into()),
        ),
        BasicOp::Limit { lo, hi } | BasicOp::Pid { lo, hi, .. } if lo > hi => {
            Err(ComdesError::TypeError("limit lo must be <= hi".into()))
        }
        BasicOp::Counter { min, max, .. } if min > max => {
            Err(ComdesError::TypeError("counter min must be <= max".into()))
        }
        BasicOp::PulseGen { period, duty } if !(*period > 0.0 && (0.0..=1.0).contains(duty)) => {
            Err(ComdesError::TypeError(
                "pulse generator needs period > 0 and duty in [0, 1]".into(),
            ))
        }
        BasicOp::Func { inputs, outputs } => {
            let env: std::collections::BTreeMap<String, SignalType> =
                inputs.iter().map(|p| (p.name.clone(), p.ty)).collect();
            for (port, expr) in outputs {
                let ty = expr.infer_type(&env)?;
                let ok = ty == port.ty || (ty == SignalType::Int && port.ty == SignalType::Real);
                if !ok {
                    return Err(ComdesError::TypeError(format!(
                        "func output `{}` has type {ty}, port is {}",
                        port.name, port.ty
                    )));
                }
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// One mode of a [`ModalBlock`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mode {
    /// Mode name (used in debug events and GDM animation).
    pub name: String,
    /// The sub-network active in this mode. Its port signature must equal
    /// the modal block's (`data_inputs` → `outputs`).
    pub network: Network,
}

/// A modal function block: an integer `mode` input selects which
/// sub-network executes; inactive modes hold their state frozen. Out-of-
/// range selectors clamp to the valid range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModalBlock {
    /// Data inputs forwarded to the active mode's network (the implicit
    /// `mode: int` selector input is prepended by [`Block::inputs`]).
    pub data_inputs: Vec<Port>,
    /// Outputs (shared signature across modes).
    pub outputs: Vec<Port>,
    /// Modes, selected by index.
    pub modes: Vec<Mode>,
}

impl ModalBlock {
    /// Checks mode count and per-mode signature conformance (recursive).
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::BadModal`] on signature mismatch or zero
    /// modes.
    pub fn check(&self) -> Result<(), ComdesError> {
        if self.modes.is_empty() {
            return Err(ComdesError::BadModal("no modes".into()));
        }
        for mode in &self.modes {
            if mode.network.inputs != self.data_inputs {
                return Err(ComdesError::BadModal(format!(
                    "mode `{}` input signature differs from the modal block's",
                    mode.name
                )));
            }
            if mode.network.outputs != self.outputs {
                return Err(ComdesError::BadModal(format!(
                    "mode `{}` output signature differs from the modal block's",
                    mode.name
                )));
            }
            mode.network.check()?;
        }
        Ok(())
    }

    /// Clamps a raw selector value to a valid mode index.
    pub fn clamp_mode(&self, raw: i64) -> usize {
        raw.clamp(0, self.modes.len() as i64 - 1) as usize
    }
}

/// A composite function block: a nested network with exported ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeBlock {
    /// The nested network.
    pub network: Network,
}

/// A named block instance within a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockInstance {
    /// Instance name, unique within the network.
    pub name: String,
    /// The block.
    pub block: Block,
}

/// A connection source: a network input port or a block output port.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// The network's exported input port.
    Input(String),
    /// A block instance's output port.
    Block {
        /// Block instance name.
        block: String,
        /// Output port name.
        port: String,
    },
}

/// A connection sink: a network output port or a block input port.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sink {
    /// The network's exported output port.
    Output(String),
    /// A block instance's input port.
    Block {
        /// Block instance name.
        block: String,
        /// Input port name.
        port: String,
    },
}

/// A directed connection between a source and a sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Where the value comes from.
    pub from: Source,
    /// Where the value goes.
    pub to: Sink,
}

/// A dataflow network: exported ports, block instances and connections.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Network {
    /// Exported input ports.
    pub inputs: Vec<Port>,
    /// Exported output ports.
    pub outputs: Vec<Port>,
    /// Block instances, in declaration order.
    pub blocks: Vec<BlockInstance>,
    /// Connections.
    pub connections: Vec<Connection>,
}

impl Network {
    /// Index of a block instance by name.
    pub fn block_index(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == name)
    }

    /// Type of a connection source.
    fn source_type(&self, s: &Source) -> Result<SignalType, ComdesError> {
        match s {
            Source::Input(p) => self
                .inputs
                .iter()
                .find(|q| q.name == *p)
                .map(|q| q.ty)
                .ok_or_else(|| ComdesError::BadConnection(format!("no network input `{p}`"))),
            Source::Block { block, port } => {
                let b = self
                    .block_index(block)
                    .ok_or_else(|| ComdesError::BadConnection(format!("no block `{block}`")))?;
                self.blocks[b]
                    .block
                    .outputs()
                    .iter()
                    .find(|q| q.name == *port)
                    .map(|q| q.ty)
                    .ok_or_else(|| {
                        ComdesError::BadConnection(format!("no output `{block}.{port}`"))
                    })
            }
        }
    }

    /// Type of a connection sink.
    fn sink_type(&self, s: &Sink) -> Result<SignalType, ComdesError> {
        match s {
            Sink::Output(p) => self
                .outputs
                .iter()
                .find(|q| q.name == *p)
                .map(|q| q.ty)
                .ok_or_else(|| ComdesError::BadConnection(format!("no network output `{p}`"))),
            Sink::Block { block, port } => {
                let b = self
                    .block_index(block)
                    .ok_or_else(|| ComdesError::BadConnection(format!("no block `{block}`")))?;
                self.blocks[b]
                    .block
                    .inputs()
                    .iter()
                    .find(|q| q.name == *port)
                    .map(|q| q.ty)
                    .ok_or_else(|| ComdesError::BadConnection(format!("no input `{block}.{port}`")))
            }
        }
    }

    /// Full structural validation: unique names, nested blocks, endpoint
    /// resolution, exact type matches, single driver per sink, every
    /// network output driven, and no algebraic loops.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), ComdesError> {
        for (i, b) in self.blocks.iter().enumerate() {
            if !gmdf_metamodel::is_valid_name(&b.name) {
                return Err(ComdesError::InvalidName(b.name.clone()));
            }
            if self.blocks[..i].iter().any(|p| p.name == b.name) {
                return Err(ComdesError::DuplicateName(b.name.clone()));
            }
            b.block.check()?;
        }
        for ports in [&self.inputs, &self.outputs] {
            for (i, p) in ports.iter().enumerate() {
                if ports[..i].iter().any(|q| q.name == p.name) {
                    return Err(ComdesError::DuplicateName(p.name.clone()));
                }
            }
        }
        let mut seen_sinks: Vec<&Sink> = Vec::new();
        for c in &self.connections {
            let st = self.source_type(&c.from)?;
            let tt = self.sink_type(&c.to)?;
            if st != tt {
                return Err(ComdesError::TypeError(format!(
                    "connection carries {st} into a {tt} sink"
                )));
            }
            if seen_sinks.contains(&&c.to) {
                let (block, port) = match &c.to {
                    Sink::Output(p) => ("<network>".to_owned(), p.clone()),
                    Sink::Block { block, port } => (block.clone(), port.clone()),
                };
                return Err(ComdesError::MultipleDrivers { block, port });
            }
            seen_sinks.push(&c.to);
        }
        for out in &self.outputs {
            let driven = self
                .connections
                .iter()
                .any(|c| matches!(&c.to, Sink::Output(p) if *p == out.name));
            if !driven {
                return Err(ComdesError::BadConnection(format!(
                    "network output `{}` is not driven",
                    out.name
                )));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Execution order over block indices, honoring direct-feedthrough
    /// dependencies. Loop-breaking blocks impose no input-before-step
    /// constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ComdesError::AlgebraicLoop`] naming a block on the cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, ComdesError> {
        let n = self.blocks.len();
        // adj[a] = blocks that must run after a.
        let mut indegree = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &self.connections {
            if let (Source::Block { block: fb, .. }, Sink::Block { block: tb, .. }) =
                (&c.from, &c.to)
            {
                let (a, b) = match (self.block_index(fb), self.block_index(tb)) {
                    (Some(a), Some(b)) => (a, b),
                    _ => continue, // caught by check()
                };
                if a != b && self.blocks[b].block.has_direct_feedthrough() {
                    adj[a].push(b);
                    indegree[b] += 1;
                }
                if a == b && self.blocks[b].block.has_direct_feedthrough() {
                    return Err(ComdesError::AlgebraicLoop(format!(
                        "block `{}` feeds itself",
                        self.blocks[b].name
                    )));
                }
            }
        }
        // Kahn's algorithm; among ready blocks pick lowest index so the
        // order (and thus generated code) is deterministic.
        let mut order = Vec::with_capacity(n);
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(i);
            for &j in &adj[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(std::cmp::Reverse(j));
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
            return Err(ComdesError::AlgebraicLoop(format!(
                "cycle through block `{}` (insert a UnitDelay)",
                self.blocks[stuck].name
            )));
        }
        Ok(order)
    }

    /// Block inputs with no driver (read as type zero at runtime); useful
    /// for lint-style warnings.
    pub fn undriven_block_inputs(&self) -> Vec<(String, String)> {
        // Lint calls this for every actor of a fleet on the server's
        // session-registration path, and the overwhelmingly common
        // answer is "nothing undriven". On a [`Network::check`]-ed
        // network every block sink resolves and has a single driver, so
        // equal counts of block-input ports and block-sink connections
        // prove exactly that without scanning per port. (On an
        // unchecked network with a double-driven sink the shortcut can
        // mask an undriven input — lint only sees validated systems.)
        let port_count = |b: &BlockInstance| match &b.block {
            Block::Basic(op) => op
                .input_names()
                .map_or_else(|| op.inputs().len(), <[&str]>::len),
            other => other.inputs().len(),
        };
        let input_ports: usize = self.blocks.iter().map(port_count).sum();
        let block_sinks = self
            .connections
            .iter()
            .filter(|c| matches!(&c.to, Sink::Block { .. }))
            .count();
        if input_ports == block_sinks {
            return Vec::new();
        }
        // Something is undriven: identify it. Networks are small (a
        // dozen connections), where a linear scan per port beats both
        // hashing and sort-plus-binary-search; the static port-name
        // tables avoid allocating `Vec<Port>` per basic block.
        let mut out = Vec::new();
        for b in &self.blocks {
            let mut check = |port: &str| {
                let driven = self.connections.iter().any(|c| {
                    matches!(&c.to, Sink::Block { block, port: p }
                        if *block == b.name && *p == port)
                });
                if !driven {
                    out.push((b.name.clone(), port.to_owned()));
                }
            };
            match &b.block {
                Block::Basic(op) => match op.input_names() {
                    Some(names) => names.iter().for_each(|n| check(n)),
                    None => op.inputs().iter().for_each(|p| check(&p.name)),
                },
                other => other.inputs().iter().for_each(|p| check(&p.name)),
            }
        }
        out
    }
}

/// Parses an endpoint string: `"port"` names a network port, and
/// `"block.port"` names a block port.
fn split_endpoint(s: &str) -> (Option<&str>, &str) {
    match s.split_once('.') {
        Some((b, p)) => (Some(b), p),
        None => (None, s),
    }
}

/// Fluent builder for [`Network`].
///
/// ```
/// use gmdf_comdes::{NetworkBuilder, BasicOp, Port};
///
/// # fn main() -> Result<(), gmdf_comdes::ComdesError> {
/// let net = NetworkBuilder::new()
///     .input(Port::real("x"))
///     .output(Port::real("y"))
///     .block("double", BasicOp::Gain { k: 2.0 })
///     .connect("x", "double.x")?
///     .connect("double.y", "y")?
///     .build()?;
/// assert_eq!(net.blocks.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    net: Network,
}

impl NetworkBuilder {
    /// Starts an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an exported input port.
    pub fn input(mut self, port: Port) -> Self {
        self.net.inputs.push(port);
        self
    }

    /// Declares an exported output port.
    pub fn output(mut self, port: Port) -> Self {
        self.net.outputs.push(port);
        self
    }

    /// Adds a basic block instance.
    pub fn block(self, name: &str, op: BasicOp) -> Self {
        self.add(name, Block::Basic(op))
    }

    /// Adds a state-machine block instance.
    pub fn state_machine(self, name: &str, fsm: StateMachineBlock) -> Self {
        self.add(name, Block::StateMachine(fsm))
    }

    /// Adds a modal block instance.
    pub fn modal(self, name: &str, modal: ModalBlock) -> Self {
        self.add(name, Block::Modal(modal))
    }

    /// Adds a composite block instance.
    pub fn composite(self, name: &str, network: Network) -> Self {
        self.add(name, Block::Composite(CompositeBlock { network }))
    }

    /// Adds any block instance.
    pub fn add(mut self, name: &str, block: Block) -> Self {
        self.net.blocks.push(BlockInstance {
            name: name.to_owned(),
            block,
        });
        self
    }

    /// Connects `from` to `to`; endpoints use `"port"` for network ports
    /// and `"block.port"` for block ports.
    ///
    /// # Errors
    ///
    /// Defers resolution/type errors to [`build`](Self::build); only
    /// syntactically empty endpoints error here.
    pub fn connect(mut self, from: &str, to: &str) -> Result<Self, ComdesError> {
        if from.is_empty() || to.is_empty() {
            return Err(ComdesError::BadConnection("empty endpoint".into()));
        }
        let from = match split_endpoint(from) {
            (None, p) => Source::Input(p.to_owned()),
            (Some(b), p) => Source::Block {
                block: b.to_owned(),
                port: p.to_owned(),
            },
        };
        let to = match split_endpoint(to) {
            (None, p) => Sink::Output(p.to_owned()),
            (Some(b), p) => Sink::Block {
                block: b.to_owned(),
                port: p.to_owned(),
            },
        };
        self.net.connections.push(Connection { from, to });
        Ok(self)
    }

    /// Validates and returns the network.
    ///
    /// # Errors
    ///
    /// Any error from [`Network::check`].
    pub fn build(self) -> Result<Network, ComdesError> {
        self.net.check()?;
        Ok(self.net)
    }

    /// Returns the network without validation (for tests constructing
    /// deliberately broken networks).
    pub fn build_unchecked(self) -> Network {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::fsm::FsmBuilder;
    use crate::signal::SignalValue;

    fn gain_chain() -> Network {
        NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g1", BasicOp::Gain { k: 2.0 })
            .block("g2", BasicOp::Gain { k: 3.0 })
            .connect("x", "g1.x")
            .unwrap()
            .connect("g1.y", "g2.x")
            .unwrap()
            .connect("g2.y", "y")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_orders_chain() {
        let net = gain_chain();
        assert_eq!(net.topo_order().unwrap(), vec![0, 1]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = NetworkBuilder::new()
            .input(Port::boolean("b"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 1.0 })
            .connect("b", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ComdesError::TypeError(_)));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let err = NetworkBuilder::new()
            .input(Port::real("a"))
            .input(Port::real("b"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 1.0 })
            .connect("a", "g.x")
            .unwrap()
            .connect("b", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ComdesError::MultipleDrivers { .. }));
    }

    #[test]
    fn undriven_output_rejected() {
        let err = NetworkBuilder::new()
            .output(Port::real("y"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ComdesError::BadConnection(_)));
    }

    #[test]
    fn algebraic_loop_rejected() {
        let err = NetworkBuilder::new()
            .output(Port::real("y"))
            .block("a", BasicOp::Sum)
            .block("b", BasicOp::Gain { k: 0.5 })
            .connect("a.y", "b.x")
            .unwrap()
            .connect("b.y", "a.a")
            .unwrap()
            .connect("a.y", "y")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ComdesError::AlgebraicLoop(_)));
    }

    #[test]
    fn unit_delay_breaks_loop() {
        let net = NetworkBuilder::new()
            .output(Port::real("y"))
            .block("a", BasicOp::Sum)
            .block(
                "z",
                BasicOp::UnitDelay {
                    initial: SignalValue::Real(0.0),
                },
            )
            .block("one", BasicOp::Const(SignalValue::Real(1.0)))
            .connect("one.y", "a.a")
            .unwrap()
            .connect("z.y", "a.b")
            .unwrap()
            .connect("a.y", "z.x")
            .unwrap()
            .connect("a.y", "y")
            .unwrap()
            .build();
        assert!(net.is_ok(), "{net:?}");
    }

    #[test]
    fn self_loop_on_feedthrough_rejected() {
        let err = NetworkBuilder::new()
            .output(Port::real("y"))
            .block("a", BasicOp::Sum)
            .connect("a.y", "a.a")
            .unwrap()
            .connect("a.y", "y")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ComdesError::AlgebraicLoop(_)));
    }

    #[test]
    fn duplicate_block_name_rejected() {
        let err = NetworkBuilder::new()
            .block("g", BasicOp::Sum)
            .block("g", BasicOp::Sum)
            .build_unchecked()
            .check()
            .unwrap_err();
        assert!(matches!(err, ComdesError::DuplicateName(_)));
    }

    #[test]
    fn modal_signature_enforced() {
        let inner_ok = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 1.0 })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let inner_bad = NetworkBuilder::new()
            .input(Port::boolean("x"))
            .output(Port::real("y"))
            .block("c", BasicOp::Const(SignalValue::Real(0.0)))
            .connect("c.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let modal = ModalBlock {
            data_inputs: vec![Port::real("x")],
            outputs: vec![Port::real("y")],
            modes: vec![
                Mode {
                    name: "m0".into(),
                    network: inner_ok.clone(),
                },
                Mode {
                    name: "m1".into(),
                    network: inner_bad,
                },
            ],
        };
        assert!(matches!(
            modal.check().unwrap_err(),
            ComdesError::BadModal(_)
        ));

        let good = ModalBlock {
            data_inputs: vec![Port::real("x")],
            outputs: vec![Port::real("y")],
            modes: vec![Mode {
                name: "m0".into(),
                network: inner_ok,
            }],
        };
        assert!(good.check().is_ok());
        assert_eq!(good.clamp_mode(-5), 0);
        assert_eq!(good.clamp_mode(99), 0);
        // Block-level inputs prepend the selector.
        assert_eq!(Block::Modal(good).inputs()[0], Port::int("mode"));
    }

    #[test]
    fn composite_exposes_inner_ports() {
        let inner = gain_chain();
        let block = Block::Composite(CompositeBlock { network: inner });
        assert_eq!(block.inputs(), vec![Port::real("x")]);
        assert_eq!(block.outputs(), vec![Port::real("y")]);
        assert!(block.check().is_ok());
    }

    #[test]
    fn fsm_block_in_network_checks() {
        let fsm = FsmBuilder::new()
            .input(Port::real("x"))
            .output(Port::boolean("q"))
            .state("A", |s| s.during("q", Expr::var("x").gt(Expr::Real(0.0))))
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::boolean("q"))
            .state_machine("fsm", fsm)
            .connect("x", "fsm.x")
            .unwrap()
            .connect("fsm.q", "q")
            .unwrap()
            .build();
        assert!(net.is_ok());
    }

    #[test]
    fn bad_basic_params_rejected() {
        assert!(check_basic(&BasicOp::MovingAverage { window: 0 }).is_err());
        assert!(check_basic(&BasicOp::LowPass { alpha: 0.0 }).is_err());
        assert!(check_basic(&BasicOp::Limit { lo: 2.0, hi: 1.0 }).is_err());
        assert!(check_basic(&BasicOp::Counter {
            min: 5,
            max: 1,
            wrap: false
        })
        .is_err());
        assert!(check_basic(&BasicOp::PulseGen {
            period: 0.0,
            duty: 0.5
        })
        .is_err());
        assert!(check_basic(&BasicOp::PulseGen {
            period: 1.0,
            duty: 1.5
        })
        .is_err());
    }

    #[test]
    fn func_block_type_checked_in_network() {
        let bad = BasicOp::Func {
            inputs: vec![Port::real("x")],
            outputs: vec![(Port::boolean("q"), Expr::var("x"))],
        };
        assert!(check_basic(&bad).is_err());
    }

    #[test]
    fn undriven_inputs_listed() {
        let net = NetworkBuilder::new()
            .output(Port::real("y"))
            .block("s", BasicOp::Sum)
            .connect("s.y", "y")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            net.undriven_block_inputs(),
            vec![
                ("s".to_owned(), "a".to_owned()),
                ("s".to_owned(), "b".to_owned())
            ]
        );
    }
}
