//! Signals: the typed values COMDES components exchange.
//!
//! COMDES actors communicate by exchanging *labeled messages (signals)*
//! using non-blocking state-message communication (paper §III). A signal
//! carries one of three primitive types; the compiler maps each to one
//! 64-bit memory cell on the target.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a signal or port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalType {
    /// Boolean signal (digital input, flag, mode bit).
    Bool,
    /// 64-bit integer signal (counter, state index, discrete command).
    Int,
    /// 64-bit floating point signal (measurement, setpoint, actuation).
    Real,
}

impl fmt::Display for SignalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalType::Bool => write!(f, "bool"),
            SignalType::Int => write!(f, "int"),
            SignalType::Real => write!(f, "real"),
        }
    }
}

impl SignalType {
    /// Default value carried by unconnected ports of this type.
    pub fn zero(self) -> SignalValue {
        match self {
            SignalType::Bool => SignalValue::Bool(false),
            SignalType::Int => SignalValue::Int(0),
            SignalType::Real => SignalValue::Real(0.0),
        }
    }
}

/// A typed signal value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SignalValue {
    /// Boolean payload.
    Bool(bool),
    /// Integer payload.
    Int(i64),
    /// Floating-point payload.
    Real(f64),
}

impl SignalValue {
    /// The value's type.
    pub fn signal_type(self) -> SignalType {
        match self {
            SignalValue::Bool(_) => SignalType::Bool,
            SignalValue::Int(_) => SignalType::Int,
            SignalValue::Real(_) => SignalType::Real,
        }
    }

    /// Boolean payload, if `Bool`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            SignalValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Integer payload, if `Int`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            SignalValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Floating-point payload; `Int` widens, `Bool` does not.
    pub fn as_real(self) -> Option<f64> {
        match self {
            SignalValue::Real(r) => Some(r),
            SignalValue::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// Encodes the value into the raw 64-bit memory cell the target uses.
    ///
    /// `Real` stores IEEE-754 bits; `Int` stores two's complement; `Bool`
    /// stores 0 or 1.
    pub fn to_raw(self) -> u64 {
        match self {
            SignalValue::Bool(b) => b as u64,
            SignalValue::Int(i) => i as u64,
            SignalValue::Real(r) => r.to_bits(),
        }
    }

    /// Decodes a raw 64-bit memory cell as `ty`.
    pub fn from_raw(ty: SignalType, raw: u64) -> SignalValue {
        match ty {
            SignalType::Bool => SignalValue::Bool(raw != 0),
            SignalType::Int => SignalValue::Int(raw as i64),
            SignalType::Real => SignalValue::Real(f64::from_bits(raw)),
        }
    }
}

impl fmt::Display for SignalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalValue::Bool(b) => write!(f, "{b}"),
            SignalValue::Int(i) => write!(f, "{i}"),
            SignalValue::Real(r) => write!(f, "{r}"),
        }
    }
}

impl From<bool> for SignalValue {
    fn from(b: bool) -> Self {
        SignalValue::Bool(b)
    }
}

impl From<i64> for SignalValue {
    fn from(i: i64) -> Self {
        SignalValue::Int(i)
    }
}

impl From<f64> for SignalValue {
    fn from(r: f64) -> Self {
        SignalValue::Real(r)
    }
}

/// A named, typed port on a block or actor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Port {
    /// Port name, unique within its direction on the owning block.
    pub name: String,
    /// Port type.
    pub ty: SignalType,
}

impl Port {
    /// Creates a port.
    pub fn new(name: &str, ty: SignalType) -> Self {
        Port {
            name: name.to_owned(),
            ty,
        }
    }

    /// Shorthand for a `Real` port.
    pub fn real(name: &str) -> Self {
        Port::new(name, SignalType::Real)
    }

    /// Shorthand for a `Bool` port.
    pub fn boolean(name: &str) -> Self {
        Port::new(name, SignalType::Bool)
    }

    /// Shorthand for an `Int` port.
    pub fn int(name: &str) -> Self {
        Port::new(name, SignalType::Int)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip_real() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            let raw = SignalValue::Real(v).to_raw();
            assert_eq!(
                SignalValue::from_raw(SignalType::Real, raw),
                SignalValue::Real(v)
            );
        }
    }

    #[test]
    fn raw_round_trip_int() {
        for v in [0i64, -1, i64::MAX, i64::MIN, 42] {
            let raw = SignalValue::Int(v).to_raw();
            assert_eq!(
                SignalValue::from_raw(SignalType::Int, raw),
                SignalValue::Int(v)
            );
        }
    }

    #[test]
    fn raw_round_trip_bool() {
        for v in [true, false] {
            let raw = SignalValue::Bool(v).to_raw();
            assert_eq!(
                SignalValue::from_raw(SignalType::Bool, raw),
                SignalValue::Bool(v)
            );
        }
    }

    #[test]
    fn widening_rules() {
        assert_eq!(SignalValue::Int(3).as_real(), Some(3.0));
        assert_eq!(SignalValue::Bool(true).as_real(), None);
        assert_eq!(SignalValue::Real(3.5).as_int(), None);
    }

    #[test]
    fn zero_values() {
        assert_eq!(SignalType::Bool.zero(), SignalValue::Bool(false));
        assert_eq!(SignalType::Int.zero(), SignalValue::Int(0));
        assert_eq!(SignalType::Real.zero(), SignalValue::Real(0.0));
    }

    #[test]
    fn display() {
        assert_eq!(SignalType::Real.to_string(), "real");
        assert_eq!(SignalValue::Int(-3).to_string(), "-3");
        assert_eq!(Port::real("speed").to_string(), "speed: real");
    }
}
