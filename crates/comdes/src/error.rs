//! Error types for COMDES model construction and evaluation.

use std::fmt;

/// Error raised while building or validating a COMDES model, or while
/// evaluating it with the reference interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum ComdesError {
    /// A block, port, actor, state or signal name is not a valid identifier.
    InvalidName(String),
    /// A name collides with an existing sibling.
    DuplicateName(String),
    /// A named entity was not found.
    Unknown(String),
    /// A connection or expression does not type-check.
    TypeError(String),
    /// A connection endpoint does not exist.
    BadConnection(String),
    /// An input port is driven by more than one connection.
    MultipleDrivers {
        /// Sink block instance name (`<network>` for network outputs).
        block: String,
        /// Sink port name.
        port: String,
    },
    /// The dataflow network has an algebraic loop (a cycle not broken by a
    /// unit-delay block).
    AlgebraicLoop(String),
    /// A state machine is malformed (no initial state, dangling transition…).
    BadStateMachine(String),
    /// A modal block is malformed (no modes, bad mode selector…).
    BadModal(String),
    /// Actor timing parameters are inconsistent (deadline > period, …).
    BadTiming(String),
    /// System-level wiring problem (unbound input signal, label clash…).
    BadSystem(String),
    /// Runtime evaluation failure in the reference interpreter.
    Eval(String),
}

impl fmt::Display for ComdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComdesError::InvalidName(n) => write!(f, "invalid identifier `{n}`"),
            ComdesError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ComdesError::Unknown(n) => write!(f, "unknown element `{n}`"),
            ComdesError::TypeError(m) => write!(f, "type error: {m}"),
            ComdesError::BadConnection(m) => write!(f, "bad connection: {m}"),
            ComdesError::MultipleDrivers { block, port } => {
                write!(f, "input `{block}.{port}` has multiple drivers")
            }
            ComdesError::AlgebraicLoop(m) => write!(f, "algebraic loop: {m}"),
            ComdesError::BadStateMachine(m) => write!(f, "bad state machine: {m}"),
            ComdesError::BadModal(m) => write!(f, "bad modal block: {m}"),
            ComdesError::BadTiming(m) => write!(f, "bad timing: {m}"),
            ComdesError::BadSystem(m) => write!(f, "bad system: {m}"),
            ComdesError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for ComdesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ComdesError::InvalidName("9x".into()).to_string(),
            "invalid identifier `9x`"
        );
        assert_eq!(
            ComdesError::MultipleDrivers {
                block: "pid".into(),
                port: "pv".into()
            }
            .to_string(),
            "input `pid.pv` has multiple drivers"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ComdesError>();
    }
}
