//! Domain-specific lint checks over validated COMDES systems.
//!
//! [`System::check`](crate::System::check) enforces hard conformance;
//! `lint` surfaces *suspicious but legal* modeling patterns — the class of
//! design slips the paper's model debugger exists to catch at runtime, but
//! that are cheap to flag statically first.

use crate::network::{Block, Network};
use crate::system::System;

/// A lint finding (always a warning; errors come from `check`).
///
/// Rendering lives in `gmdf-analyze`, which absorbs lint findings into
/// its unified `Diagnostic` stream — this type intentionally carries raw
/// fields only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintWarning {
    /// Path-ish location (`actor/block`).
    pub location: String,
    /// Human-readable message.
    pub message: String,
}

fn lint_network(prefix: &str, net: &Network, out: &mut Vec<LintWarning>) {
    for (block, port) in net.undriven_block_inputs() {
        out.push(LintWarning {
            location: format!("{prefix}/{block}"),
            message: format!("input `{port}` is undriven and reads as zero"),
        });
    }
    for inst in &net.blocks {
        // The location string is built per finding, not per block: lint
        // runs on the server's session-registration path, and basic
        // blocks (the overwhelming majority) produce no findings here.
        let loc = || format!("{prefix}/{}", inst.name);
        match &inst.block {
            Block::StateMachine(fsm) => {
                for s in fsm.unreachable_states() {
                    out.push(LintWarning {
                        location: loc(),
                        message: format!("state `{s}` is unreachable from the initial state"),
                    });
                }
                if fsm.outputs.is_empty() {
                    out.push(LintWarning {
                        location: loc(),
                        message: "state machine has no outputs; its activity is invisible".into(),
                    });
                }
            }
            Block::Modal(m) => {
                for mode in &m.modes {
                    lint_network(&format!("{}/{}", loc(), mode.name), &mode.network, out);
                }
            }
            Block::Composite(c) => lint_network(&loc(), &c.network, out),
            Block::Basic(_) => {}
        }
    }
}

/// Runs all lint checks, returning warnings in deterministic order.
///
/// Checked patterns:
/// * undriven block inputs (silently read zero);
/// * unreachable state-machine states;
/// * output-less state machines;
/// * signals produced but never consumed;
/// * actors whose deadline equals the period on the same node as a
///   higher-frequency actor (a latency-jitter smell under preemption).
pub fn lint(system: &System) -> Vec<LintWarning> {
    let mut out = Vec::new();
    for (_, actor) in system.actors() {
        lint_network(&actor.name, &actor.network, &mut out);
    }
    {
        // One pass over actor outputs and inputs instead of building the
        // full signal map and rescanning consumers per label: actor
        // outputs are exactly the `SignalOrigin::Actor` entries, and
        // fleet-scale systems have hundreds of labels. Lint runs on the
        // server's session-registration path.
        let consumed: crate::fnv::FnvHashSet<&str> = system
            .actors()
            .flat_map(|(_, a)| a.inputs.iter().map(|i| i.label.as_str()))
            .collect();
        let produced: std::collections::BTreeSet<&str> = system
            .actors()
            .flat_map(|(_, a)| a.outputs.iter().map(|o| o.label.as_str()))
            .collect();
        for label in produced {
            if !consumed.contains(label) {
                out.push(LintWarning {
                    location: label.to_owned(),
                    message: format!("signal `{label}` is produced but never consumed"),
                });
            }
        }
    }
    for node in &system.nodes {
        let min_period = node.actors.iter().map(|a| a.timing.period_ns).min();
        for a in &node.actors {
            if let Some(min) = min_period {
                if a.timing.deadline_ns == a.timing.period_ns && a.timing.period_ns > min {
                    out.push(LintWarning {
                        location: a.name.clone(),
                        message:
                            "deadline equals period while sharing the node with faster actors; \
                             consider a tighter deadline to bound output latency"
                                .into(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorBuilder, Timing};
    use crate::block::BasicOp;
    use crate::expr::Expr;
    use crate::fsm::FsmBuilder;
    use crate::network::NetworkBuilder;
    use crate::signal::Port;
    use crate::system::NodeSpec;

    #[test]
    fn flags_undriven_inputs_and_unconsumed_signals() {
        let net = NetworkBuilder::new()
            .output(Port::real("y"))
            .block("s", BasicOp::Sum)
            .connect("s.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("A", net)
            .output("y", "unused_out")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("n", 1_000_000);
        node.actors.push(actor);
        let sys = System::new("s").with_node(node);
        let warnings = lint(&sys);
        assert!(warnings.iter().any(|w| w.message.contains("undriven")));
        assert!(warnings
            .iter()
            .any(|w| w.message.contains("never consumed")));
    }

    #[test]
    fn flags_unreachable_state() {
        let fsm = FsmBuilder::new()
            .output(Port::boolean("q"))
            .state("A", |s| s.during("q", Expr::Bool(true)))
            .plain_state("Island")
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .output(Port::boolean("q"))
            .state_machine("m", fsm)
            .connect("m.q", "q")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("A", net)
            .output("q", "lamp")
            .build()
            .unwrap();
        let mut node = NodeSpec::new("n", 1_000_000);
        node.actors.push(actor);
        let sys = System::new("s").with_node(node);
        let warnings = lint(&sys);
        assert!(warnings.iter().any(|w| w.message.contains("Island")));
    }

    #[test]
    fn clean_system_has_no_structural_warnings() {
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 1.0 })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let producer = ActorBuilder::new("P", net.clone())
            .input("x", "env")
            .output("y", "mid")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let consumer = ActorBuilder::new("C", net)
            .input("x", "mid")
            .output("y", "out_signal")
            .timing(Timing::periodic(1_000_000, 1))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("n", 1_000_000);
        node.actors.push(producer);
        node.actors.push(consumer);
        let mut sink_node = NodeSpec::new("sink", 1_000_000);
        // Consume out_signal so it is not flagged.
        let sink_net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 1.0 })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let sink = ActorBuilder::new("Sink", sink_net)
            .input("x", "out_signal")
            .output("y", "actuator")
            .timing(Timing::periodic(1_000_000, 2))
            .build()
            .unwrap();
        sink_node.actors.push(sink);
        let sys = System::new("s").with_node(node).with_node(sink_node);
        let warnings = lint(&sys);
        // `actuator` is produced-not-consumed — the only expected warning.
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].message.contains("actuator"));
    }
}
