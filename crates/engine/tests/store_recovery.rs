//! Crash-recovery and backend-equivalence properties of the trace
//! stores.
//!
//! The load-bearing claims:
//!
//! * **Kill-anywhere recovery** — a writer killed at an *arbitrary byte
//!   offset* mid-segment leaves a store that reopens without panicking
//!   to a valid *prefix* of the original trace: every record fully
//!   flushed before the cut survives, nothing after the cut leaks
//!   through, and appending continues seamlessly after recovery.
//! * **Backend equivalence** — `entries_since`, `window`,
//!   `window_bounds`, `get` and `to_json` agree byte-for-byte between
//!   the in-memory store and the segmented disk store over random
//!   traces, segment capacities and query points.

use gmdf_engine::store::{encode_record, Codec, MemStore, SegmentConfig, SegmentStore, TraceStore};
use gmdf_engine::{ExecutionTrace, TraceEntry};
use gmdf_gdm::{EventKind, EventValue, ModelEvent, ReactionSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique scratch directory (no tempfile crate offline) —
/// pid + atomic counter; no wall clock, which can collide under
/// parallel test runs and needs a fallible `expect`.
fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gmdf-recovery-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The two record codecs, drawn as a proptest parameter so every
/// recovery/equivalence property holds for both.
fn arb_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Json), Just(Codec::Binary)]
}

/// One synthetic entry; times grow with `seq` (the engine's invariant).
fn entry(seq: u64, dt: u64, kind: u8) -> TraceEntry {
    let time_ns = seq * 1_000 + dt;
    let event = match kind % 3 {
        0 => ModelEvent::new(time_ns, EventKind::StateEnter, "node/actor/fsm").with_to("Run"),
        1 => ModelEvent::new(time_ns, EventKind::SignalWrite, "node/actor/out")
            .with_value(EventValue::Real(dt as f64 * 0.5)),
        _ => ModelEvent::new(time_ns, EventKind::TaskStart, "node/actor"),
    };
    TraceEntry {
        seq,
        event,
        reactions: if kind.is_multiple_of(2) {
            vec![ReactionSpec::HighlightTarget]
        } else {
            vec![]
        },
        violations: if kind == 5 {
            vec!["synthetic violation".to_owned()]
        } else {
            vec![]
        },
    }
}

fn build_entries(shape: &[(u64, u8)]) -> Vec<TraceEntry> {
    shape
        .iter()
        .enumerate()
        .map(|(i, &(dt, kind))| entry(i as u64, dt % 1_000, kind))
        .collect()
}

/// Writes `entries` into a fresh segment store and flushes it.
fn write_store(dir: &PathBuf, config: SegmentConfig, entries: &[TraceEntry]) -> SegmentStore {
    let mut store = SegmentStore::open_with(dir, config).expect("open");
    for e in entries {
        store.append(e.clone()).expect("append");
    }
    store.sync().expect("sync");
    store
}

/// A store config with `capacity` and `codec`, retention off.
fn config(capacity: usize, codec: Codec) -> SegmentConfig {
    SegmentConfig {
        capacity,
        codec,
        ..SegmentConfig::default()
    }
}

/// All segment files of `dir` in order, with their byte lengths.
fn segment_files(dir: &PathBuf) -> Vec<(PathBuf, u64)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("readdir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
        })
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let len = std::fs::metadata(&p).expect("stat").len();
            (p, len)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kill the writer at an arbitrary byte offset into the on-disk
    /// log: recovery yields exactly the records wholly flushed before
    /// the cut — a valid prefix, no panic, and appends keep working.
    #[test]
    fn kill_at_arbitrary_offset_recovers_valid_prefix(
        shape in proptest::collection::vec((0u64..1_000, 0u8..6), 1..60),
        capacity in 1usize..9,
        cut_fraction in 0.0f64..1.0,
        codec in arb_codec(),
    ) {
        let entries = build_entries(&shape);
        let dir = tmp_dir("kill");
        write_store(&dir, config(capacity, codec), &entries);

        // Choose a kill point: a global byte offset into the ordered
        // concatenation of segment files. Everything after it is
        // discarded — the bytes a killed writer never flushed.
        let files = segment_files(&dir);
        let total: u64 = files.iter().map(|(_, len)| len).sum();
        let cut = (total as f64 * cut_fraction) as u64;
        let mut consumed = 0u64;
        let mut survivors = 0usize; // whole records before the cut
        for (path, len) in &files {
            if consumed + len <= cut {
                // File fully before the cut: count its records.
                let bytes = std::fs::read(path).expect("read");
                survivors += count_whole_records(&bytes, bytes.len() as u64);
                consumed += len;
            } else {
                let keep = cut.saturating_sub(consumed);
                let bytes = std::fs::read(path).expect("read");
                survivors += count_whole_records(&bytes, keep);
                std::fs::write(path, &bytes[..keep as usize]).expect("truncate");
                consumed += len;
                // Later files would not exist yet in a real kill.
                let later: Vec<_> = files
                    .iter()
                    .filter(|(p, _)| p > path)
                    .map(|(p, _)| p.clone())
                    .collect();
                for p in later {
                    std::fs::remove_file(p).expect("rm");
                }
                break;
            }
        }

        let mut recovered =
            SegmentStore::open_with(&dir, config(capacity, codec)).expect("recovery must not fail");
        prop_assert_eq!(recovered.len(), survivors as u64, "exact valid prefix");
        let mut read_back = Vec::new();
        recovered.read_into(0, u64::MAX, &mut read_back).expect("read");
        prop_assert_eq!(&read_back[..], &entries[..survivors], "prefix is byte-faithful");

        // Appends continue after recovery, densely numbered.
        let next = recovered.len();
        recovered.append(entry(next, 500, 1)).expect("append after recovery");
        recovered.sync().expect("sync");
        prop_assert_eq!(recovered.len(), next + 1);
        let reopened = SegmentStore::open_with(&dir, config(capacity, codec)).expect("reopen");
        prop_assert_eq!(reopened.len(), next + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The disk store answers every query identically to the in-memory
    /// store over random traces, capacities, cursors and windows —
    /// including after a close/reopen cycle.
    #[test]
    fn disk_store_equals_memory_store(
        shape in proptest::collection::vec((0u64..1_000, 0u8..6), 0..80),
        capacity in 1usize..11,
        cursors in proptest::collection::vec(0u64..100, 1..6),
        windows in proptest::collection::vec((0u64..90_000, 0u64..90_000), 1..6),
        codec in arb_codec(),
    ) {
        let entries = build_entries(&shape);
        let dir = tmp_dir("equiv");
        write_store(&dir, config(capacity, codec), &entries);
        // Reopen to also exercise the recovery path on a clean store.
        let disk = SegmentStore::open_with(&dir, config(capacity, codec)).expect("reopen");
        let mem = MemStore::from_entries(entries.clone());

        prop_assert_eq!(disk.len(), mem.len());
        prop_assert_eq!(disk.time_range(), mem.time_range());
        for &cursor in &cursors {
            let mut from_disk = Vec::new();
            disk.read_into(cursor, u64::MAX, &mut from_disk).expect("read");
            let mut from_mem = Vec::new();
            mem.read_into(cursor, u64::MAX, &mut from_mem).expect("read");
            prop_assert_eq!(from_disk, from_mem, "entries_since({})", cursor);
        }
        for &(a, b) in &windows {
            prop_assert_eq!(
                disk.window_bounds(a, b).expect("disk window_bounds"),
                mem.window_bounds(a, b).expect("mem window_bounds"),
                "window_bounds({}, {})", a, b
            );
        }
        // Full-trace serialization is byte-identical across backends.
        let disk_trace = ExecutionTrace::with_store(Box::new(disk));
        let mem_trace = ExecutionTrace::with_store(Box::new(mem));
        prop_assert_eq!(disk_trace.to_json(), mem_trace.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Number of whole framed records in the first `limit` bytes.
fn count_whole_records(bytes: &[u8], limit: u64) -> usize {
    let limit = (limit as usize).min(bytes.len());
    let mut offset = 0usize;
    let mut count = 0usize;
    while limit - offset >= 4 {
        let len = u32::from_be_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        if limit - offset - 4 < len {
            break;
        }
        offset += 4 + len;
        count += 1;
    }
    count
}

/// Deterministic catch-up across a real store: a re-execution over a
/// recovered prefix does not duplicate persisted entries and extends
/// the log past it.
#[test]
fn catch_up_resumes_over_recovered_prefix() {
    let dir = tmp_dir("catchup");
    let entries = build_entries(
        &(0..20)
            .map(|i| (i * 37 % 1000, (i % 6) as u8))
            .collect::<Vec<_>>(),
    );
    write_store(&dir, config(4, Codec::Binary), &entries[..12]);

    // A restored trace re-executes the full run; the first 12 records
    // are dropped (already persisted), the rest append.
    let store = SegmentStore::open(&dir, 4).expect("open");
    assert_eq!(store.len(), 12);
    let mut trace = ExecutionTrace::with_store(Box::new(store));
    assert!(trace.catching_up());
    for e in &entries {
        trace.record(e.event.clone(), e.reactions.clone(), e.violations.clone());
    }
    assert!(!trace.catching_up());
    assert_eq!(trace.len(), entries.len());
    trace.sync().expect("sync");

    // The persisted log now holds the whole run, byte-faithfully.
    let reopened = SegmentStore::open(&dir, 4).expect("reopen");
    let mut all = Vec::new();
    reopened.read_into(0, u64::MAX, &mut all).expect("read");
    assert_eq!(all, entries);
    std::fs::remove_dir_all(&dir).ok();
}

/// `encode_record` framing is what the recovery scanner expects — a
/// sanity pin for the shared format.
#[test]
fn record_framing_round_trips() {
    let e = entry(0, 123, 1);
    let bytes = encode_record(&e).expect("fits in a frame");
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    assert_eq!(len + 4, bytes.len());
    let json = std::str::from_utf8(&bytes[4..]).expect("utf8");
    let back: TraceEntry = serde_json::from_str(json).expect("parses");
    assert_eq!(back, e);
}
