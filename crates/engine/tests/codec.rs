//! Cross-codec properties of the trace store.
//!
//! The JSON codec is the debug/interop format and doubles as the
//! *oracle* for the binary codec: whatever the image and however the
//! run is partitioned into append slices (with reopen cycles between
//! them), a JSON-backed store and a binary-backed store must decode to
//! byte-identical `ExecutionTrace` streams. On top of that, the binary
//! codec must hold the same kill-anywhere torn-tail guarantee the JSON
//! codec established, and both guarantees must survive segment
//! compaction to the cold tier.

use gmdf_engine::store::{Codec, MemStore, Retention, SegmentConfig, SegmentStore, TraceStore};
use gmdf_engine::{ExecutionTrace, TraceEntry};
use gmdf_gdm::{EventKind, EventValue, ModelEvent, ReactionSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique scratch directory (no tempfile crate offline).
fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gmdf-codec-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn config(capacity: usize, codec: Codec) -> SegmentConfig {
    SegmentConfig {
        capacity,
        codec,
        ..SegmentConfig::default()
    }
}

/// One random-ish entry covering every field shape the codec carries:
/// kind, from/to presence, all three value tags, reactions, violations,
/// and non-ASCII paths.
fn entry(seq: u64, dt: u64, kind: u8) -> TraceEntry {
    let time_ns = seq * 1_000 + dt;
    let path = match kind % 4 {
        0 => "node/actor/fsm".to_owned(),
        1 => format!("nœud/actor-{}/état", kind),
        2 => String::new(),
        _ => "a/b/c/d/e/f".to_owned(),
    };
    let event = match kind % 6 {
        0 => ModelEvent::new(time_ns, EventKind::StateEnter, &path)
            .with_from("Idle")
            .with_to("Run"),
        1 => ModelEvent::new(time_ns, EventKind::SignalWrite, &path)
            .with_value(EventValue::Real(dt as f64 * 0.5 - 3.25)),
        2 => ModelEvent::new(time_ns, EventKind::SignalWrite, &path)
            .with_value(EventValue::Int(dt as i64 - 500)),
        3 => ModelEvent::new(time_ns, EventKind::WatchChange, &path)
            .with_value(EventValue::Bool(dt.is_multiple_of(2))),
        4 => ModelEvent::new(time_ns, EventKind::ModeSwitch, &path).with_to("Degraded"),
        _ => ModelEvent::new(time_ns, EventKind::TaskStart, &path),
    };
    TraceEntry {
        seq,
        event,
        reactions: match kind % 3 {
            0 => vec![ReactionSpec::HighlightTarget],
            1 => vec![ReactionSpec::Pulse, ReactionSpec::ShowValue],
            _ => vec![],
        },
        violations: if kind == 5 {
            vec!["синтетическое – violation".to_owned()]
        } else {
            vec![]
        },
    }
}

fn build_entries(shape: &[(u64, u8)]) -> Vec<TraceEntry> {
    shape
        .iter()
        .enumerate()
        .map(|(i, &(dt, kind))| entry(i as u64, dt % 1_000, kind))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary ≡ JSON: the same image written through either codec —
    /// in arbitrary append slices, with a reopen (recovery) cycle at
    /// every slice boundary — decodes to byte-identical traces.
    #[test]
    fn codecs_decode_to_identical_streams(
        shape in proptest::collection::vec((0u64..1_000, 0u8..6), 0..80),
        capacity in 1usize..11,
        slice_sizes in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let entries = build_entries(&shape);
        let dir_json = tmp_dir("oracle-json");
        let dir_bin = tmp_dir("oracle-bin");
        // Append slice-by-slice, reopening both stores between slices
        // so every slice boundary exercises recovery for each codec.
        let (mut pos, mut k) = (0usize, 0usize);
        while pos < entries.len() {
            let n = slice_sizes[k % slice_sizes.len()].min(entries.len() - pos);
            let mut json = SegmentStore::open_with(&dir_json, config(capacity, Codec::Json))
                .expect("open json");
            let mut bin = SegmentStore::open_with(&dir_bin, config(capacity, Codec::Binary))
                .expect("open binary");
            for e in &entries[pos..pos + n] {
                json.append(e.clone()).expect("append json");
                bin.append(e.clone()).expect("append binary");
            }
            json.sync().expect("sync json");
            bin.sync().expect("sync binary");
            pos += n;
            k += 1;
        }
        let json = SegmentStore::open_with(&dir_json, config(capacity, Codec::Json))
            .expect("reopen json");
        let bin = SegmentStore::open_with(&dir_bin, config(capacity, Codec::Binary))
            .expect("reopen binary");
        prop_assert_eq!(json.len(), bin.len());
        prop_assert_eq!(json.time_range(), bin.time_range());
        let mut from_json = Vec::new();
        json.read_into(0, u64::MAX, &mut from_json).expect("read json");
        let mut from_bin = Vec::new();
        bin.read_into(0, u64::MAX, &mut from_bin).expect("read binary");
        prop_assert_eq!(&from_json[..], &entries[..], "json is faithful");
        prop_assert_eq!(&from_bin[..], &entries[..], "binary is faithful");
        // Full-trace serialization is byte-identical across codecs.
        let t_json = ExecutionTrace::with_store(Box::new(json));
        let t_bin = ExecutionTrace::with_store(Box::new(bin));
        prop_assert_eq!(t_json.to_json(), t_bin.to_json());
        std::fs::remove_dir_all(&dir_json).ok();
        std::fs::remove_dir_all(&dir_bin).ok();
    }

    /// Kill-anywhere for the binary codec specifically: truncating the
    /// active tail segment at an arbitrary byte offset recovers the
    /// longest valid record prefix — never a panic, never a partially
    /// decoded record leaking through.
    #[test]
    fn binary_tail_cut_at_any_byte_recovers_a_prefix(
        shape in proptest::collection::vec((0u64..1_000, 0u8..6), 1..40),
        capacity in 4usize..12,
        cut_fraction in 0.0f64..1.0,
    ) {
        let entries = build_entries(&shape);
        let dir = tmp_dir("bin-cut");
        let mut store = SegmentStore::open_with(&dir, config(capacity, Codec::Binary))
            .expect("open");
        for e in &entries {
            store.append(e.clone()).expect("append");
        }
        store.sync().expect("sync");
        drop(store);

        // Cut the *last* segment file (the active tail) mid-byte.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("readdir")
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "log"))
            .collect();
        files.sort();
        let tail = files.last().expect("at least one segment");
        let bytes = std::fs::read(tail).expect("read tail");
        let keep = (bytes.len() as f64 * cut_fraction) as usize;
        std::fs::write(tail, &bytes[..keep]).expect("truncate");

        let recovered = SegmentStore::open_with(&dir, config(capacity, Codec::Binary))
            .expect("recovery must not fail");
        let n = recovered.len() as usize;
        prop_assert!(n <= entries.len());
        let mut read_back = Vec::new();
        recovered.read_into(0, u64::MAX, &mut read_back).expect("read");
        prop_assert_eq!(&read_back[..], &entries[..n], "recovered = exact prefix");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction transparency: with a retention policy compressing
    /// sealed segments to the cold tier, every query still answers
    /// exactly like the in-memory store — reads span compressed and
    /// hot tiers without a seam, for either codec.
    #[test]
    fn compacted_tiers_answer_like_memory(
        shape in proptest::collection::vec((0u64..1_000, 0u8..6), 1..80),
        capacity in 1usize..9,
        cursors in proptest::collection::vec(0u64..100, 1..5),
        windows in proptest::collection::vec((0u64..90_000, 0u64..90_000), 1..5),
        codec in prop_oneof![Just(Codec::Json), Just(Codec::Binary)],
    ) {
        let entries = build_entries(&shape);
        let dir = tmp_dir("tiers");
        let cfg = SegmentConfig {
            capacity,
            codec,
            retention: Retention {
                compress_after: Some(1), // everything but the tail goes cold
                max_disk_bytes: None,    // nothing evicted: full history
            },
        };
        let mut disk = SegmentStore::open_with(&dir, cfg).expect("open");
        for e in &entries {
            disk.append(e.clone()).expect("append");
        }
        disk.sync().expect("sync");
        // Run maintenance to a fixed point: one segment compresses per
        // turn, so loop until it reports no work.
        while disk.maintain().expect("maintain").did_work() {}
        let mem = MemStore::from_entries(entries.clone());

        prop_assert_eq!(disk.len(), mem.len());
        prop_assert_eq!(disk.time_range(), mem.time_range());
        for &cursor in &cursors {
            let mut from_disk = Vec::new();
            disk.read_into(cursor, u64::MAX, &mut from_disk).expect("read disk");
            let mut from_mem = Vec::new();
            mem.read_into(cursor, u64::MAX, &mut from_mem).expect("read mem");
            prop_assert_eq!(from_disk, from_mem, "entries_since({})", cursor);
        }
        for &(a, b) in &windows {
            prop_assert_eq!(
                disk.window_bounds(a, b).expect("disk window_bounds"),
                mem.window_bounds(a, b).expect("mem window_bounds"),
                "window_bounds({}, {})", a, b
            );
        }
        // A reopen over the compressed tiers recovers the same store.
        drop(disk);
        let reopened = SegmentStore::open_with(&dir, cfg).expect("reopen over cold tiers");
        prop_assert_eq!(reopened.len(), entries.len() as u64);
        let mut all = Vec::new();
        reopened.read_into(0, u64::MAX, &mut all).expect("read");
        prop_assert_eq!(&all[..], &entries[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
