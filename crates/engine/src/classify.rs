//! Design-error vs implementation-error classification.
//!
//! The paper names two bug classes a runtime model debugger can expose:
//! *design errors* ("inconsistencies between system requirements
//! specifications and the system model") and *implementation errors*
//! ("errors that happen during model transformation"), and leaves "the
//! differentiation of different types of bugs … a subject of future work"
//! (§II). This module implements that differentiation as the extension
//! the reproduction contributes:
//!
//! * the **observed** stream comes from the running target (either
//!   channel);
//! * the **reference** stream comes from executing the *model itself*
//!   with the reference interpreter;
//! * if the two diverge, the generated code does not implement the model
//!   — an **implementation error**;
//! * if they agree but an expectation (a requirement) is violated, the
//!   model itself is wrong — a **design error**.

use gmdf_gdm::{EventKind, ModelEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's two bug classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugClass {
    /// Model and code agree; the model violates the requirement.
    DesignError,
    /// Code diverges from model semantics (a transformation bug).
    ImplementationError,
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugClass::DesignError => write!(f, "design error (model vs requirements)"),
            BugClass::ImplementationError => {
                write!(f, "implementation error (code vs model)")
            }
        }
    }
}

/// First point where the observed behaviour leaves the reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index into the compared behavioural subsequences.
    pub index: usize,
    /// What the target did (`None` = target stream ended early).
    pub observed: Option<String>,
    /// What the model prescribes (`None` = reference ended early).
    pub expected: Option<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "behaviour #{}: observed {}, model prescribes {}",
            self.index,
            self.observed.as_deref().unwrap_or("<nothing>"),
            self.expected.as_deref().unwrap_or("<nothing>")
        )
    }
}

/// Behavioural key of an event: `(kind, path, to)` for state/mode changes.
/// Timing and values are excluded — only the *behaviour* must match.
fn behavior_key(e: &ModelEvent) -> Option<String> {
    match e.kind {
        EventKind::StateEnter | EventKind::ModeSwitch => Some(format!(
            "{} {} -> {}",
            e.kind,
            e.path,
            e.to.as_deref().unwrap_or("?")
        )),
        _ => None,
    }
}

/// Compares the behavioural subsequences of two event streams; `None`
/// means the target faithfully implements the model.
///
/// The observed stream may be a *prefix* of the reference (the run was
/// shorter) without counting as divergence; extra observed behaviour or a
/// mismatch does count.
pub fn compare_behavior(observed: &[ModelEvent], reference: &[ModelEvent]) -> Option<Divergence> {
    let obs: Vec<String> = observed.iter().filter_map(behavior_key).collect();
    let expect: Vec<String> = reference.iter().filter_map(behavior_key).collect();
    for (i, o) in obs.iter().enumerate() {
        match expect.get(i) {
            Some(e) if e == o => continue,
            other => {
                return Some(Divergence {
                    index: i,
                    observed: Some(o.clone()),
                    expected: other.cloned(),
                })
            }
        }
    }
    None
}

/// Classifies a detected violation: divergence from the model ⇒
/// implementation error, faithful-but-wrong ⇒ design error. Returns the
/// divergence alongside, when present.
pub fn classify(
    observed: &[ModelEvent],
    reference: &[ModelEvent],
) -> (BugClass, Option<Divergence>) {
    match compare_behavior(observed, reference) {
        Some(d) => (BugClass::ImplementationError, Some(d)),
        None => (BugClass::DesignError, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(t: u64, path: &str, to: &str) -> ModelEvent {
        ModelEvent::new(t, EventKind::StateEnter, path).with_to(to)
    }

    #[test]
    fn identical_streams_are_faithful() {
        let a = vec![enter(1, "A/fsm", "Run"), enter(2, "A/fsm", "Idle")];
        // Different times are fine — only behaviour matters.
        let b = vec![enter(100, "A/fsm", "Run"), enter(200, "A/fsm", "Idle")];
        assert_eq!(compare_behavior(&a, &b), None);
        let (class, d) = classify(&a, &b);
        assert_eq!(class, BugClass::DesignError);
        assert!(d.is_none());
    }

    #[test]
    fn mismatch_is_implementation_error() {
        let observed = vec![enter(1, "A/fsm", "Error")];
        let reference = vec![enter(1, "A/fsm", "Run")];
        let (class, d) = classify(&observed, &reference);
        assert_eq!(class, BugClass::ImplementationError);
        let d = d.unwrap();
        assert!(d.observed.unwrap().contains("Error"));
        assert!(d.expected.unwrap().contains("Run"));
    }

    #[test]
    fn observed_prefix_is_faithful() {
        let observed = vec![enter(1, "A/fsm", "Run")];
        let reference = vec![enter(1, "A/fsm", "Run"), enter(2, "A/fsm", "Idle")];
        assert_eq!(compare_behavior(&observed, &reference), None);
    }

    #[test]
    fn extra_observed_behaviour_diverges() {
        let observed = vec![enter(1, "A/fsm", "Run"), enter(2, "A/fsm", "Idle")];
        let reference = vec![enter(1, "A/fsm", "Run")];
        let d = compare_behavior(&observed, &reference).unwrap();
        assert_eq!(d.index, 1);
        assert!(d.expected.is_none());
    }

    #[test]
    fn non_behavioral_events_ignored() {
        let observed = vec![
            ModelEvent::new(1, EventKind::TaskStart, "A"),
            enter(2, "A/fsm", "Run"),
            ModelEvent::new(3, EventKind::SignalWrite, "A/out/u"),
        ];
        let reference = vec![enter(9, "A/fsm", "Run")];
        assert_eq!(compare_behavior(&observed, &reference), None);
    }

    #[test]
    fn display_forms() {
        assert!(BugClass::DesignError.to_string().contains("design"));
        let d = Divergence {
            index: 0,
            observed: None,
            expected: Some("x".into()),
        };
        assert!(d.to_string().contains("<nothing>"));
    }
}
