//! Execution trace recording.
//!
//! "GDM animation will trace model-level behavior and always make a record
//! of the execution trace" (paper §II). Every processed command is
//! appended to an [`ExecutionTrace`] together with the reactions it
//! triggered and any expectation violations it raised; the trace feeds
//! the replay function and the timing diagram.
//!
//! Where the record lives is pluggable: an [`ExecutionTrace`] fronts any
//! [`TraceStore`] — the in-memory [`MemStore`](crate::store::MemStore)
//! by default, or the segmented on-disk
//! [`SegmentStore`](crate::store::SegmentStore) for traces that must
//! outlive the process and stop costing O(whole run) memory. Reads go
//! through sequence/time indexes (`entries_since`, `window`), so callers
//! page the history instead of holding all of it.

use crate::metrics::StoreMetrics;
use crate::store::{MaintenanceReport, MemStore, StoreError, StoreStats, TraceStore};
use gmdf_gdm::{ModelEvent, ReactionSpec};
use serde::{content_get, Content, DeError, Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One recorded command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The command.
    pub event: ModelEvent,
    /// Reactions the engine applied.
    pub reactions: Vec<ReactionSpec>,
    /// Expectation violations raised by this command.
    pub violations: Vec<String>,
}

/// How many entries a paged read ([`ExecutionTrace::window`],
/// [`ExecutionTrace::for_each`], the [`crate::Replayer`]) fetches per
/// store round-trip.
pub(crate) const PAGE: u64 = 256;

/// The recorded execution trace, fronting a pluggable [`TraceStore`].
///
/// # Deterministic catch-up
///
/// A trace attached to a non-empty store (a restored session) is in
/// *catch-up* mode: the owner re-executes the run deterministically
/// from the start, and every recorded command whose sequence number is
/// already stored is dropped instead of re-appended — the store holds
/// the identical entry. Once the re-execution passes the stored prefix,
/// appends resume normally. This is what lets a restarted debug server
/// resume a session mid-run against its persisted trace.
#[derive(Debug)]
pub struct ExecutionTrace {
    store: Box<dyn TraceStore>,
    /// Sequence number the next recorded command gets. Below the store
    /// length during deterministic catch-up.
    next_seq: u64,
    /// First storage failure, sticky. Appends after it are dropped; the
    /// owner checks [`ExecutionTrace::error`] (the debug server fails
    /// the session).
    error: Option<String>,
    /// Store I/O metrics sink, when the embedder turned observability
    /// on. `None` costs nothing on the hot paths.
    metrics: Option<Arc<StoreMetrics>>,
}

impl Default for ExecutionTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ExecutionTrace {
    /// Cloning materializes the entries into an in-memory store — a
    /// snapshot copy, detached from any disk backend.
    fn clone(&self) -> Self {
        ExecutionTrace {
            store: Box::new(MemStore::from_entries(self.entries())),
            next_seq: self.next_seq,
            error: self.error.clone(),
            metrics: None,
        }
    }
}

impl PartialEq for ExecutionTrace {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.entries() == other.entries()
    }
}

// The serialized form is exactly the old derive format —
// `{"entries": [...]}` — so traces saved before the store refactor
// still load, and `to_json` stays byte-identical across backends.
impl Serialize for ExecutionTrace {
    fn to_content(&self) -> Content {
        Content::Map(vec![(
            Content::Str("entries".to_owned()),
            Content::Seq(self.entries().iter().map(Serialize::to_content).collect()),
        )])
    }
}

impl Deserialize for ExecutionTrace {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let fields = c
            .as_map()
            .ok_or_else(|| DeError::custom("expected map for ExecutionTrace"))?;
        let entries: Vec<TraceEntry> = Deserialize::from_content(
            content_get(fields, "entries").ok_or_else(|| DeError::missing("entries"))?,
        )?;
        let next_seq = entries.len() as u64;
        Ok(ExecutionTrace {
            store: Box::new(MemStore::from_entries(entries)),
            next_seq,
            error: None,
            metrics: None,
        })
    }
}

impl ExecutionTrace {
    /// Creates an empty in-memory trace.
    pub fn new() -> Self {
        Self::with_store(Box::new(MemStore::new()))
    }

    /// Creates a trace over `store`. A non-empty store puts the trace
    /// in deterministic catch-up mode (see the type docs).
    pub fn with_store(store: Box<dyn TraceStore>) -> Self {
        ExecutionTrace {
            store,
            next_seq: 0,
            error: None,
            metrics: None,
        }
    }

    /// Creates a trace over `store` in **resume** mode: the next
    /// sequence number continues from `store.len()` instead of starting
    /// at zero with deterministic catch-up. A time-travel replica uses
    /// this after restoring a checkpoint — the replayed suffix appends
    /// at the checkpoint boundary (the store's length *is* the
    /// checkpoint's trace length), never re-deriving the prefix.
    pub fn resume_with_store(store: Box<dyn TraceStore>) -> Self {
        let next_seq = store.len();
        ExecutionTrace {
            store,
            next_seq,
            error: None,
            metrics: None,
        }
    }

    /// Attaches a metrics sink: store appends and range reads are timed
    /// into it from now on. Pass the same `Arc` to every trace whose
    /// I/O should aggregate into one fleet-wide read-out.
    pub fn set_metrics(&mut self, metrics: Option<Arc<StoreMetrics>>) {
        self.metrics = metrics;
    }

    /// Storage footprint of the backing store (segment count, on-disk
    /// bytes) — zeros for memory-resident backends.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Sequence number of the oldest entry still readable — `0` unless
    /// the backing store evicted old segments under a retention budget.
    /// Count-based iteration (replay, `for_each`) starts here, never
    /// at 0 blindly.
    pub fn first_retained_seq(&self) -> u64 {
        self.store.first_retained_seq()
    }

    /// Pins the backing store's retention floor: entries with
    /// `seq >= floor` may no longer be evicted — see
    /// [`TraceStore::set_retain_floor`]. The checkpoint owner calls
    /// this with the oldest retained checkpoint's trace position after
    /// every checkpoint write.
    pub fn set_retain_floor(&mut self, floor: u64) {
        self.store.set_retain_floor(floor);
    }

    /// Runs one bounded unit of store maintenance (segment compression
    /// / retention eviction) — see [`TraceStore::maintain`]. Timed into
    /// the metrics sink like every other store I/O when one is
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn maintain(&mut self) -> Result<MaintenanceReport, StoreError> {
        if let Some(m) = &self.metrics {
            let t0 = Instant::now();
            let report = self.store.maintain();
            m.maintain_ns.record(t0.elapsed().as_nanos() as u64);
            if let Ok(r) = &report {
                m.compactions.add(r.compacted_segments);
                m.evicted_segments.add(r.dropped_segments);
                m.reclaimed_bytes.add(r.reclaimed_bytes);
            }
            report
        } else {
            self.store.maintain()
        }
    }

    /// Appends an entry, assigning its sequence number. During
    /// deterministic catch-up the entry is already stored and is
    /// dropped instead of duplicated.
    pub fn record(
        &mut self,
        event: ModelEvent,
        reactions: Vec<ReactionSpec>,
        violations: Vec<String>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if seq < self.store.len() {
            return seq; // catch-up: identical entry already persisted
        }
        if self.error.is_none() {
            let entry = TraceEntry {
                seq,
                event,
                reactions,
                violations,
            };
            let result = if let Some(m) = &self.metrics {
                let t0 = Instant::now();
                let result = self.store.append(entry);
                m.append_ns.record(t0.elapsed().as_nanos() as u64);
                m.appends.inc();
                result
            } else {
                self.store.append(entry)
            };
            if let Err(e) = result {
                self.error = Some(e.to_string());
            }
        }
        seq
    }

    /// All entries, in sequence order, materialized into a `Vec`.
    ///
    /// This reads the *whole* trace — O(len) time and memory on any
    /// backend. Prefer [`ExecutionTrace::entries_since`],
    /// [`ExecutionTrace::window`] or [`ExecutionTrace::for_each`] on
    /// traces that can be long. A store read failure truncates the
    /// result (this serves infallible surfaces — `Clone`, `PartialEq`);
    /// callers that must not confuse a failing disk with a short trace
    /// use [`ExecutionTrace::try_entries`].
    pub fn entries(&self) -> Vec<TraceEntry> {
        let mut out = Vec::with_capacity(self.len());
        let _ = self.store.read_into(0, u64::MAX, &mut out);
        out
    }

    /// Like [`ExecutionTrace::entries`], but a store read failure is an
    /// error instead of a silently truncated record.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn try_entries(&self) -> Result<Vec<TraceEntry>, StoreError> {
        let mut out = Vec::with_capacity(self.len());
        self.store.read_into(0, u64::MAX, &mut out)?;
        Ok(out)
    }

    /// The full entry slice without copying, when the backend is
    /// memory-resident.
    pub fn as_slice(&self) -> Option<&[TraceEntry]> {
        self.store.as_slice()
    }

    /// The entry with sequence number `seq`.
    pub fn get(&self, seq: u64) -> Option<TraceEntry> {
        let mut out = Vec::with_capacity(1);
        self.store.read_into(seq, seq + 1, &mut out).ok()?;
        out.pop()
    }

    /// Entries recorded at or after sequence number `seq` — the
    /// incremental delta a subscriber that has already seen `[0, seq)`
    /// still has to consume. Sequence numbers are dense, so `seq` is
    /// also the index of the first returned entry.
    pub fn entries_since(&self, seq: u64) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        let _ = self.store.read_into(seq, u64::MAX, &mut out);
        out
    }

    /// Appends the entries with sequence numbers in `[from, to)`
    /// (clamped) onto `out` — the paged read underlying everything
    /// else, exposed for callers that reuse buffers.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures; `out` may hold a partial read. A
    /// success means the whole clamped range was appended.
    pub fn read_range_into(
        &self,
        from: u64,
        to: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError> {
        if let Some(m) = &self.metrics {
            let t0 = Instant::now();
            let result = self.store.read_into(from, to, out);
            m.read_ns.record(t0.elapsed().as_nanos() as u64);
            m.reads.inc();
            result
        } else {
            self.store.read_into(from, to, out)
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.store.len() as usize
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Time range covered, if nonempty.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        self.store.time_range()
    }

    /// The half-open sequence range of entries whose event time falls
    /// in `[t0_ns, t1_ns]` — resolved via the store's time index
    /// (binary search, not a scan).
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures from reading boundary segments.
    pub fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError> {
        self.store.window_bounds(t0_ns, t1_ns)
    }

    /// Entries whose event time falls in `[t0, t1]`. The boundaries are
    /// located by binary search (entries are time-ordered); the hits
    /// are then streamed in pages, so a narrow window over a long
    /// disk-backed trace reads only its own segments.
    ///
    /// A store read failure ends the iteration early (possibly before
    /// the first entry); callers that must distinguish an empty window
    /// from a failing disk use [`ExecutionTrace::window_bounds`] +
    /// [`ExecutionTrace::read_range_into`] directly.
    pub fn window(&self, t0_ns: u64, t1_ns: u64) -> impl Iterator<Item = TraceEntry> + '_ {
        let (lo, hi) = self.window_bounds(t0_ns, t1_ns).unwrap_or((0, 0));
        PagedIter {
            trace: self,
            next: lo,
            end: hi,
            page: Vec::new().into_iter(),
        }
    }

    /// Calls `f` on every entry in sequence order, reading in pages —
    /// full-trace iteration without materializing the whole run.
    pub fn for_each<F: FnMut(&TraceEntry)>(&self, mut f: F) {
        if let Some(slice) = self.store.as_slice() {
            for e in slice {
                f(e);
            }
            return;
        }
        let mut page = Vec::new();
        let mut next = self.store.first_retained_seq();
        let len = self.store.len();
        while next < len {
            page.clear();
            let _ = self.store.read_into(next, next + PAGE, &mut page);
            if page.is_empty() {
                break;
            }
            next += page.len() as u64;
            for e in &page {
                f(e);
            }
        }
    }

    /// Flushes buffered appends to the backing store and surfaces any
    /// sticky storage failure.
    ///
    /// # Errors
    ///
    /// The first storage failure, or the flush failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(e) = &self.error {
            return Err(StoreError::new(e.clone()));
        }
        self.store.sync()
    }

    /// The first storage failure, if any (sticky).
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// `true` while a restored trace is still re-executing its stored
    /// prefix (see the type docs).
    pub fn catching_up(&self) -> bool {
        self.next_seq < self.store.len()
    }

    /// Serializes to pretty JSON. A store read failure truncates the
    /// output (see [`ExecutionTrace::entries`]); use
    /// [`ExecutionTrace::try_to_json`] where that must be an error.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Like [`ExecutionTrace::to_json`] (byte-identical output), but a
    /// store read failure is an error instead of a silently truncated
    /// record — what the debug server serves snapshots through.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn try_to_json(&self) -> Result<String, StoreError> {
        let entries = self.try_entries()?;
        let snapshot = ExecutionTrace {
            next_seq: entries.len() as u64,
            store: Box::new(MemStore::from_entries(entries)),
            error: None,
            metrics: None,
        };
        Ok(snapshot.to_json())
    }

    /// Parses a saved trace (into an in-memory backend).
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Paged iterator over a sequence range of a trace.
struct PagedIter<'a> {
    trace: &'a ExecutionTrace,
    next: u64,
    end: u64,
    page: std::vec::IntoIter<TraceEntry>,
}

impl Iterator for PagedIter<'_> {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        loop {
            if let Some(e) = self.page.next() {
                return Some(e);
            }
            if self.next >= self.end {
                return None;
            }
            let mut page = Vec::new();
            if self
                .trace
                .read_range_into(self.next, (self.next + PAGE).min(self.end), &mut page)
                .is_err()
            {
                return None; // read failure ends the iteration (see `window`)
            }
            if page.is_empty() {
                return None;
            }
            self.next += page.len() as u64;
            self.page = page.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_gdm::EventKind;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record(
            ModelEvent::new(100, EventKind::StateEnter, "A/fsm").with_to("Run"),
            vec![ReactionSpec::HighlightTarget],
            vec![],
        );
        t.record(
            ModelEvent::new(250, EventKind::SignalWrite, "A/out/u"),
            vec![ReactionSpec::ShowValue],
            vec!["signal out of range".into()],
        );
        t
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].seq, 0);
        assert_eq!(t.entries()[1].seq, 1);
        assert_eq!(t.time_range(), Some((100, 250)));
    }

    #[test]
    fn window_filters_by_time() {
        let t = sample();
        assert_eq!(t.window(0, 150).count(), 1);
        assert_eq!(t.window(0, 300).count(), 2);
        assert_eq!(t.window(300, 400).count(), 0);
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let back = ExecutionTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
        assert!(ExecutionTrace::from_json("nope").is_err());
    }

    #[test]
    fn empty_trace() {
        let t = ExecutionTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.time_range(), None);
    }

    #[test]
    fn window_on_empty_trace_is_empty() {
        let t = ExecutionTrace::new();
        assert_eq!(t.window(0, u64::MAX).count(), 0);
        assert_eq!(t.window(0, 0).count(), 0);
    }

    #[test]
    fn window_ends_are_inclusive() {
        let t = sample(); // entries at t = 100 and t = 250
                          // Both boundary instants are inside the window.
        assert_eq!(t.window(100, 250).count(), 2);
        // A degenerate window [t, t] still sees the entry at t.
        assert_eq!(t.window(100, 100).count(), 1);
        assert_eq!(t.window(250, 250).count(), 1);
        // One past either boundary excludes the entry.
        assert_eq!(t.window(101, 249).count(), 0);
        assert_eq!(t.window(0, 99).count(), 0);
        assert_eq!(t.window(251, u64::MAX).count(), 0);
        // An inverted window matches nothing.
        assert_eq!(t.window(250, 100).count(), 0);
    }

    #[test]
    fn time_range_boundaries() {
        let t = sample();
        // Range is (first entry, last entry), both inclusive instants.
        assert_eq!(t.time_range(), Some((100, 250)));
        // A single-entry trace has a degenerate range.
        let mut one = ExecutionTrace::new();
        one.record(
            ModelEvent::new(42, EventKind::StateEnter, "A/fsm"),
            vec![],
            vec![],
        );
        assert_eq!(one.time_range(), Some((42, 42)));
        assert_eq!(one.window(42, 42).count(), 1);
    }

    #[test]
    fn entries_since_returns_the_delta() {
        let t = sample();
        assert_eq!(t.entries_since(0).len(), 2);
        assert_eq!(t.entries_since(1).len(), 1);
        assert_eq!(t.entries_since(1)[0].seq, 1);
        assert_eq!(t.entries_since(2).len(), 0);
        // Cursors past the end are tolerated (subscriber saw everything).
        assert_eq!(t.entries_since(99).len(), 0);
    }

    #[test]
    fn catch_up_drops_already_stored_records() {
        // Persist two entries, then re-record them (the deterministic
        // re-execution) plus one new command.
        let stored = sample();
        let trace_entries = stored.entries();
        let store = crate::store::MemStore::from_entries(trace_entries.clone());
        let mut t = ExecutionTrace::with_store(Box::new(store));
        assert!(t.catching_up());
        assert_eq!(t.len(), 2);
        let s0 = t.record(
            trace_entries[0].event.clone(),
            trace_entries[0].reactions.clone(),
            vec![],
        );
        assert_eq!(s0, 0);
        assert_eq!(t.len(), 2, "catch-up records are dropped, not duplicated");
        let s1 = t.record(trace_entries[1].event.clone(), vec![], vec![]);
        assert_eq!(s1, 1);
        assert!(!t.catching_up());
        let s2 = t.record(
            ModelEvent::new(300, EventKind::StateEnter, "A/fsm").with_to("Idle"),
            vec![],
            vec![],
        );
        assert_eq!(s2, 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(2).unwrap().event.time_ns, 300);
    }

    #[test]
    fn clone_detaches_into_memory() {
        let t = sample();
        let c = t.clone();
        assert_eq!(t, c);
        assert_eq!(t.to_json(), c.to_json());
    }

    #[test]
    fn for_each_visits_every_entry_in_order() {
        let t = sample();
        let mut seen = Vec::new();
        t.for_each(|e| seen.push(e.seq));
        assert_eq!(seen, vec![0, 1]);
    }
}
