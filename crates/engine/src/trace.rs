//! Execution trace recording.
//!
//! "GDM animation will trace model-level behavior and always make a record
//! of the execution trace" (paper §II). Every processed command is
//! appended to an [`ExecutionTrace`] together with the reactions it
//! triggered and any expectation violations it raised; the trace feeds
//! the replay function and the timing diagram.

use gmdf_gdm::{ModelEvent, ReactionSpec};
use serde::{Deserialize, Serialize};

/// One recorded command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The command.
    pub event: ModelEvent,
    /// Reactions the engine applied.
    pub reactions: Vec<ReactionSpec>,
    /// Expectation violations raised by this command.
    pub violations: Vec<String>,
}

/// The recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    entries: Vec<TraceEntry>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, assigning its sequence number.
    pub fn record(
        &mut self,
        event: ModelEvent,
        reactions: Vec<ReactionSpec>,
        violations: Vec<String>,
    ) -> u64 {
        let seq = self.entries.len() as u64;
        self.entries.push(TraceEntry {
            seq,
            event,
            reactions,
            violations,
        });
        seq
    }

    /// All entries, in sequence order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries recorded at or after sequence number `seq` — the
    /// incremental delta a subscriber that has already seen `[0, seq)`
    /// still has to consume. Sequence numbers are dense, so `seq` is
    /// also the index of the first returned entry.
    pub fn entries_since(&self, seq: u64) -> &[TraceEntry] {
        let start = (seq as usize).min(self.entries.len());
        &self.entries[start..]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Time range covered, if nonempty.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        let first = self.entries.first()?.event.time_ns;
        let last = self.entries.last()?.event.time_ns;
        Some((first, last))
    }

    /// Entries whose event time falls in `[t0, t1]`.
    pub fn window(&self, t0_ns: u64, t1_ns: u64) -> impl Iterator<Item = &TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.event.time_ns >= t0_ns && e.event.time_ns <= t1_ns)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parses a saved trace.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_gdm::EventKind;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record(
            ModelEvent::new(100, EventKind::StateEnter, "A/fsm").with_to("Run"),
            vec![ReactionSpec::HighlightTarget],
            vec![],
        );
        t.record(
            ModelEvent::new(250, EventKind::SignalWrite, "A/out/u"),
            vec![ReactionSpec::ShowValue],
            vec!["signal out of range".into()],
        );
        t
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].seq, 0);
        assert_eq!(t.entries()[1].seq, 1);
        assert_eq!(t.time_range(), Some((100, 250)));
    }

    #[test]
    fn window_filters_by_time() {
        let t = sample();
        assert_eq!(t.window(0, 150).count(), 1);
        assert_eq!(t.window(0, 300).count(), 2);
        assert_eq!(t.window(300, 400).count(), 0);
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let back = ExecutionTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
        assert!(ExecutionTrace::from_json("nope").is_err());
    }

    #[test]
    fn empty_trace() {
        let t = ExecutionTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.time_range(), None);
    }

    #[test]
    fn window_on_empty_trace_is_empty() {
        let t = ExecutionTrace::new();
        assert_eq!(t.window(0, u64::MAX).count(), 0);
        assert_eq!(t.window(0, 0).count(), 0);
    }

    #[test]
    fn window_ends_are_inclusive() {
        let t = sample(); // entries at t = 100 and t = 250
                          // Both boundary instants are inside the window.
        assert_eq!(t.window(100, 250).count(), 2);
        // A degenerate window [t, t] still sees the entry at t.
        assert_eq!(t.window(100, 100).count(), 1);
        assert_eq!(t.window(250, 250).count(), 1);
        // One past either boundary excludes the entry.
        assert_eq!(t.window(101, 249).count(), 0);
        assert_eq!(t.window(0, 99).count(), 0);
        assert_eq!(t.window(251, u64::MAX).count(), 0);
        // An inverted window matches nothing.
        assert_eq!(t.window(250, 100).count(), 0);
    }

    #[test]
    fn time_range_boundaries() {
        let t = sample();
        // Range is (first entry, last entry), both inclusive instants.
        assert_eq!(t.time_range(), Some((100, 250)));
        // A single-entry trace has a degenerate range.
        let mut one = ExecutionTrace::new();
        one.record(
            ModelEvent::new(42, EventKind::StateEnter, "A/fsm"),
            vec![],
            vec![],
        );
        assert_eq!(one.time_range(), Some((42, 42)));
        assert_eq!(one.window(42, 42).count(), 1);
    }

    #[test]
    fn entries_since_returns_the_delta() {
        let t = sample();
        assert_eq!(t.entries_since(0).len(), 2);
        assert_eq!(t.entries_since(1).len(), 1);
        assert_eq!(t.entries_since(1)[0].seq, 1);
        assert_eq!(t.entries_since(2).len(), 0);
        // Cursors past the end are tolerated (subscriber saw everything).
        assert_eq!(t.entries_since(99).len(), 0);
    }
}
