//! Dependency-free metric primitives shared by every layer of the
//! stack.
//!
//! The paper's debugger exists to make a running system observable; the
//! reproduction's own runtime deserves the same treatment. This module
//! provides the counters the engine and its embedders record into —
//! atomic, lock-free on the hot paths, cheap enough to stay always-on:
//!
//! * [`Counter`] / [`Gauge`] — monotonic and up/down atomics, cloneable
//!   handles over shared cells;
//! * [`Histogram`] — fixed-bucket log-scale latency/size histogram
//!   (16 linear buckets below 16, then 4 sub-buckets per octave ⇒
//!   ≤ 12.5 % relative bucket error) with p50/p90/p99/max read-out and
//!   lossless merging across instances;
//! * [`RecentSeries`] — a bounded ring buffer of timestamped samples
//!   for "events per second over the last N seconds" rate windows;
//! * [`StoreMetrics`] — the bundle a [`crate::ExecutionTrace`] records
//!   its store append/read latencies into when observability is on.
//!
//! Recording uses relaxed atomics throughout: metrics are statistics,
//! not synchronization, and a pump slice must never pay a fence for
//! them. Reads may therefore be momentarily torn across *different*
//! metrics (a snapshot is not a consistent cut), which is the standard
//! trade for zero-cost instrumentation.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning yields another handle to
/// the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge (queue depths, live connections). Decrements
/// saturate at zero instead of wrapping, so a racy unpaired decrement
/// can never turn into a 2^64 depth. Cloning yields another handle to
/// the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one (saturating).
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 16 linear (values 0..16) + 4 sub-buckets
/// for each octave `[2^m, 2^(m+1))`, `m` in 4..=63.
pub const HISTOGRAM_BUCKETS: usize = 16 + 60 * 4;

/// The bucket index recording `value` — first 16 values map linearly,
/// then each octave splits into 4 linear sub-buckets (HDR-style), so
/// the bucket's relative width is at most 1/8 of its lower bound.
fn bucket_index(value: u64) -> usize {
    if value < 16 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= 4
    let sub = ((value >> (msb - 2)) & 3) as usize;
    16 + (msb - 4) * 4 + sub
}

/// Inclusive lower bound of bucket `index` (the smallest value that
/// records into it).
fn bucket_lower_bound(index: usize) -> u64 {
    if index < 16 {
        return index as u64;
    }
    let msb = 4 + (index - 16) / 4;
    let sub = ((index - 16) % 4) as u64;
    (1u64 << msb) + sub * (1u64 << (msb - 2))
}

/// Representative value reported for bucket `index`: the midpoint of
/// its value range (exact for the linear buckets, ≤ 12.5 % off
/// elsewhere).
fn bucket_mid(index: usize) -> u64 {
    let lo = bucket_lower_bound(index);
    if index < 16 {
        return lo;
    }
    let hi = if index + 1 < HISTOGRAM_BUCKETS {
        bucket_lower_bound(index + 1)
    } else {
        u64::MAX
    };
    lo + (hi - lo) / 2
}

/// A fixed-bucket log-scale histogram over `u64` samples (latencies in
/// nanoseconds, batch sizes). Recording is one relaxed `fetch_add` per
/// bucket plus count/sum/max updates — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds this histogram's buckets into `acc` — how per-shard
    /// histograms merge into one fleet-wide read-out.
    pub fn merge_into(&self, acc: &mut HistogramAccum) {
        for (i, b) in self.buckets.iter().enumerate() {
            acc.buckets[i] += b.load(Ordering::Relaxed);
        }
        acc.count += self.count.load(Ordering::Relaxed);
        acc.sum += self.sum.load(Ordering::Relaxed);
        acc.max = acc.max.max(self.max.load(Ordering::Relaxed));
    }

    /// A point-in-time summary of this histogram alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut acc = HistogramAccum::new();
        self.merge_into(&mut acc);
        acc.snapshot()
    }
}

/// A plain (non-atomic) bucket accumulator: merge any number of
/// [`Histogram`]s into it, then summarize with
/// [`HistogramAccum::snapshot`].
#[derive(Debug)]
pub struct HistogramAccum {
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramAccum {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        HistogramAccum {
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The value at quantile `q` (0.0..=1.0): the representative value
    /// of the bucket holding the `ceil(q × count)`-th sample. Zero for
    /// an empty accumulator; the exact max for `q == 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket's midpoint can overshoot the true
                // maximum; never report a quantile above it.
                return bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// Summarizes the accumulated distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Serializable summary of a histogram: sample count, sum, quantile
/// estimates (bucket-resolution, ≤ 12.5 % relative error) and the exact
/// maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples (e.g. total nanoseconds).
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A bounded ring buffer of `(timestamp_ms, value)` samples — enough
/// recent history to answer "how much happened over the last window"
/// without unbounded growth. Pushes and reads take a mutex; callers
/// record at slice granularity, not per event, so contention is nil.
#[derive(Debug)]
pub struct RecentSeries {
    samples: Mutex<VecDeque<(u64, u64)>>,
    capacity: usize,
}

impl RecentSeries {
    /// A series keeping at most `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RecentSeries {
            samples: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Appends a sample taken at `at_ms` (milliseconds on the caller's
    /// monotonic clock), evicting the oldest past capacity.
    pub fn push(&self, at_ms: u64, value: u64) {
        let mut s = self
            .samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.len() >= self.capacity {
            s.pop_front();
        }
        s.push_back((at_ms, value));
    }

    /// Sum of the sample values with `timestamp_ms` in
    /// `[now_ms - window_ms, now_ms]`.
    pub fn sum_over(&self, now_ms: u64, window_ms: u64) -> u64 {
        let cutoff = now_ms.saturating_sub(window_ms);
        let s = self
            .samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        s.iter()
            .rev()
            .take_while(|(t, _)| *t >= cutoff)
            .map(|(_, v)| v)
            .sum()
    }

    /// Average rate per second over the trailing `window_ms` window.
    pub fn rate_per_sec(&self, now_ms: u64, window_ms: u64) -> f64 {
        let window_ms = window_ms.max(1);
        self.sum_over(now_ms, window_ms) as f64 * 1e3 / window_ms as f64
    }
}

/// Trace-store I/O metrics: what an instrumented
/// [`crate::ExecutionTrace`] records. One bundle is typically shared by
/// every session of a server and read out fleet-wide.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Entries appended to backing stores.
    pub appends: Counter,
    /// Wall nanoseconds per store append.
    pub append_ns: Histogram,
    /// Read operations served by backing stores.
    pub reads: Counter,
    /// Wall nanoseconds per store read operation.
    pub read_ns: Histogram,
    /// Sealed segments moved to the compressed cold tier.
    pub compactions: Counter,
    /// Sealed segments evicted by a retention budget.
    pub evicted_segments: Counter,
    /// Disk bytes reclaimed by compression + eviction.
    pub reclaimed_bytes: Counter,
    /// Wall nanoseconds per store maintenance call.
    pub maintain_ns: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the cell");

        let g = Gauge::new();
        g.add(3);
        g.dec();
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "gauge decrements saturate");
    }

    #[test]
    fn bucket_boundaries_are_monotonic_and_self_consistent() {
        // Linear region: exact.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and the
        // index is monotone in the value.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "bucket {i}");
        }
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            19,
            20,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            u64::MAX / 2,
            u64::MAX,
        ];
        for w in probes.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]));
        }
        // A value never lands below its bucket's range.
        for &v in &probes {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "value {v} bucket {i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(v < bucket_lower_bound(i + 1), "value {v} bucket {i}");
            }
        }
        // Sub-bucket width is 1/4 octave: relative error <= 12.5 %.
        for &v in probes.iter().filter(|&&v| (16..u64::MAX / 2).contains(&v)) {
            let i = bucket_index(v);
            let width = bucket_lower_bound(i + 1) - bucket_lower_bound(i);
            assert!(
                (width as f64) <= 0.26 * bucket_lower_bound(i) as f64,
                "bucket {i} width {width}"
            );
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_are_exact_in_the_linear_region() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 55);
        assert_eq!(s.p50, 5);
        assert_eq!(s.p90, 9);
        assert_eq!(s.p99, 10);
        assert_eq!(s.max, 10);
        assert!((s.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_bound_error_in_the_log_region() {
        let h = Histogram::new();
        for i in 0..1000u64 {
            h.record(1_000 + i * 100); // 1_000 .. 100_900
        }
        let s = h.snapshot();
        let true_p50 = 1_000.0 + 499.0 * 100.0;
        assert!(
            (s.p50 as f64 - true_p50).abs() / true_p50 < 0.125,
            "p50 {} vs true {true_p50}",
            s.p50
        );
        assert_eq!(s.max, 100_900);
        assert!(s.p99 <= s.max && s.p90 <= s.p99 && s.p50 <= s.p90);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [1u64, 5, 17, 100, 1_000, 65_536] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 15, 31, 4_096, 123_456_789] {
            b.record(v);
            combined.record(v);
        }
        let mut acc = HistogramAccum::new();
        a.merge_into(&mut acc);
        b.merge_into(&mut acc);
        assert_eq!(acc.snapshot(), combined.snapshot());
    }

    #[test]
    fn quantile_edges() {
        let mut acc = HistogramAccum::new();
        assert_eq!(acc.quantile(0.5), 0, "empty accumulator");
        let h = Histogram::new();
        h.record(7);
        h.merge_into(&mut acc);
        assert_eq!(acc.quantile(0.0), 7, "rank clamps to the first sample");
        assert_eq!(acc.quantile(1.0), 7);
        // Log-region quantiles land on the bucket midpoint — within the
        // bucket's relative error, and never above the recorded max.
        let h2 = Histogram::new();
        h2.record(1_000_003);
        let s = h2.snapshot();
        assert!(s.p50 <= s.max && s.p99 <= s.max);
        for q in [s.p50, s.p99] {
            let err = (q as f64 - 1_000_003.0).abs() / 1_000_003.0;
            assert!(err < 0.125, "quantile {q} err {err}");
        }
        assert_eq!(s.max, 1_000_003);
    }

    #[test]
    fn recent_series_windows_and_evicts() {
        let r = RecentSeries::new(4);
        for (t, v) in [(100u64, 10u64), (200, 20), (300, 30), (400, 40)] {
            r.push(t, v);
        }
        assert_eq!(r.sum_over(400, 200), 90); // t in [200, 400]
        assert_eq!(r.sum_over(400, 10_000), 100);
        r.push(500, 50); // evicts (100, 10)
        assert_eq!(r.sum_over(500, 10_000), 140);
        // Rate: 140 units over a 400 ms window.
        let rate = r.rate_per_sec(500, 400);
        assert!((rate - 140.0 * 2.5).abs() < 1e-9);
    }
}
