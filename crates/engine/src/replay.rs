//! Trace replay and timing diagrams.
//!
//! "In real-time embedded applications, model-level animation … might
//! occur in milliseconds. Therefore, GDM animation will trace model-level
//! behavior and always make a record of the execution trace. The user can
//! then monitor the application's behavior via a replay function
//! associated with a timing diagram" (paper §II).

use crate::engine::apply_reaction;
use crate::trace::{ExecutionTrace, TraceEntry};
use gmdf_gdm::{DebuggerModel, EventKind, ModelEvent, VisualState};
use gmdf_render::TimingDiagram;

/// Steps through a recorded trace, rebuilding the animation offline.
///
/// On the default in-memory backend entries are read zero-copy from the
/// store's slice; on a disk-backed trace they are prefetched in pages,
/// so a replay streams segments instead of holding the whole run, and
/// [`Replayer::play_to_time`] locates its stop boundary through the
/// store's time index.
#[derive(Debug)]
pub struct Replayer<'a> {
    trace: &'a ExecutionTrace,
    gdm: &'a DebuggerModel,
    pos: u64,
    visual: VisualState,
    /// Zero-copy fast path: the whole trace, when memory-backed.
    slice: Option<&'a [TraceEntry]>,
    /// Disk path: prefetched entries
    /// `[page_start, page_start + page.len())`.
    page: Vec<TraceEntry>,
    page_start: u64,
}

impl<'a> Replayer<'a> {
    /// Creates a replayer positioned before the first *retained* entry
    /// — on a store whose retention budget evicted old segments, replay
    /// starts at the eviction floor, not at 0.
    pub fn new(gdm: &'a DebuggerModel, trace: &'a ExecutionTrace) -> Self {
        Replayer {
            slice: trace.as_slice(),
            pos: trace.first_retained_seq(),
            trace,
            gdm,
            visual: VisualState::new(),
            page: Vec::new(),
            page_start: 0,
        }
    }

    /// Current position (entries already applied).
    pub fn position(&self) -> usize {
        self.pos as usize
    }

    /// The reconstructed animation state at the current position.
    pub fn visual(&self) -> &VisualState {
        &self.visual
    }

    /// The entry at `pos` — from the memory-backed slice when there is
    /// one, otherwise from the prefetched page.
    fn fetch(&mut self, pos: u64) -> Option<&TraceEntry> {
        if let Some(slice) = self.slice {
            return slice.get(pos as usize);
        }
        let in_page = pos >= self.page_start && pos < self.page_start + self.page.len() as u64;
        if !in_page {
            self.page.clear();
            if self
                .trace
                .read_range_into(pos, pos + crate::trace::PAGE, &mut self.page)
                .is_err()
            {
                return None; // a failing store ends the replay early
            }
            self.page_start = pos;
            if self.page.is_empty() {
                return None;
            }
        }
        self.page.get((pos - self.page_start) as usize)
    }

    /// Applies the next entry; returns it, or `None` at the end.
    pub fn step_forward(&mut self) -> Option<TraceEntry> {
        let pos = self.pos;
        let entry = self.fetch(pos)?.clone();
        for &reaction in &entry.reactions {
            apply_reaction(self.gdm, &mut self.visual, reaction, &entry.event);
        }
        self.pos += 1;
        Some(entry)
    }

    /// Replays from the start (the retention floor, on an evicted
    /// store) up to and including sequence number `seq`.
    pub fn seek(&mut self, seq: u64) {
        self.pos = self.trace.first_retained_seq();
        self.visual = VisualState::new();
        while (self.pos as usize) < self.trace.len() {
            match self.fetch(self.pos) {
                Some(next) if next.seq > seq => break,
                Some(_) => {
                    self.step_forward();
                }
                None => break,
            }
        }
    }

    /// Replays until simulated time `t_ns` (inclusive). The stop
    /// boundary comes from the trace's time index, so on a disk-backed
    /// trace only the replayed prefix is read.
    pub fn play_to_time(&mut self, t_ns: u64) {
        // One past the last entry with time <= t_ns. A store read
        // failure replays nothing rather than panicking mid-animation.
        let (_, stop) = self.trace.window_bounds(0, t_ns).unwrap_or((0, 0));
        while self.pos < stop {
            if self.step_forward().is_none() {
                break;
            }
        }
    }

    /// Renders the frame at the current position as ASCII art.
    pub fn frame_ascii(&self) -> String {
        gmdf_gdm::render_ascii(self.gdm, &self.visual)
    }

    /// Renders the frame at the current position as SVG.
    pub fn frame_svg(&self) -> String {
        gmdf_gdm::render_svg(self.gdm, &self.visual)
    }
}

/// Builds the replay timing diagram from a trace: one lane per state
/// machine (state occupancy segments), plus marker lanes for signal
/// writes (`*`), task activity (`^`/`$`) and violations (`!`).
pub fn timing_diagram(trace: &ExecutionTrace, title: &str) -> TimingDiagram {
    let (t0, t1) = trace.time_range().unwrap_or((0, 1));
    let mut d = TimingDiagram::new(title, t0, t1);
    // State occupancy: remember the last entered state per machine path.
    let mut open: std::collections::BTreeMap<String, (u64, String)> =
        std::collections::BTreeMap::new();
    // Paged iteration: the diagram streams the trace instead of
    // materializing it (it may be disk-backed and long).
    trace.for_each(|entry| {
        let e: &ModelEvent = &entry.event;
        match e.kind {
            EventKind::StateEnter | EventKind::ModeSwitch => {
                if let Some(to) = &e.to {
                    if let Some((since, state)) = open.remove(&e.path) {
                        d.segment(&e.path, since, e.time_ns, &state);
                    }
                    open.insert(e.path.clone(), (e.time_ns, to.clone()));
                }
            }
            EventKind::SignalWrite | EventKind::WatchChange => {
                let label = e
                    .value
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "write".to_owned());
                d.marker(&e.path, e.time_ns, '*', &label);
            }
            EventKind::TaskStart => d.marker(&e.path, e.time_ns, '^', "start"),
            EventKind::TaskEnd => d.marker(&e.path, e.time_ns, '$', "end"),
        }
        for v in &entry.violations {
            d.marker(&entry.event.path, entry.event.time_ns, '!', v);
        }
    });
    // Close any still-open occupancy at the window end.
    for (path, (since, state)) in open {
        d.segment(&path, since, t1, &state);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DebuggerEngine;
    use gmdf_gdm::{default_bindings, EventValue, GdmElement, GdmPattern};
    use gmdf_render::Rect;

    fn gdm() -> DebuggerModel {
        let mut m = DebuggerModel::new("replay demo");
        m.bindings = default_bindings();
        m.elements.push(GdmElement {
            path: "L/ctl".into(),
            label: "ctl".into(),
            metaclass: "StateMachineBlock".into(),
            pattern: GdmPattern::RoundedRectangle,
            parent: None,
            bounds: Rect::new(0.0, 0.0, 500.0, 200.0),
        });
        for (i, s) in ["Red", "Green", "Yellow"].iter().enumerate() {
            m.elements.push(GdmElement {
                path: format!("L/ctl/{s}"),
                label: (*s).into(),
                metaclass: "State".into(),
                pattern: GdmPattern::Circle,
                parent: Some(0),
                bounds: Rect::new(20.0 + 150.0 * i as f64, 60.0, 110.0, 46.0),
            });
        }
        m
    }

    fn recorded_trace() -> (DebuggerModel, ExecutionTrace) {
        let g = gdm();
        let mut engine = DebuggerEngine::new(g.clone());
        for (t, from, to) in [
            (100, "Red", "Green"),
            (400, "Green", "Yellow"),
            (600, "Yellow", "Red"),
        ] {
            engine.feed(
                ModelEvent::new(t, EventKind::StateEnter, "L/ctl")
                    .with_from(from)
                    .with_to(to),
            );
        }
        engine.feed(
            ModelEvent::new(650, EventKind::SignalWrite, "L/out/lamp")
                .with_value(EventValue::Int(0)),
        );
        (g, engine.trace().clone())
    }

    #[test]
    fn replay_reproduces_live_visuals() {
        let (g, trace) = recorded_trace();
        // Live reference.
        let mut live = DebuggerEngine::new(g.clone());
        for entry in trace.entries() {
            live.feed(entry.event.clone());
        }
        // Replay.
        let mut r = Replayer::new(&g, &trace);
        while r.step_forward().is_some() {}
        assert_eq!(r.visual(), live.visual());
        assert_eq!(r.position(), trace.len());
    }

    #[test]
    fn seek_is_deterministic() {
        let (g, trace) = recorded_trace();
        let mut a = Replayer::new(&g, &trace);
        a.seek(1);
        let mut b = Replayer::new(&g, &trace);
        b.step_forward();
        b.step_forward();
        assert_eq!(a.visual(), b.visual());
        // Seeking backwards restarts cleanly.
        a.seek(0);
        assert!(a.visual()["L/ctl/Green"].highlighted);
    }

    #[test]
    fn play_to_time_stops_at_boundary() {
        let (g, trace) = recorded_trace();
        let mut r = Replayer::new(&g, &trace);
        r.play_to_time(450);
        assert_eq!(r.position(), 2); // events at 100 and 400
        assert!(r.visual()["L/ctl/Yellow"].highlighted);
        let art = r.frame_ascii();
        assert!(art.contains("Yellow"));
    }

    #[test]
    fn timing_diagram_has_occupancy_and_markers() {
        let (_, trace) = recorded_trace();
        let d = timing_diagram(&trace, "traffic");
        let ctl = d.lanes.iter().find(|l| l.name == "L/ctl").unwrap();
        // Green [100,400), Yellow [400,600), Red [600,650-end].
        assert_eq!(ctl.segments.len(), 3);
        assert_eq!(ctl.segments[0].label, "Green");
        assert_eq!(ctl.segments[1].label, "Yellow");
        let out = d.lanes.iter().find(|l| l.name == "L/out/lamp").unwrap();
        assert_eq!(out.markers.len(), 1);
        assert_eq!(out.markers[0].glyph, '*');
        // Renders both ways.
        assert!(d.to_ascii(80).contains("Green"));
        assert!(d.to_svg().contains(">Green<"));
    }

    #[test]
    fn empty_trace_diagram() {
        let d = timing_diagram(&ExecutionTrace::new(), "empty");
        assert!(d.lanes.is_empty());
    }
}
