//! Pluggable trace storage: in-memory and segmented on-disk stores.
//!
//! The paper promises that GDM animation "always make[s] a record of the
//! execution trace"; for long runs that record must not cost O(whole
//! run) memory or die with the process. [`TraceStore`] abstracts where
//! [`TraceEntry`]s live; [`MemStore`] is the classic `Vec` (the
//! default), and [`SegmentStore`] is an append-only, segmented on-disk
//! log:
//!
//! ```text
//! <dir>/
//!   meta.json          {"version":1,"capacity":N,"codec":…}  (written once)
//!   seg-00000000.lgz   N entries, LZ-compressed     (cold tier)
//!   seg-00000001.log   N length-prefixed entries    (sealed)
//!   seg-00000002.log   < N entries                  (active tail)
//! ```
//!
//! Every record is `[u32 len, big-endian][payload]` — the same framing
//! the wire protocol and the session journal use — where the payload is
//! either compact JSON ([`Codec::Json`], the debug/interop format) or
//! the varint binary form ([`Codec::Binary`], see [`encode_entry`]);
//! the choice is fixed per store in `meta.json`. Each segment holds a
//! fixed number of entries, so a sequence number maps to its segment by
//! division; an in-memory per-segment index of `(first_seq, last_seq,
//! t0_ns, t1_ns)` makes `entries_since`, `window` and replay seek
//! O(log segments + hit) instead of O(whole run). The active segment is
//! additionally cached in memory, so the hot path (the scheduler
//! publishing the latest delta) never touches disk.
//!
//! **Compaction tiers**: under a [`Retention`] policy,
//! [`TraceStore::maintain`] moves sealed segments into an LZ-compressed
//! `.lgz` cold tier and, past a disk budget, evicts the oldest sealed
//! segments entirely. Reads (`read_into`, `window_bounds`, paging)
//! span all tiers transparently; [`TraceStore::first_retained_seq`]
//! reports the eviction floor while [`TraceStore::len`] keeps counting
//! every appended entry, so dense numbering and deterministic catch-up
//! survive retention.
//!
//! **Crash safety**: opening a store re-scans the segment files once; a
//! torn tail (a record cut mid-write, a corrupt length, an unparsable
//! payload) truncates the file at the last whole record and drops any
//! later segment — recovery always yields a valid *prefix* of the
//! original trace, never a gap or a panic
//! (`crates/engine/tests/store_recovery.rs` proves this for kills at
//! arbitrary byte offsets).

use crate::trace::TraceEntry;
use gmdf_gdm::{EventKind, EventValue, ModelEvent, ReactionSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// A trace storage failure (I/O, corrupt metadata…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(String);

impl StoreError {
    /// Wraps a message.
    pub fn new(message: impl Into<String>) -> Self {
        StoreError(message.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError(e.to_string())
    }
}

/// Storage footprint of a [`TraceStore`] — what the observability layer
/// reports per session and sums fleet-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files backing the store (0 for memory-resident stores).
    pub segments: u64,
    /// Bytes of encoded records on disk (0 for memory-resident stores).
    pub disk_bytes: u64,
    /// Sealed segments currently held in the compressed cold tier.
    pub compacted_segments: u64,
}

/// Where recorded [`TraceEntry`]s live.
///
/// Contract shared by every implementation:
///
/// * entries are append-only and densely numbered — the `n`-th appended
///   entry has `seq == n`;
/// * event times are nondecreasing in sequence order (the engine feeds
///   commands in time order), which is what lets [`TraceStore::window_bounds`]
///   binary-search instead of scan;
/// * reads never block appends made by the same owner (single-writer).
pub trait TraceStore: Send + fmt::Debug {
    /// Appends one entry. `entry.seq` must equal [`TraceStore::len`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (in-memory stores never fail).
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError>;

    /// Number of stored entries.
    fn len(&self) -> u64;

    /// `true` when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the entries with `seq` in `[from_seq, to_seq)` (clamped
    /// to the stored range) onto `out`, in sequence order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError>;

    /// The half-open sequence range `[lo, hi)` of entries whose event
    /// time falls in `[t0_ns, t1_ns]`. Empty windows (including
    /// inverted inputs) return `lo == hi`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading boundary segments — a
    /// failing disk must surface as an error, never masquerade as an
    /// empty window.
    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError>;

    /// `(first, last)` event time, if nonempty.
    fn time_range(&self) -> Option<(u64, u64)>;

    /// Flushes buffered appends out of the process (no-op in memory).
    /// This guarantees durability against a *process* crash. Disk
    /// stores deliberately do not fsync the append path (it is the hot
    /// path), so an OS crash or power loss may drop the most recent
    /// entries; owners that need stronger guarantees pair the store
    /// with an fsynced command journal and regenerate the lost tail by
    /// deterministic replay (`gmdf-server`'s durable sessions do).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Fast path: the full entry slice, when the store is memory-backed.
    /// Disk-backed stores return `None` and are read via
    /// [`TraceStore::read_into`].
    fn as_slice(&self) -> Option<&[TraceEntry]> {
        None
    }

    /// Storage footprint (segment count, on-disk bytes). Memory-backed
    /// stores keep the all-zero default.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Sequence number of the oldest entry still readable. `0` unless a
    /// retention budget has evicted old segments; reads below it are
    /// clamped up to it. [`TraceStore::len`] keeps counting *all*
    /// appended entries, so dense sequence numbering (and deterministic
    /// catch-up) survives eviction.
    fn first_retained_seq(&self) -> u64 {
        0
    }

    /// Runs one bounded unit of background maintenance (compress at
    /// most one sealed segment, then enforce the retention budget).
    /// Owners call this off the append hot path — the debug server's
    /// compactor thread does — and repeat while it reports progress.
    /// The default (memory stores, stores without retention) is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn maintain(&mut self) -> Result<MaintenanceReport, StoreError> {
        Ok(MaintenanceReport::default())
    }

    /// Forbids retention from evicting any entry with `seq >= floor`.
    ///
    /// Time travel anchors on checkpoints: a seek restores the nearest
    /// checkpoint at or before the target and replays forward, and the
    /// full-trace view stitches the persisted prefix below the restore
    /// point onto the regenerated tail. Evicting a segment newer than
    /// the **oldest retained checkpoint** would tear a hole in every
    /// such stitch, so the checkpoint owner pins the floor here after
    /// each checkpoint write. `u64::MAX` (the initial value) disables
    /// the clamp — a store without checkpoints retains the original
    /// budget-only behavior. The default implementation (memory stores,
    /// stores without retention) ignores the floor: they never evict.
    fn set_retain_floor(&mut self, _floor: u64) {}
}

/// What [`TraceStore::maintain`] accomplished in one call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Sealed segments moved to the compressed cold tier.
    pub compacted_segments: u64,
    /// Disk bytes freed (compression savings + evicted files).
    pub reclaimed_bytes: u64,
    /// Whole segments evicted by the retention budget.
    pub dropped_segments: u64,
    /// Entries inside those evicted segments.
    pub dropped_entries: u64,
}

impl MaintenanceReport {
    /// `true` when the call changed anything — callers loop while this
    /// holds to drain pending maintenance.
    pub fn did_work(&self) -> bool {
        *self != MaintenanceReport::default()
    }
}

/// Retention policy for a [`SegmentStore`]: when sealed segments move
/// to the compressed cold tier, and how much disk the store may hold.
/// The default keeps everything uncompressed forever (the pre-retention
/// behavior).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Retention {
    /// Compress sealed segments older than this many newest sealed
    /// segments (`Some(0)` = compress every sealed segment as soon as
    /// it seals). `None` disables compression.
    pub compress_after: Option<usize>,
    /// Evict oldest sealed segments while the store's on-disk footprint
    /// exceeds this many bytes. `None` disables eviction. The active
    /// tail is never evicted.
    pub max_disk_bytes: Option<u64>,
}

impl Retention {
    /// `true` when any policy knob is set (maintenance can do work).
    pub fn is_active(&self) -> bool {
        self.compress_after.is_some() || self.max_disk_bytes.is_some()
    }
}

// ---------------------------------------------------------------------------
// Shared record framing
// ---------------------------------------------------------------------------

/// Validates a record payload length against the `u32` framing field.
///
/// Every framed stream in the system (trace segments, session journals,
/// the wire protocol) prefixes payloads with a big-endian `u32` length;
/// a payload over `u32::MAX` would silently truncate the prefix and
/// desynchronize the stream, so it must be rejected *before* writing.
///
/// # Errors
///
/// When `len` does not fit the 4-byte prefix.
pub fn frame_len(len: usize) -> Result<[u8; 4], StoreError> {
    u32::try_from(len)
        .map(u32::to_be_bytes)
        .map_err(|_| StoreError::new(format!("record of {len} bytes exceeds the u32 frame limit")))
}

/// Encodes one serializable record as `[u32 len BE][compact JSON]` —
/// the framing shared by trace segments, session journals and the wire
/// protocol.
///
/// # Errors
///
/// Rejects payloads whose length does not fit the `u32` prefix (see
/// [`frame_len`]) instead of truncating it.
pub fn encode_record<T: Serialize>(value: &T) -> Result<Vec<u8>, StoreError> {
    let json = serde_json::to_string(value).expect("record serializes");
    let mut out = Vec::with_capacity(4 + json.len());
    out.extend_from_slice(&frame_len(json.len())?);
    out.extend_from_slice(json.as_bytes());
    Ok(out)
}

/// Reads every *whole, decodable* record from `path`, stopping at the
/// first torn or corrupt one. Returns the decoded records and the byte
/// length of the valid prefix — everything past it is damage from an
/// interrupted write and safe to truncate.
///
/// # Errors
///
/// Propagates I/O failures (a missing file is an error; corruption is
/// not — it just shortens the valid prefix).
pub fn read_records<T: Deserialize>(path: &Path) -> Result<(Vec<T>, u64), StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let (records, offset) = scan_frames(&bytes, decode_json::<T>);
    Ok((records, offset))
}

/// Walks `[u32 len BE][payload]` frames from the front of `bytes`,
/// decoding each payload with `decode`, and stops at the first torn or
/// undecodable one. Returns the decoded values and the byte length of
/// the valid prefix.
fn scan_frames<T>(bytes: &[u8], mut decode: impl FnMut(&[u8]) -> Option<T>) -> (Vec<T>, u64) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 4 {
        let len = u32::from_be_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        if len == 0 || bytes.len() - offset - 4 < len {
            break; // torn or nonsense length: end of the valid prefix
        }
        let Some(value) = decode(&bytes[offset + 4..offset + 4 + len]) else {
            break;
        };
        records.push(value);
        offset += 4 + len;
    }
    (records, offset as u64)
}

fn decode_json<T: Deserialize>(payload: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(payload).ok()?;
    serde_json::from_str::<T>(text).ok()
}

/// Truncates `path` to `len` bytes — recovery discarding a torn tail.
fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Record codecs
// ---------------------------------------------------------------------------

/// How [`TraceEntry`] payloads are encoded inside a segment's frames.
///
/// `Json` is the debug/interop codec (human-greppable segments, and the
/// oracle the property suite checks `Binary` against); `Binary` is the
/// compact varint codec for production stores. The choice is recorded
/// in the store's `meta.json`, so mixed-codec session directories open
/// cleanly — each store decodes with the codec it was written with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Codec {
    /// Compact JSON payloads (the v1 on-disk format).
    #[default]
    Json,
    /// Fixed-width header + varint fields (see [`encode_entry`]).
    Binary,
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        let chunk = u64::from(b & 0x7f);
        if shift == 63 && chunk > 1 {
            return None; // bits past the 64th: not a value we encode
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            // Reject non-canonical trailing zero continuation bytes so
            // every value has exactly one encoding.
            if b == 0 && shift != 0 {
                return None;
            }
            return Some(v);
        }
    }
    None // > 10 bytes: not a varint we ever write
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_to_u8(kind: EventKind) -> u8 {
    match kind {
        EventKind::TaskStart => 0,
        EventKind::TaskEnd => 1,
        EventKind::StateEnter => 2,
        EventKind::ModeSwitch => 3,
        EventKind::SignalWrite => 4,
        EventKind::WatchChange => 5,
    }
}

fn kind_from_u8(b: u8) -> Option<EventKind> {
    Some(match b {
        0 => EventKind::TaskStart,
        1 => EventKind::TaskEnd,
        2 => EventKind::StateEnter,
        3 => EventKind::ModeSwitch,
        4 => EventKind::SignalWrite,
        5 => EventKind::WatchChange,
        _ => return None,
    })
}

fn reaction_to_u8(r: ReactionSpec) -> u8 {
    match r {
        ReactionSpec::HighlightTarget => 0,
        ReactionSpec::HighlightSelf => 1,
        ReactionSpec::ShowValue => 2,
        ReactionSpec::Pulse => 3,
        ReactionSpec::RecordOnly => 4,
    }
}

fn reaction_from_u8(b: u8) -> Option<ReactionSpec> {
    Some(match b {
        0 => ReactionSpec::HighlightTarget,
        1 => ReactionSpec::HighlightSelf,
        2 => ReactionSpec::ShowValue,
        3 => ReactionSpec::Pulse,
        4 => ReactionSpec::RecordOnly,
        _ => return None,
    })
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(std::str::from_utf8(slice).ok()?.to_owned())
}

/// Binary payload for one [`TraceEntry`]:
///
/// ```text
/// varint seq · varint time_ns · u8 kind · u8 flags ·
/// str path · [str from] · [str to] · [value] ·
/// varint n_reactions · n × u8 · varint n_violations · n × str
/// ```
///
/// where `str` is `varint len + UTF-8 bytes`, `flags` packs
/// `bit0 = from present`, `bit1 = to present`, `bits2-3 = value tag`
/// (0 none, 1 bool, 2 int, 3 real), and `value` is one byte for bools,
/// a zigzag varint for ints, or 8 little-endian `f64` bits for reals.
fn encode_entry_binary(entry: &TraceEntry) -> Vec<u8> {
    let e = &entry.event;
    let mut out = Vec::with_capacity(24 + e.path.len());
    push_varint(&mut out, entry.seq);
    push_varint(&mut out, e.time_ns);
    out.push(kind_to_u8(e.kind));
    let value_tag = match e.value {
        None => 0u8,
        Some(EventValue::Bool(_)) => 1,
        Some(EventValue::Int(_)) => 2,
        Some(EventValue::Real(_)) => 3,
    };
    let flags = u8::from(e.from.is_some()) | (u8::from(e.to.is_some()) << 1) | (value_tag << 2);
    out.push(flags);
    push_str(&mut out, &e.path);
    if let Some(from) = &e.from {
        push_str(&mut out, from);
    }
    if let Some(to) = &e.to {
        push_str(&mut out, to);
    }
    match e.value {
        None => {}
        Some(EventValue::Bool(b)) => out.push(u8::from(b)),
        Some(EventValue::Int(i)) => push_varint(&mut out, zigzag(i)),
        Some(EventValue::Real(r)) => out.extend_from_slice(&r.to_bits().to_le_bytes()),
    }
    push_varint(&mut out, entry.reactions.len() as u64);
    for &r in &entry.reactions {
        out.push(reaction_to_u8(r));
    }
    push_varint(&mut out, entry.violations.len() as u64);
    for v in &entry.violations {
        push_str(&mut out, v);
    }
    out
}

/// Strict inverse of [`encode_entry_binary`]: any unknown tag, bad
/// UTF-8, truncation or trailing byte is a decode failure (`None`), so
/// damage shortens the valid prefix exactly like a corrupt JSON record.
fn decode_entry_binary(bytes: &[u8]) -> Option<TraceEntry> {
    let mut pos = 0usize;
    let seq = read_varint(bytes, &mut pos)?;
    let time_ns = read_varint(bytes, &mut pos)?;
    let kind = kind_from_u8(*bytes.get(pos)?)?;
    pos += 1;
    let flags = *bytes.get(pos)?;
    pos += 1;
    if flags & 0xf0 != 0 {
        return None;
    }
    let path = read_str(bytes, &mut pos)?;
    let from = if flags & 1 != 0 {
        Some(read_str(bytes, &mut pos)?)
    } else {
        None
    };
    let to = if flags & 2 != 0 {
        Some(read_str(bytes, &mut pos)?)
    } else {
        None
    };
    let value = match (flags >> 2) & 3 {
        0 => None,
        1 => {
            let b = *bytes.get(pos)?;
            pos += 1;
            if b > 1 {
                return None;
            }
            Some(EventValue::Bool(b == 1))
        }
        2 => Some(EventValue::Int(unzigzag(read_varint(bytes, &mut pos)?))),
        _ => {
            let raw = bytes.get(pos..pos + 8)?;
            pos += 8;
            Some(EventValue::Real(f64::from_bits(u64::from_le_bytes(
                raw.try_into().ok()?,
            ))))
        }
    };
    let n_reactions = read_varint(bytes, &mut pos)? as usize;
    if n_reactions > bytes.len().saturating_sub(pos) {
        return None;
    }
    let mut reactions = Vec::with_capacity(n_reactions);
    for _ in 0..n_reactions {
        reactions.push(reaction_from_u8(*bytes.get(pos)?)?);
        pos += 1;
    }
    let n_violations = read_varint(bytes, &mut pos)? as usize;
    if n_violations > bytes.len().saturating_sub(pos) {
        return None;
    }
    let mut violations = Vec::with_capacity(n_violations);
    for _ in 0..n_violations {
        violations.push(read_str(bytes, &mut pos)?);
    }
    if pos != bytes.len() {
        return None; // trailing bytes = damage
    }
    Some(TraceEntry {
        seq,
        event: ModelEvent {
            time_ns,
            kind,
            path,
            from,
            to,
            value,
        },
        reactions,
        violations,
    })
}

/// Encodes one trace entry as a `[u32 len BE][payload]` frame in the
/// given codec — the segment-file append unit.
///
/// # Errors
///
/// Rejects payloads that overflow the `u32` length prefix.
pub fn encode_entry(entry: &TraceEntry, codec: Codec) -> Result<Vec<u8>, StoreError> {
    match codec {
        Codec::Json => encode_record(entry),
        Codec::Binary => {
            let payload = encode_entry_binary(entry);
            let mut out = Vec::with_capacity(4 + payload.len());
            out.extend_from_slice(&frame_len(payload.len())?);
            out.extend_from_slice(&payload);
            Ok(out)
        }
    }
}

fn decode_entry(payload: &[u8], codec: Codec) -> Option<TraceEntry> {
    match codec {
        Codec::Json => decode_json::<TraceEntry>(payload),
        Codec::Binary => decode_entry_binary(payload),
    }
}

/// Reads every whole, decodable entry frame from `path` in `codec`,
/// stopping at the first torn or corrupt one (see [`read_records`]).
///
/// # Errors
///
/// Propagates I/O failures; corruption just shortens the valid prefix.
pub fn read_entries(path: &Path, codec: Codec) -> Result<(Vec<TraceEntry>, u64), StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan_frames(&bytes, |payload| decode_entry(payload, codec)))
}

// ---------------------------------------------------------------------------
// Segment compression (the cold tier)
// ---------------------------------------------------------------------------

/// Compressed-segment file magic (`seg-XXXXXXXX.lgz` header).
const LGZ_MAGIC: [u8; 4] = *b"GLZ1";

fn hash3(bytes: &[u8]) -> usize {
    let v = u32::from(bytes[0]) | (u32::from(bytes[1]) << 8) | (u32::from(bytes[2]) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> 19) as usize & 0x1fff
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for chunk in lits.chunks(127) {
        out.push(chunk.len() as u8);
        out.extend_from_slice(chunk);
    }
}

/// Dependency-free LZ77 with a one-slot hash table (LZRW-style): the
/// token stream is `control byte` + operands, where a control byte with
/// the high bit clear is a literal run of 1–127 bytes, and with the high
/// bit set a back-reference of length 3–130 (`(ctl & 0x7f) + 3`)
/// followed by a 16-bit little-endian distance (1–65535). Overlapping
/// matches are allowed (run-length compression falls out for free).
/// Framed JSON/binary trace records are highly repetitive (paths and
/// structure repeat every record), so sealed segments shrink several-fold.
fn lz_compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    let mut table = [0usize; 0x2000]; // position + 1 of each 3-byte hash
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i < raw.len() {
        let mut match_len = 0usize;
        let mut match_off = 0usize;
        if i + 3 <= raw.len() {
            let h = hash3(&raw[i..]);
            let cand = table[h];
            table[h] = i + 1;
            if cand > 0 {
                let c = cand - 1;
                let off = i - c;
                if off > 0 && off <= 0xffff {
                    let max = (raw.len() - i).min(130);
                    let mut l = 0usize;
                    while l < max && raw[c + l] == raw[i + l] {
                        l += 1;
                    }
                    if l >= 3 {
                        match_len = l;
                        match_off = off;
                    }
                }
            }
        }
        if match_len >= 3 {
            flush_literals(&mut out, &raw[lit_start..i]);
            out.push(0x80 | (match_len - 3) as u8);
            out.extend_from_slice(&(match_off as u16).to_le_bytes());
            i += match_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &raw[lit_start..]);
    out
}

/// Inverse of [`lz_compress`]; `None` on any malformed token or when
/// the output does not come out to exactly `raw_len` bytes.
fn lz_decompress(data: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < data.len() {
        let ctl = data[i];
        i += 1;
        if ctl & 0x80 == 0 {
            let n = ctl as usize;
            if n == 0 || i + n > data.len() {
                return None;
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else {
            let len = (ctl & 0x7f) as usize + 3;
            let off = u16::from_le_bytes([*data.get(i)?, *data.get(i + 1)?]) as usize;
            i += 2;
            if off == 0 || off > out.len() {
                return None;
            }
            let start = out.len() - off;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return None;
        }
    }
    (out.len() == raw_len).then_some(out)
}

/// Packs a raw segment byte stream into the `.lgz` on-disk form:
/// `GLZ1` magic, `u64 LE` raw length, LZ token stream.
fn pack_segment(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + raw.len() / 2);
    out.extend_from_slice(&LGZ_MAGIC);
    out.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    out.extend_from_slice(&lz_compress(raw));
    out
}

/// Unpacks a `.lgz` file image back to the raw segment bytes; `None`
/// when the header or token stream is damaged.
fn unpack_segment(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 12 || data[..4] != LGZ_MAGIC {
        return None;
    }
    let raw_len = u64::from_le_bytes(data[4..12].try_into().ok()?);
    lz_decompress(&data[12..], usize::try_from(raw_len).ok()?)
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// The classic in-memory trace store: a `Vec` of entries. Fast,
/// unbounded, gone when the process exits — the default backend.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    entries: Vec<TraceEntry>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-filled with `entries` (used when deserializing a
    /// saved trace).
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        MemStore { entries }
    }
}

impl TraceStore for MemStore {
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError> {
        debug_assert_eq!(entry.seq, self.entries.len() as u64);
        self.entries.push(entry);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError> {
        let n = self.entries.len();
        let from = (from_seq as usize).min(n);
        let to = (to_seq as usize).min(n);
        if from < to {
            out.extend_from_slice(&self.entries[from..to]);
        }
        Ok(())
    }

    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError> {
        if t0_ns > t1_ns {
            return Ok((0, 0));
        }
        // Entries are time-ordered, so both boundaries binary-search.
        let lo = self.entries.partition_point(|e| e.event.time_ns < t0_ns);
        let hi = self.entries.partition_point(|e| e.event.time_ns <= t1_ns);
        if lo >= hi {
            Ok((0, 0))
        } else {
            Ok((lo as u64, hi as u64))
        }
    }

    fn time_range(&self) -> Option<(u64, u64)> {
        let first = self.entries.first()?.event.time_ns;
        let last = self.entries.last()?.event.time_ns;
        Some((first, last))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn as_slice(&self) -> Option<&[TraceEntry]> {
        Some(&self.entries)
    }
}

// ---------------------------------------------------------------------------
// OffsetMemStore
// ---------------------------------------------------------------------------

/// An in-memory trace store whose first entry has sequence number
/// `base` instead of 0 — the backend a time-travel replica records
/// into.
///
/// A replica restored from a checkpoint taken at trace length `base`
/// regenerates entries `base, base+1, …` by deterministic replay; the
/// entries below `base` already live in the durable store and are
/// *not* re-recorded. [`TraceStore::len`] reports `base + stored`,
/// [`TraceStore::first_retained_seq`] reports `base`, and reads below
/// `base` clamp up to it, so the replica's trace numbering lines up
/// exactly with the original run's.
#[derive(Debug, Clone)]
pub struct OffsetMemStore {
    base: u64,
    entries: Vec<TraceEntry>,
}

impl OffsetMemStore {
    /// An empty store whose next append must carry `seq == base`.
    pub fn new(base: u64) -> Self {
        OffsetMemStore {
            base,
            entries: Vec::new(),
        }
    }

    /// The fixed offset: sequence number of the first recordable entry.
    pub fn base(&self) -> u64 {
        self.base
    }
}

impl TraceStore for OffsetMemStore {
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError> {
        debug_assert_eq!(entry.seq, self.len());
        self.entries.push(entry);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError> {
        let n = self.entries.len();
        let from = (from_seq.max(self.base) - self.base).min(n as u64) as usize;
        let to = (to_seq.max(self.base) - self.base).min(n as u64) as usize;
        if from < to {
            out.extend_from_slice(&self.entries[from..to]);
        }
        Ok(())
    }

    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError> {
        if t0_ns > t1_ns {
            return Ok((0, 0));
        }
        let lo = self.entries.partition_point(|e| e.event.time_ns < t0_ns);
        let hi = self.entries.partition_point(|e| e.event.time_ns <= t1_ns);
        if lo >= hi {
            Ok((0, 0))
        } else {
            Ok((self.base + lo as u64, self.base + hi as u64))
        }
    }

    fn time_range(&self) -> Option<(u64, u64)> {
        let first = self.entries.first()?.event.time_ns;
        let last = self.entries.last()?.event.time_ns;
        Some((first, last))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn as_slice(&self) -> Option<&[TraceEntry]> {
        Some(&self.entries)
    }

    fn first_retained_seq(&self) -> u64 {
        self.base
    }
}

// ---------------------------------------------------------------------------
// SegmentStore
// ---------------------------------------------------------------------------

/// Default entries per segment for disk-backed traces.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 256;

/// Persisted store metadata (`meta.json`). `codec` was added after v1
/// shipped; metas without it are JSON stores (the only codec that
/// existed), which is exactly what `#[serde(default)]` yields.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreMeta {
    version: u32,
    capacity: usize,
    #[serde(default)]
    codec: Codec,
}

/// Everything [`SegmentStore::open_with`] needs to create or attach a
/// store: segment capacity, payload codec, and retention policy. The
/// codec applies to *new* stores — an existing store keeps the codec
/// recorded in its `meta.json`. Retention is a runtime policy and may
/// differ per boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Entries per segment file.
    pub capacity: usize,
    /// Payload codec for newly created stores.
    pub codec: Codec,
    /// Compression/eviction policy (default: keep everything).
    pub retention: Retention,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            capacity: DEFAULT_SEGMENT_CAPACITY,
            codec: Codec::default(),
            retention: Retention::default(),
        }
    }
}

/// Index entry for one sealed (full) segment still on disk.
#[derive(Debug, Clone, Copy)]
struct SegmentMeta {
    first_seq: u64,
    last_seq: u64,
    t0_ns: u64,
    t1_ns: u64,
    /// On-disk size of the segment file (raw frames, or the whole
    /// `.lgz` image once compressed).
    bytes: u64,
    /// `true` once [`TraceStore::maintain`] moved it to the `.lgz`
    /// cold tier.
    compressed: bool,
}

impl SegmentMeta {
    fn entry_count(&self) -> u64 {
        self.last_seq - self.first_seq + 1
    }
}

/// Append-only, segmented on-disk trace store (see the module docs for
/// layout, indexing and crash-safety).
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    capacity: usize,
    codec: Codec,
    retention: Retention,
    /// Index over retained sealed segments, ascending by sequence.
    /// Eviction removes from the front; the first element's
    /// `first_seq` is the retention floor.
    sealed: Vec<SegmentMeta>,
    /// The active segment's entries, cached in memory (≤ `capacity`).
    tail: Vec<TraceEntry>,
    /// Sequence number of the first tail entry — also the total number
    /// of entries ever sealed (including evicted ones), which keeps
    /// [`TraceStore::len`] counting the full appended history.
    tail_first: u64,
    /// Bytes of valid encoded records in the active segment file.
    tail_bytes: u64,
    /// Writer on the active segment file; opened lazily.
    writer: Option<BufWriter<File>>,
    /// Eviction clamp (see [`TraceStore::set_retain_floor`]): entries
    /// with `seq >= retain_floor` must stay readable. `u64::MAX` = no
    /// clamp.
    retain_floor: u64,
}

impl SegmentStore {
    /// Opens (or creates) the store at `dir`, recovering from any torn
    /// tail left by an interrupted writer. `capacity` (entries per
    /// segment) is used when creating a fresh store; an existing store
    /// keeps the capacity recorded in its `meta.json`.
    ///
    /// Opening costs one sequential scan of the segment files (that is
    /// the recovery validation); queries afterwards are indexed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and rejects unreadable metadata.
    pub fn open(dir: impl AsRef<Path>, capacity: usize) -> Result<Self, StoreError> {
        Self::open_with(
            dir,
            SegmentConfig {
                capacity,
                ..SegmentConfig::default()
            },
        )
    }

    /// [`SegmentStore::open`] with an explicit codec and retention
    /// policy. A fresh store records `config.codec` in its `meta.json`;
    /// an existing store keeps the codec it was written with (the
    /// config's codec is ignored), so mixed-codec session directories
    /// open cleanly. Retention applies from this open onward.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and rejects unreadable metadata.
    pub fn open_with(dir: impl AsRef<Path>, config: SegmentConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let meta_path = dir.join("meta.json");
        let (capacity, codec) = if meta_path.exists() {
            let text = std::fs::read_to_string(&meta_path)?;
            let meta: StoreMeta = serde_json::from_str(&text)
                .map_err(|e| StoreError::new(format!("corrupt meta.json: {e}")))?;
            if meta.version != 1 {
                return Err(StoreError::new(format!(
                    "unsupported store version {}",
                    meta.version
                )));
            }
            (meta.capacity.max(1), meta.codec)
        } else {
            let capacity = config.capacity.max(1);
            let meta = StoreMeta {
                version: 1,
                capacity,
                codec: config.codec,
            };
            // Write-fsync-rename so a kill (or power loss) mid-write
            // cannot leave a half-written meta masquerading as the
            // real one.
            let tmp = dir.join("meta.json.tmp");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(
                    serde_json::to_string(&meta)
                        .expect("meta serializes")
                        .as_bytes(),
                )?;
                f.sync_data()?;
            }
            std::fs::rename(&tmp, &meta_path)?;
            (capacity, config.codec)
        };

        let mut store = SegmentStore {
            dir,
            capacity,
            codec,
            retention: config.retention,
            sealed: Vec::new(),
            tail: Vec::new(),
            tail_first: 0,
            tail_bytes: 0,
            writer: None,
            retain_floor: u64::MAX,
        };
        store.recover()?;
        Ok(store)
    }

    /// Entries per segment.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The payload codec this store was created with.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Number of segment files currently backing the store (sealed +
    /// active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.tail.is_empty())
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn disk_bytes(&self) -> u64 {
        self.sealed.iter().map(|m| m.bytes).sum::<u64>() + self.tail_bytes
    }

    fn segment_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("seg-{index:08}.log"))
    }

    fn compressed_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("seg-{index:08}.lgz"))
    }

    fn segment_index(&self, first_seq: u64) -> usize {
        (first_seq as usize) / self.capacity
    }

    /// Lists the segment files on disk as `(index, has_log, has_lgz)`,
    /// ascending, deleting stale `.tmp` leftovers from an interrupted
    /// compaction on the way.
    fn scan_dir(&self) -> Result<Vec<(usize, bool, bool)>, StoreError> {
        let mut present = std::collections::BTreeMap::<usize, (bool, bool)>::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                std::fs::remove_file(entry.path())?;
                continue;
            }
            let (stem, compressed) = if let Some(s) = name.strip_suffix(".log") {
                (s, false)
            } else if let Some(s) = name.strip_suffix(".lgz") {
                (s, true)
            } else {
                continue;
            };
            let Some(idx) = stem
                .strip_prefix("seg-")
                .and_then(|d| d.parse::<usize>().ok())
            else {
                continue;
            };
            let slot = present.entry(idx).or_insert((false, false));
            if compressed {
                slot.1 = true;
            } else {
                slot.0 = true;
            }
        }
        Ok(present.iter().map(|(&i, &(l, z))| (i, l, z)).collect())
    }

    /// Scans the segment files in order, rebuilding the index and
    /// truncating at the first sign of a torn write. Everything after
    /// the damage point (later records, later segments) is removed, so
    /// the surviving store is a valid *suffix-free prefix* of the
    /// retained trace. The scan starts at the lowest index present —
    /// eviction deletes oldest segments, so a store need not start at
    /// segment 0.
    fn recover(&mut self) -> Result<(), StoreError> {
        let mut files = self.scan_dir()?;
        let Some(&(first_idx, ..)) = files.first() else {
            return Ok(()); // brand-new store
        };
        // Contiguity: appends create segments in order and eviction
        // deletes oldest-first, so a gap can only mean stale files from
        // a damaged history — drop everything at and after it.
        if let Some(gap) = files
            .iter()
            .enumerate()
            .position(|(i, &(idx, ..))| idx != first_idx + i)
        {
            for &(idx, has_log, has_lgz) in &files[gap..] {
                if has_log {
                    std::fs::remove_file(self.segment_path(idx))?;
                }
                if has_lgz {
                    std::fs::remove_file(self.compressed_path(idx))?;
                }
            }
            files.truncate(gap);
        }
        self.tail_first = (first_idx * self.capacity) as u64;
        for &(idx, has_log, has_lgz) in &files {
            let expected_first = (idx * self.capacity) as u64;
            if has_lgz {
                // A valid .lgz is the newer truth: compaction removes
                // the .log only after the .lgz rename lands.
                let lgz_path = self.compressed_path(idx);
                let data = std::fs::read(&lgz_path)?;
                let entries = unpack_segment(&data)
                    .map(|raw| scan_frames(&raw, |p| decode_entry(p, self.codec)).0)
                    .filter(|entries| {
                        entries.len() == self.capacity
                            && entries
                                .iter()
                                .enumerate()
                                .all(|(i, e)| e.seq == expected_first + i as u64)
                    });
                if let Some(entries) = entries {
                    if has_log {
                        std::fs::remove_file(self.segment_path(idx))?;
                    }
                    self.sealed.push(SegmentMeta {
                        first_seq: expected_first,
                        last_seq: expected_first + entries.len() as u64 - 1,
                        t0_ns: entries.first().expect("full").event.time_ns,
                        t1_ns: entries.last().expect("full").event.time_ns,
                        bytes: data.len() as u64,
                        compressed: true,
                    });
                    self.tail_first = expected_first + self.capacity as u64;
                    continue;
                }
                // Damaged cold segment: fall back to the raw .log when
                // it survived (crash before the remove); otherwise the
                // valid history ends here.
                std::fs::remove_file(&lgz_path)?;
                if !has_log {
                    self.drop_segments_after(idx)?;
                    self.tail_first = expected_first;
                    return Ok(());
                }
            }
            let path = self.segment_path(idx);
            let (entries, valid_len) = read_entries(&path, self.codec)?;
            // Entries must continue the dense sequence; a mismatch means
            // the file was damaged beyond framing (e.g. bytes flipped in
            // a seq field) — cut there.
            let mut good = 0usize;
            for (i, e) in entries.iter().enumerate() {
                if i >= self.capacity || e.seq != expected_first + i as u64 {
                    break;
                }
                good += 1;
            }
            let (entries, bytes) = if good < entries.len() {
                let mut truncated = entries;
                truncated.truncate(good);
                // Re-measure the valid byte prefix for the kept records.
                let mut kept = 0u64;
                for e in &truncated {
                    kept += encode_entry(e, self.codec)?.len() as u64;
                }
                truncate_file(&path, kept)?;
                (truncated, kept)
            } else {
                let file_len = std::fs::metadata(&path)?.len();
                if valid_len < file_len {
                    truncate_file(&path, valid_len)?;
                }
                (entries, valid_len)
            };
            if entries.is_empty() {
                // Nothing usable in this segment: delete it and stop.
                std::fs::remove_file(&path)?;
                self.drop_segments_after(idx)?;
                self.tail_first = expected_first;
                return Ok(());
            }
            if entries.len() < self.capacity {
                // Short segment: it becomes the active tail; later
                // segments (if any survived a bizarre crash) are stale.
                self.drop_segments_after(idx)?;
                self.tail_first = expected_first;
                self.tail_bytes = bytes;
                self.tail = entries;
                return Ok(());
            }
            self.sealed.push(SegmentMeta {
                first_seq: expected_first,
                last_seq: expected_first + entries.len() as u64 - 1,
                t0_ns: entries.first().expect("nonempty").event.time_ns,
                t1_ns: entries.last().expect("nonempty").event.time_ns,
                bytes,
                compressed: false,
            });
            self.tail_first = expected_first + self.capacity as u64;
        }
        Ok(())
    }

    /// Deletes every segment file (plain or compressed) after `index`.
    fn drop_segments_after(&self, index: usize) -> Result<(), StoreError> {
        let mut i = index + 1;
        loop {
            let mut any = false;
            let log = self.segment_path(i);
            if log.exists() {
                std::fs::remove_file(&log)?;
                any = true;
            }
            let lgz = self.compressed_path(i);
            if lgz.exists() {
                std::fs::remove_file(&lgz)?;
                any = true;
            }
            if !any {
                return Ok(());
            }
            i += 1;
        }
    }

    /// The retained sealed segment containing `seq`. Callers guarantee
    /// `first_retained_seq() <= seq < tail_first`.
    fn sealed_containing(&self, seq: u64) -> &SegmentMeta {
        let pos = self.sealed.partition_point(|m| m.last_seq < seq);
        &self.sealed[pos]
    }

    /// Reads one retained sealed segment's entries from disk, from
    /// whichever tier (raw `.log` or compressed `.lgz`) holds it.
    fn load_sealed(&self, meta: &SegmentMeta) -> Result<Vec<TraceEntry>, StoreError> {
        let idx = self.segment_index(meta.first_seq);
        let entries = if meta.compressed {
            let data = std::fs::read(self.compressed_path(idx))?;
            let raw = unpack_segment(&data)
                .ok_or_else(|| StoreError::new(format!("compressed segment {idx} is damaged")))?;
            scan_frames(&raw, |p| decode_entry(p, self.codec)).0
        } else {
            read_entries(&self.segment_path(idx), self.codec)?.0
        };
        if entries.len() as u64 != meta.entry_count() {
            return Err(StoreError::new(format!(
                "segment {idx} decoded {} of {} entries",
                entries.len(),
                meta.entry_count()
            )));
        }
        Ok(entries)
    }

    fn active_writer(&mut self) -> Result<&mut BufWriter<File>, StoreError> {
        if self.writer.is_none() {
            let path = self.segment_path(self.segment_index(self.tail_first));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            self.writer = Some(BufWriter::new(file));
        }
        Ok(self.writer.as_mut().expect("just installed"))
    }
}

impl TraceStore for SegmentStore {
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError> {
        debug_assert_eq!(entry.seq, self.len());
        let record = encode_entry(&entry, self.codec)?;
        self.active_writer()?.write_all(&record)?;
        self.tail_bytes += record.len() as u64;
        self.tail.push(entry);
        if self.tail.len() >= self.capacity {
            // Seal: flush, index, and start the next segment fresh.
            // Deliberately no fsync — appends are the hot path, and
            // owners that need power-loss durability journal commands
            // (fsynced) and regenerate lost trace bytes by
            // deterministic replay; see `TraceStore::sync`.
            if let Some(mut w) = self.writer.take() {
                w.flush()?;
            }
            self.sealed.push(SegmentMeta {
                first_seq: self.tail_first,
                last_seq: self.tail_first + self.tail.len() as u64 - 1,
                t0_ns: self.tail.first().expect("full").event.time_ns,
                t1_ns: self.tail.last().expect("full").event.time_ns,
                bytes: self.tail_bytes,
                compressed: false,
            });
            self.tail_first += self.tail.len() as u64;
            self.tail.clear();
            self.tail_bytes = 0;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.tail_first + self.tail.len() as u64
    }

    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError> {
        let len = self.len();
        // Reads below the retention floor are clamped up to it — the
        // evicted history is gone by policy, not by failure.
        let from = from_seq.max(self.first_retained_seq()).min(len);
        let to = to_seq.min(len);
        if from >= to {
            return Ok(());
        }
        let mut seq = from;
        // Sealed segments: one file read per touched segment.
        while seq < to && seq < self.tail_first {
            let meta = *self.sealed_containing(seq);
            let entries = self.load_sealed(&meta)?;
            let lo = (seq - meta.first_seq) as usize;
            let hi = ((to.min(meta.last_seq + 1)) - meta.first_seq) as usize;
            out.extend_from_slice(&entries[lo..hi.min(entries.len())]);
            seq = meta.first_seq + hi as u64;
        }
        // Active tail: served from the in-memory cache.
        if seq < to {
            let lo = (seq - self.tail_first) as usize;
            let hi = (to - self.tail_first) as usize;
            out.extend_from_slice(&self.tail[lo..hi]);
        }
        Ok(())
    }

    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError> {
        if t0_ns > t1_ns || self.len() == self.first_retained_seq() {
            return Ok((0, 0));
        }
        let tail_first = self.tail_first;
        // `lo`: first seq with time >= t0. Binary-search the sealed
        // index, then partition inside the one boundary segment.
        let lo = {
            let seg = self.sealed.partition_point(|m| m.t1_ns < t0_ns);
            if seg < self.sealed.len() {
                let entries = self.load_sealed(&self.sealed[seg])?;
                self.sealed[seg].first_seq
                    + entries.partition_point(|e| e.event.time_ns < t0_ns) as u64
            } else {
                tail_first + self.tail.partition_point(|e| e.event.time_ns < t0_ns) as u64
            }
        };
        // `hi`: one past the last seq with time <= t1.
        let hi = {
            let after_tail = !self.tail.is_empty()
                && self.tail.first().expect("nonempty").event.time_ns <= t1_ns;
            if after_tail {
                tail_first + self.tail.partition_point(|e| e.event.time_ns <= t1_ns) as u64
            } else {
                let seg = self.sealed.partition_point(|m| m.t0_ns <= t1_ns);
                if seg == 0 {
                    return Ok((0, 0));
                }
                let entries = self.load_sealed(&self.sealed[seg - 1])?;
                self.sealed[seg - 1].first_seq
                    + entries.partition_point(|e| e.event.time_ns <= t1_ns) as u64
            }
        };
        if lo >= hi {
            Ok((0, 0))
        } else {
            Ok((lo, hi))
        }
    }

    fn time_range(&self) -> Option<(u64, u64)> {
        let first = if let Some(m) = self.sealed.first() {
            m.t0_ns
        } else {
            self.tail.first()?.event.time_ns
        };
        let last = if let Some(e) = self.tail.last() {
            e.event.time_ns
        } else {
            self.sealed.last()?.t1_ns
        };
        Some((first, last))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            segments: self.segment_count() as u64,
            disk_bytes: self.disk_bytes(),
            compacted_segments: self.sealed.iter().filter(|m| m.compressed).count() as u64,
        }
    }

    fn first_retained_seq(&self) -> u64 {
        self.sealed
            .first()
            .map(|m| m.first_seq)
            .unwrap_or(self.tail_first)
    }

    /// One bounded maintenance step: move the oldest eligible sealed
    /// segment to the compressed cold tier (crash-safe: write `.tmp`,
    /// fsync, rename to `.lgz`, then remove the `.log` — recovery
    /// prefers whichever image validates), then evict oldest sealed
    /// segments while the store is over its disk budget.
    fn maintain(&mut self) -> Result<MaintenanceReport, StoreError> {
        let mut report = MaintenanceReport::default();
        if let Some(keep) = self.retention.compress_after {
            let eligible = self.sealed.len().saturating_sub(keep);
            if let Some(pos) = self.sealed[..eligible].iter().position(|m| !m.compressed) {
                let meta = self.sealed[pos];
                let idx = self.segment_index(meta.first_seq);
                let raw = std::fs::read(self.segment_path(idx))?;
                let packed = pack_segment(&raw);
                let tmp = self.dir.join(format!("seg-{idx:08}.lgz.tmp"));
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(&packed)?;
                    f.sync_data()?;
                }
                std::fs::rename(&tmp, self.compressed_path(idx))?;
                std::fs::remove_file(self.segment_path(idx))?;
                report.compacted_segments = 1;
                report.reclaimed_bytes += meta.bytes.saturating_sub(packed.len() as u64);
                self.sealed[pos].bytes = packed.len() as u64;
                self.sealed[pos].compressed = true;
            }
        }
        if let Some(budget) = self.retention.max_disk_bytes {
            // The clamp wins over the budget: a segment holding any
            // entry at or past the retain floor (the oldest retained
            // checkpoint's trace position) is never evicted, even if
            // the store stays over budget as a result.
            while self.disk_bytes() > budget
                && self
                    .sealed
                    .first()
                    .is_some_and(|m| m.last_seq < self.retain_floor)
            {
                let meta = self.sealed.remove(0);
                let idx = self.segment_index(meta.first_seq);
                let path = if meta.compressed {
                    self.compressed_path(idx)
                } else {
                    self.segment_path(idx)
                };
                std::fs::remove_file(&path)?;
                report.dropped_segments += 1;
                report.dropped_entries += meta.entry_count();
                report.reclaimed_bytes += meta.bytes;
            }
        }
        Ok(report)
    }

    fn set_retain_floor(&mut self, floor: u64) {
        self.retain_floor = floor;
    }
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

/// Checkpoint-file magic: the first 4 bytes of every `.ck` file.
const CKPT_MAGIC: [u8; 4] = *b"GCP1";

/// Codec tag byte after the magic. Only JSON exists today; the tag is
/// in the file (not a sidecar) so future codecs can coexist in one
/// directory, exactly like segment stores record theirs in `meta.json`.
const CKPT_CODEC_JSON: u8 = 0;

/// Index entry for one retained checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Trace length (next sequence number) at the checkpoint instant.
    pub seq: u64,
    /// Simulation time of the checkpoint instant.
    pub t_ns: u64,
    /// On-disk size of the checkpoint file.
    pub bytes: u64,
}

/// A directory of full-state checkpoints keyed by `(seq, t_ns)` — the
/// anchor points O(interval) time travel restores and replays from.
///
/// Layout: one file per checkpoint,
/// `ckpt-<seq:016>-<t_ns:020>.ck`, holding `GCP1` magic, a codec tag
/// byte, and one `[u32 len BE][payload]` frame (the same framing as
/// segments, journals and the wire). The payload is opaque to the
/// store — the debug server puts a serialized session checkpoint
/// there.
///
/// **Crash safety**: writes go to a `.tmp` sibling, fsync, then rename
/// — a kill at any byte leaves either the previous directory contents
/// (the `.tmp` is deleted on the next open) or the complete new file.
/// Opening validates every file's magic, tag and frame length and
/// deletes damaged ones, so a seek never anchors on a torn checkpoint:
/// it falls back to the previous one (or to replay from zero).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Ascending by `seq` (and by `t_ns` — simulation time and trace
    /// length grow together).
    metas: Vec<CheckpointMeta>,
}

impl CheckpointStore {
    /// Opens (or creates) the checkpoint directory, deleting stale
    /// `.tmp` leftovers and damaged files on the way.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut metas = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                std::fs::remove_file(entry.path())?;
                continue;
            }
            let Some((seq, t_ns)) = parse_checkpoint_name(name) else {
                continue;
            };
            let bytes = std::fs::read(entry.path())?;
            if validate_checkpoint(&bytes).is_none() {
                // A torn or corrupt checkpoint must never anchor a
                // seek — remove it so the index only holds usable ones.
                std::fs::remove_file(entry.path())?;
                continue;
            }
            metas.push(CheckpointMeta {
                seq,
                t_ns,
                bytes: bytes.len() as u64,
            });
        }
        metas.sort_by_key(|m| (m.seq, m.t_ns));
        Ok(CheckpointStore { dir, metas })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Retained checkpoints, ascending by sequence.
    pub fn metas(&self) -> &[CheckpointMeta] {
        &self.metas
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// `true` when no checkpoint is retained.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Trace position of the oldest retained checkpoint — what the
    /// trace store's retain floor is pinned to.
    pub fn oldest_seq(&self) -> Option<u64> {
        self.metas.first().map(|m| m.seq)
    }

    /// The newest retained checkpoint.
    pub fn latest(&self) -> Option<CheckpointMeta> {
        self.metas.last().copied()
    }

    /// The newest checkpoint taken at or before simulation time
    /// `t_ns` — the anchor for `SeekTo{t_ns}`.
    pub fn nearest_at_or_before_time(&self, t_ns: u64) -> Option<CheckpointMeta> {
        let pos = self.metas.partition_point(|m| m.t_ns <= t_ns);
        pos.checked_sub(1).map(|i| self.metas[i])
    }

    /// The newest checkpoint taken strictly before `t_ns` — the anchor
    /// for `ReplayWindow{t0,..}`, which must *regenerate* (not skip)
    /// entries at exactly `t0`.
    pub fn nearest_before_time(&self, t_ns: u64) -> Option<CheckpointMeta> {
        let pos = self.metas.partition_point(|m| m.t_ns < t_ns);
        pos.checked_sub(1).map(|i| self.metas[i])
    }

    /// The newest checkpoint whose trace position is at or below
    /// `seq` — the anchor for `StepBack`.
    pub fn nearest_at_or_before_seq(&self, seq: u64) -> Option<CheckpointMeta> {
        let pos = self.metas.partition_point(|m| m.seq <= seq);
        pos.checked_sub(1).map(|i| self.metas[i])
    }

    fn path_for(&self, seq: u64, t_ns: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:016}-{t_ns:020}.ck"))
    }

    /// Persists one checkpoint payload under `(seq, t_ns)` crash-safely
    /// (write `.tmp`, fsync, rename). Returns the file size written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and rejects payloads over the `u32`
    /// frame limit.
    pub fn save(&mut self, seq: u64, t_ns: u64, payload: &[u8]) -> Result<u64, StoreError> {
        let mut image = Vec::with_capacity(9 + payload.len());
        image.extend_from_slice(&CKPT_MAGIC);
        image.push(CKPT_CODEC_JSON);
        image.extend_from_slice(&frame_len(payload.len())?);
        image.extend_from_slice(payload);
        let path = self.path_for(seq, t_ns);
        let tmp = path.with_extension("ck.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        match self
            .metas
            .iter()
            .position(|m| m.seq == seq && m.t_ns == t_ns)
        {
            Some(i) => self.metas[i].bytes = image.len() as u64,
            None => {
                self.metas.push(CheckpointMeta {
                    seq,
                    t_ns,
                    bytes: image.len() as u64,
                });
                self.metas.sort_by_key(|m| (m.seq, m.t_ns));
            }
        }
        Ok(image.len() as u64)
    }

    /// Loads and validates the checkpoint at `(meta.seq, meta.t_ns)`,
    /// returning its payload bytes.
    ///
    /// # Errors
    ///
    /// I/O failures, and validation failures (bad magic, unknown codec
    /// tag, torn frame) — callers fall back to an older checkpoint.
    pub fn load(&self, meta: &CheckpointMeta) -> Result<Vec<u8>, StoreError> {
        let bytes = std::fs::read(self.path_for(meta.seq, meta.t_ns))?;
        validate_checkpoint(&bytes)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| {
                StoreError::new(format!(
                    "checkpoint at seq {} (t={} ns) is damaged",
                    meta.seq, meta.t_ns
                ))
            })
    }
}

/// Parses `ckpt-<seq:016>-<t_ns:020>.ck` back into `(seq, t_ns)`.
fn parse_checkpoint_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
    let (seq, t_ns) = stem.split_once('-')?;
    Some((seq.parse().ok()?, t_ns.parse().ok()?))
}

/// Checks a checkpoint file image (magic, codec tag, exact frame
/// length) and returns the payload slice when whole.
fn validate_checkpoint(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 9 || bytes[..4] != CKPT_MAGIC || bytes[4] != CKPT_CODEC_JSON {
        return None;
    }
    let len = u32::from_be_bytes(bytes[5..9].try_into().ok()?) as usize;
    let payload = &bytes[9..];
    (payload.len() == len).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_gdm::{EventKind, ModelEvent};

    fn entry(seq: u64, t: u64) -> TraceEntry {
        TraceEntry {
            seq,
            event: ModelEvent::new(t, EventKind::StateEnter, "A/fsm").with_to("Run"),
            reactions: vec![],
            violations: vec![],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        // A per-process atomic counter, not the wall clock: parallel
        // tests can land in the same nanosecond and collide.
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gmdf-store-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn segment_store_round_trips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let mut s = SegmentStore::open(&dir, 4).unwrap();
            for i in 0..11 {
                s.append(entry(i, 100 * (i + 1))).unwrap();
            }
            s.sync().unwrap();
            assert_eq!(s.len(), 11);
            assert_eq!(s.segment_count(), 3);
        }
        let s = SegmentStore::open(&dir, 999).unwrap(); // capacity from meta, not arg
        assert_eq!(s.capacity(), 4);
        assert_eq!(s.len(), 11);
        let mut all = Vec::new();
        s.read_into(0, u64::MAX, &mut all).unwrap();
        assert_eq!(all.len(), 11);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.event.time_ns, 100 * (i as u64 + 1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_bounds_match_memory_semantics() {
        let dir = tmp_dir("window");
        let mut mem = MemStore::new();
        let mut disk = SegmentStore::open(&dir, 3).unwrap();
        for i in 0..10 {
            let e = entry(i, 50 * i); // times 0,50,...,450
            mem.append(e.clone()).unwrap();
            disk.append(e).unwrap();
        }
        for (t0, t1) in [
            (0, 450),
            (0, 0),
            (49, 51),
            (50, 100),
            (451, 900),
            (200, 100),
            (125, 275),
            (450, 450),
        ] {
            assert_eq!(
                mem.window_bounds(t0, t1).unwrap(),
                disk.window_bounds(t0, t1).unwrap(),
                "window [{t0},{t1}]"
            );
        }
        assert_eq!(mem.time_range(), disk.time_range());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        {
            let mut s = SegmentStore::open(&dir, 4).unwrap();
            for i in 0..6 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
        }
        // Cut the active segment mid-record.
        let tail_path = dir.join("seg-00000001.log");
        let bytes = std::fs::read(&tail_path).unwrap();
        std::fs::write(&tail_path, &bytes[..bytes.len() - 3]).unwrap();
        let mut s = SegmentStore::open(&dir, 4).unwrap();
        assert_eq!(s.len(), 5, "torn record dropped, prefix kept");
        // The store keeps appending correctly after recovery.
        s.append(entry(5, 50)).unwrap();
        s.sync().unwrap();
        let mut all = Vec::new();
        s.read_into(0, u64::MAX, &mut all).unwrap();
        assert_eq!(all.len(), 6);
        assert!(all.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_truncates_from_damage_point() {
        let dir = tmp_dir("corrupt");
        {
            let mut s = SegmentStore::open(&dir, 8).unwrap();
            for i in 0..5 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
        }
        let path = dir.join("seg-00000000.log");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third record's JSON payload.
        let rec = encode_record(&entry(0, 0)).unwrap().len();
        bytes[2 * rec + 10] = b'\xff';
        std::fs::write(&path, &bytes).unwrap();
        let s = SegmentStore::open(&dir, 8).unwrap();
        assert_eq!(s.len(), 2, "valid prefix before the corrupt record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_track_segments_and_bytes_across_reopen() {
        let dir = tmp_dir("stats");
        let expected: u64 = (0..6)
            .map(|i| encode_record(&entry(i, 10 * i)).unwrap().len() as u64)
            .sum();
        {
            let mut s = SegmentStore::open(&dir, 4).unwrap();
            assert_eq!(s.stats(), StoreStats::default());
            for i in 0..6 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
            assert_eq!(
                s.stats(),
                StoreStats {
                    segments: 2,
                    disk_bytes: expected,
                    compacted_segments: 0
                }
            );
        }
        // Recovery re-seeds the byte count from the files themselves.
        let s = SegmentStore::open(&dir, 4).unwrap();
        assert_eq!(
            s.stats(),
            StoreStats {
                segments: 2,
                disk_bytes: expected,
                compacted_segments: 0
            }
        );
        assert_eq!(MemStore::new().stats(), StoreStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_queries() {
        let dir = tmp_dir("empty");
        let s = SegmentStore::open(&dir, 4).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.window_bounds(0, u64::MAX).unwrap(), (0, 0));
        assert_eq!(s.time_range(), None);
        let mut out = Vec::new();
        s.read_into(0, 10, &mut out).unwrap();
        assert!(out.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A payload over `u32::MAX` must be rejected, not length-truncated
    /// into a desynchronized stream. The bound check is a pure function
    /// of the length, so it is testable without a 4 GiB allocation.
    #[test]
    fn oversized_record_is_an_error_not_a_truncated_prefix() {
        assert_eq!(frame_len(0).unwrap(), [0, 0, 0, 0]);
        assert_eq!(
            frame_len(u32::MAX as usize).unwrap(),
            u32::MAX.to_be_bytes()
        );
        let err = frame_len(u32::MAX as usize + 1).unwrap_err();
        assert!(err.to_string().contains("exceeds the u32 frame limit"));
        // And the record encoder routes through the same check.
        assert!(encode_record(&entry(0, 0)).is_ok());
    }

    fn fancy_entries() -> Vec<TraceEntry> {
        let mk = |seq: u64, event: ModelEvent| TraceEntry {
            seq,
            event,
            reactions: vec![],
            violations: vec![],
        };
        vec![
            mk(0, ModelEvent::new(0, EventKind::TaskStart, "")),
            TraceEntry {
                seq: 1,
                event: ModelEvent::new(7, EventKind::StateEnter, "Héà/fsm☂")
                    .with_from("Idle")
                    .with_to("Run"),
                reactions: vec![ReactionSpec::HighlightTarget, ReactionSpec::Pulse],
                violations: vec!["deadline μ missed".into(), String::new()],
            },
            mk(
                2,
                ModelEvent::new(u64::MAX, EventKind::SignalWrite, "A/out")
                    .with_value(EventValue::Real(-0.0)),
            ),
            mk(
                3,
                ModelEvent::new(9, EventKind::WatchChange, "A/w")
                    .with_value(EventValue::Int(i64::MIN)),
            ),
            mk(
                4,
                ModelEvent::new(10, EventKind::ModeSwitch, "A/m")
                    .with_value(EventValue::Bool(true)),
            ),
            mk(
                5,
                ModelEvent::new(11, EventKind::TaskEnd, "A/t")
                    .with_value(EventValue::Real(f64::NAN)),
            ),
        ]
    }

    #[test]
    fn binary_codec_round_trips_every_field_shape() {
        for e in fancy_entries() {
            let payload = encode_entry_binary(&e);
            let back = decode_entry_binary(&payload).expect("decodes");
            // NaN != NaN, so compare through the JSON image.
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&e).unwrap(),
                "entry {}",
                e.seq
            );
            // And the framed form round-trips through the frame scanner.
            let framed = encode_entry(&e, Codec::Binary).unwrap();
            let (decoded, len) = scan_frames(&framed, decode_entry_binary);
            assert_eq!(len as usize, framed.len());
            assert_eq!(decoded.len(), 1);
        }
    }

    #[test]
    fn binary_codec_rejects_damage() {
        let good = encode_entry_binary(&fancy_entries()[1]);
        // Truncation at every prefix length fails (never panics).
        for cut in 0..good.len() {
            assert!(decode_entry_binary(&good[..cut]).is_none(), "cut {cut}");
        }
        // A trailing byte is damage too.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_entry_binary(&long).is_none());
        // Unknown kind and flag bits are rejected.
        let mut bad_kind = good.clone();
        bad_kind[2] = 6;
        assert!(decode_entry_binary(&bad_kind).is_none());
        let mut bad_flags = good;
        bad_flags[3] |= 0x10;
        assert!(decode_entry_binary(&bad_flags).is_none());
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for i in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
        // A non-canonical zero continuation byte is rejected.
        assert_eq!(read_varint(&[0x80, 0x00], &mut 0), None);
    }

    #[test]
    fn lz_round_trips_and_rejects_damage() {
        let repetitive: Vec<u8> = (0..4096u32)
            .flat_map(|i| format!("path/A/fsm-{};", i % 7).into_bytes())
            .collect();
        let packed = pack_segment(&repetitive);
        assert!(
            packed.len() < repetitive.len() / 2,
            "repetitive input compresses: {} -> {}",
            repetitive.len(),
            packed.len()
        );
        assert_eq!(unpack_segment(&packed).unwrap(), repetitive);
        // Incompressible and empty inputs still round-trip.
        let noise: Vec<u8> = (0..997u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert_eq!(unpack_segment(&pack_segment(&noise)).unwrap(), noise);
        assert_eq!(
            unpack_segment(&pack_segment(&[])).unwrap(),
            Vec::<u8>::new()
        );
        // Damage: bad magic, truncation, garbage tokens.
        assert_eq!(unpack_segment(b"nope"), None);
        assert_eq!(unpack_segment(&packed[..packed.len() - 1]), None);
        let mut bad = packed.clone();
        bad[12] = 0; // literal run of 0 is malformed
        assert_eq!(unpack_segment(&bad), None);
    }

    #[test]
    fn binary_store_round_trips_and_meta_codec_wins() {
        let dir = tmp_dir("binary");
        {
            let mut s = SegmentStore::open_with(
                &dir,
                SegmentConfig {
                    capacity: 4,
                    codec: Codec::Binary,
                    ..SegmentConfig::default()
                },
            )
            .unwrap();
            assert_eq!(s.codec(), Codec::Binary);
            for i in 0..11 {
                s.append(entry(i, 100 * (i + 1))).unwrap();
            }
            s.sync().unwrap();
        }
        // Reopen with a *JSON* config: the meta's codec wins, and every
        // entry decodes.
        let s = SegmentStore::open(&dir, 999).unwrap();
        assert_eq!(s.codec(), Codec::Binary);
        assert_eq!(s.capacity(), 4);
        let mut all = Vec::new();
        s.read_into(0, u64::MAX, &mut all).unwrap();
        assert_eq!(all.len(), 11);
        assert!(all.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintain_compresses_and_reads_span_tiers() {
        let dir = tmp_dir("compact");
        let config = SegmentConfig {
            capacity: 4,
            codec: Codec::Binary,
            retention: Retention {
                compress_after: Some(1),
                max_disk_bytes: None,
            },
        };
        let mut s = SegmentStore::open_with(&dir, config).unwrap();
        let mut mem = MemStore::new();
        for i in 0..19 {
            let e = entry(i, 10 * i);
            s.append(e.clone()).unwrap();
            mem.append(e).unwrap();
        }
        s.sync().unwrap();
        // Drain maintenance: all but the newest sealed segment compress.
        let mut compacted = 0;
        loop {
            let report = s.maintain().unwrap();
            if !report.did_work() {
                break;
            }
            compacted += report.compacted_segments;
        }
        assert_eq!(compacted, 3, "4 sealed segments, newest kept raw");
        assert_eq!(s.stats().compacted_segments, 3);
        assert_eq!(s.first_retained_seq(), 0, "nothing evicted");
        // Reads and windows span compressed + raw + tail tiers and
        // still equal memory semantics.
        let mut disk_all = Vec::new();
        s.read_into(0, u64::MAX, &mut disk_all).unwrap();
        let mut mem_all = Vec::new();
        mem.read_into(0, u64::MAX, &mut mem_all).unwrap();
        assert_eq!(disk_all, mem_all);
        for (t0, t1) in [(0, 180), (35, 95), (0, u64::MAX), (70, 70)] {
            assert_eq!(
                s.window_bounds(t0, t1).unwrap(),
                mem.window_bounds(t0, t1).unwrap(),
                "window [{t0},{t1}]"
            );
        }
        // Reopen: the compressed tier recovers, and appends continue.
        drop(s);
        let mut s = SegmentStore::open_with(&dir, config).unwrap();
        assert_eq!(s.stats().compacted_segments, 3);
        assert_eq!(s.len(), 19);
        s.append(entry(19, 190)).unwrap();
        s.sync().unwrap();
        let mut again = Vec::new();
        s.read_into(0, u64::MAX, &mut again).unwrap();
        assert_eq!(again.len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_budget_evicts_oldest_but_len_survives() {
        let dir = tmp_dir("evict");
        let config = SegmentConfig {
            capacity: 4,
            codec: Codec::Json,
            retention: Retention {
                compress_after: Some(0),
                max_disk_bytes: Some(600),
            },
        };
        let mut s = SegmentStore::open_with(&dir, config).unwrap();
        for i in 0..26 {
            s.append(entry(i, 10 * i)).unwrap();
        }
        s.sync().unwrap();
        let mut dropped = 0;
        loop {
            let report = s.maintain().unwrap();
            if !report.did_work() {
                break;
            }
            dropped += report.dropped_entries;
        }
        assert!(dropped > 0, "budget forces eviction");
        assert!(
            s.stats().disk_bytes <= 600,
            "disk stays under budget, got {}",
            s.stats().disk_bytes
        );
        assert_eq!(s.len(), 26, "len counts evicted history");
        let floor = s.first_retained_seq();
        assert!(
            floor > 0 && floor.is_multiple_of(4),
            "floor {floor} on a seal edge"
        );
        // Reads below the floor clamp up to it; reads above work.
        let mut out = Vec::new();
        s.read_into(0, u64::MAX, &mut out).unwrap();
        assert_eq!(out.first().unwrap().seq, floor);
        assert_eq!(out.last().unwrap().seq, 25);
        // The eviction floor survives reopen, and appends continue.
        drop(s);
        let mut s = SegmentStore::open_with(&dir, config).unwrap();
        assert_eq!(s.len(), 26);
        assert_eq!(s.first_retained_seq(), floor);
        s.append(entry(26, 260)).unwrap();
        s.sync().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_compressed_segment_truncates_history_there() {
        let dir = tmp_dir("lgz-damage");
        let config = SegmentConfig {
            capacity: 4,
            codec: Codec::Binary,
            retention: Retention {
                compress_after: Some(0),
                max_disk_bytes: None,
            },
        };
        {
            let mut s = SegmentStore::open_with(&dir, config).unwrap();
            for i in 0..10 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
            while s.maintain().unwrap().did_work() {}
            assert_eq!(s.stats().compacted_segments, 2);
        }
        // Corrupt the second compressed segment's token stream.
        let path = dir.join("seg-00000001.lgz");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 2;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let s = SegmentStore::open_with(&dir, config).unwrap();
        // Segment 0 survives; the damaged segment and the tail after it
        // are gone — recovery yields a valid prefix.
        assert_eq!(s.len(), 4);
        let mut out = Vec::new();
        s.read_into(0, u64::MAX, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_compaction_recovers_from_either_image() {
        let dir = tmp_dir("lgz-crash");
        let config = SegmentConfig {
            capacity: 4,
            codec: Codec::Json,
            retention: Retention {
                compress_after: Some(0),
                max_disk_bytes: None,
            },
        };
        {
            let mut s = SegmentStore::open_with(&dir, config).unwrap();
            for i in 0..6 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
            while s.maintain().unwrap().did_work() {}
        }
        // Simulate a crash between the .lgz rename and the .log remove:
        // both images exist. Recovery keeps the compressed one.
        let lgz = std::fs::read(dir.join("seg-00000000.lgz")).unwrap();
        let raw = unpack_segment(&lgz).unwrap();
        std::fs::write(dir.join("seg-00000000.log"), &raw).unwrap();
        let s = SegmentStore::open_with(&dir, config).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.stats().compacted_segments, 1);
        assert!(!dir.join("seg-00000000.log").exists(), "stale log removed");
        // Now the other interleaving: .lgz damaged, .log intact.
        std::fs::write(dir.join("seg-00000000.log"), &raw).unwrap();
        std::fs::write(dir.join("seg-00000000.lgz"), b"GLZ1garbage").unwrap();
        let s = SegmentStore::open_with(&dir, config).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.stats().compacted_segments, 0, "fell back to the log");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retain_floor_clamps_eviction() {
        let dir = tmp_dir("floor");
        let config = SegmentConfig {
            capacity: 4,
            codec: Codec::Json,
            retention: Retention {
                compress_after: Some(0),
                max_disk_bytes: Some(600),
            },
        };
        let mut s = SegmentStore::open_with(&dir, config).unwrap();
        for i in 0..26 {
            s.append(entry(i, 10 * i)).unwrap();
        }
        s.sync().unwrap();
        // An "oldest checkpoint" at seq 4: segment 1 (seqs 4..8) and
        // everything after it must survive, however tight the budget.
        s.set_retain_floor(4);
        while s.maintain().unwrap().did_work() {}
        assert_eq!(
            s.first_retained_seq(),
            4,
            "only the pre-floor segment was evictable"
        );
        let mut out = Vec::new();
        s.read_into(0, u64::MAX, &mut out).unwrap();
        assert_eq!(out.first().unwrap().seq, 4);
        assert_eq!(out.last().unwrap().seq, 25);
        // Raising the floor releases older segments to the budget again.
        s.set_retain_floor(12);
        while s.maintain().unwrap().did_work() {}
        assert!(s.first_retained_seq() > 4);
        assert!(s.first_retained_seq() <= 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn offset_store_lines_up_with_absolute_numbering() {
        let mut s = OffsetMemStore::new(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.first_retained_seq(), 100);
        assert!(s.is_empty() || s.len() == 100); // no entries yet
        for i in 100..110 {
            s.append(entry(i, 10 * i)).unwrap();
        }
        assert_eq!(s.len(), 110);
        // Reads below the base clamp up to it.
        let mut out = Vec::new();
        s.read_into(0, u64::MAX, &mut out).unwrap();
        assert_eq!(out.first().unwrap().seq, 100);
        assert_eq!(out.len(), 10);
        out.clear();
        s.read_into(104, 107, &mut out).unwrap();
        assert_eq!(
            out.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![104, 105, 106]
        );
        // Windows report absolute bounds.
        assert_eq!(s.window_bounds(1030, 1050).unwrap(), (103, 106));
        assert_eq!(s.time_range(), Some((1000, 1090)));
        assert_eq!(s.as_slice().unwrap().len(), 10);
    }

    #[test]
    fn checkpoint_store_round_trips_and_indexes() {
        let dir = tmp_dir("ckpt");
        let mut c = CheckpointStore::open(&dir).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.nearest_at_or_before_time(u64::MAX), None);
        for (seq, t) in [(10u64, 1000u64), (20, 2000), (30, 3000)] {
            let payload = format!("{{\"seq\":{seq}}}");
            let written = c.save(seq, t, payload.as_bytes()).unwrap();
            assert_eq!(written, 9 + payload.len() as u64);
        }
        assert_eq!(c.oldest_seq(), Some(10));
        assert_eq!(c.latest().unwrap().seq, 30);
        // Selection semantics.
        assert_eq!(c.nearest_at_or_before_time(2000).unwrap().seq, 20);
        assert_eq!(c.nearest_before_time(2000).unwrap().seq, 10);
        assert_eq!(c.nearest_at_or_before_time(1999).unwrap().seq, 10);
        assert_eq!(c.nearest_at_or_before_time(999), None);
        assert_eq!(c.nearest_at_or_before_seq(29).unwrap().seq, 20);
        assert_eq!(c.nearest_at_or_before_seq(30).unwrap().seq, 30);
        // Payloads round-trip, and the index survives reopen.
        let c2 = CheckpointStore::open(&dir).unwrap();
        assert_eq!(c2.metas(), c.metas());
        let meta = c2.nearest_at_or_before_time(2500).unwrap();
        assert_eq!(c2.load(&meta).unwrap(), b"{\"seq\":20}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous() {
        let dir = tmp_dir("ckpt-torn");
        {
            let mut c = CheckpointStore::open(&dir).unwrap();
            c.save(10, 1000, b"good-old").unwrap();
            c.save(20, 2000, b"good-new").unwrap();
        }
        let newest = dir.join(format!("ckpt-{:016}-{:020}.ck", 20u64, 2000u64));
        let image = std::fs::read(&newest).unwrap();
        // A kill at *any* byte during the write sequence leaves either
        // a partial .tmp (ignored and deleted) or a complete renamed
        // file — simulate both damage shapes and the fallback.
        for cut in 0..image.len() {
            std::fs::write(dir.join("ckpt-next.ck.tmp"), &image[..cut]).unwrap();
            let c = CheckpointStore::open(&dir).unwrap();
            assert_eq!(c.len(), 2, "tmp leftovers never enter the index");
            assert!(!dir.join("ckpt-next.ck.tmp").exists(), "tmp deleted");
        }
        // Paranoia: even a torn *renamed* file (not producible by the
        // tmp+fsync+rename sequence, but disks lie) is dropped, and the
        // previous checkpoint anchors the seek.
        std::fs::write(&newest, &image[..image.len() - 3]).unwrap();
        let c = CheckpointStore::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        let meta = c.nearest_at_or_before_time(u64::MAX).unwrap();
        assert_eq!(meta.seq, 10);
        assert_eq!(c.load(&meta).unwrap(), b"good-old");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_codec_session_dirs_open_cleanly() {
        let root = tmp_dir("mixed");
        for (name, codec) in [("a", Codec::Json), ("b", Codec::Binary)] {
            let mut s = SegmentStore::open_with(
                root.join(name),
                SegmentConfig {
                    capacity: 3,
                    codec,
                    ..SegmentConfig::default()
                },
            )
            .unwrap();
            for i in 0..5 {
                s.append(entry(i, i)).unwrap();
            }
            s.sync().unwrap();
        }
        // Reopen both with the *same* default config: each store uses
        // its own recorded codec.
        for (name, codec) in [("a", Codec::Json), ("b", Codec::Binary)] {
            let s = SegmentStore::open(root.join(name), DEFAULT_SEGMENT_CAPACITY).unwrap();
            assert_eq!(s.codec(), codec, "store {name}");
            assert_eq!(s.len(), 5, "store {name}");
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
