//! Pluggable trace storage: in-memory and segmented on-disk stores.
//!
//! The paper promises that GDM animation "always make[s] a record of the
//! execution trace"; for long runs that record must not cost O(whole
//! run) memory or die with the process. [`TraceStore`] abstracts where
//! [`TraceEntry`]s live; [`MemStore`] is the classic `Vec` (the
//! default), and [`SegmentStore`] is an append-only, segmented on-disk
//! log:
//!
//! ```text
//! <dir>/
//!   meta.json          {"version":1,"capacity":N}   (written once)
//!   seg-00000000.log   N length-prefixed JSON entries   (sealed)
//!   seg-00000001.log   N entries                        (sealed)
//!   seg-00000002.log   < N entries                      (active tail)
//! ```
//!
//! Every record is `[u32 len, big-endian][compact JSON TraceEntry]` —
//! the same framing the wire protocol and the session journal use. Each
//! segment holds a fixed number of entries, so a sequence number maps
//! to its segment by division; an in-memory per-segment index of
//! `(first_seq, last_seq, t0_ns, t1_ns)` makes `entries_since`,
//! `window` and replay seek O(log segments + hit) instead of O(whole
//! run). The active segment is additionally cached in memory, so the
//! hot path (the scheduler publishing the latest delta) never touches
//! disk.
//!
//! **Crash safety**: opening a store re-scans the segment files once; a
//! torn tail (a record cut mid-write, a corrupt length, an unparsable
//! payload) truncates the file at the last whole record and drops any
//! later segment — recovery always yields a valid *prefix* of the
//! original trace, never a gap or a panic
//! (`crates/engine/tests/store_recovery.rs` proves this for kills at
//! arbitrary byte offsets).

use crate::trace::TraceEntry;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// A trace storage failure (I/O, corrupt metadata…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(String);

impl StoreError {
    /// Wraps a message.
    pub fn new(message: impl Into<String>) -> Self {
        StoreError(message.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError(e.to_string())
    }
}

/// Storage footprint of a [`TraceStore`] — what the observability layer
/// reports per session and sums fleet-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files backing the store (0 for memory-resident stores).
    pub segments: u64,
    /// Bytes of encoded records on disk (0 for memory-resident stores).
    pub disk_bytes: u64,
}

/// Where recorded [`TraceEntry`]s live.
///
/// Contract shared by every implementation:
///
/// * entries are append-only and densely numbered — the `n`-th appended
///   entry has `seq == n`;
/// * event times are nondecreasing in sequence order (the engine feeds
///   commands in time order), which is what lets [`TraceStore::window_bounds`]
///   binary-search instead of scan;
/// * reads never block appends made by the same owner (single-writer).
pub trait TraceStore: Send + fmt::Debug {
    /// Appends one entry. `entry.seq` must equal [`TraceStore::len`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (in-memory stores never fail).
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError>;

    /// Number of stored entries.
    fn len(&self) -> u64;

    /// `true` when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the entries with `seq` in `[from_seq, to_seq)` (clamped
    /// to the stored range) onto `out`, in sequence order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError>;

    /// The half-open sequence range `[lo, hi)` of entries whose event
    /// time falls in `[t0_ns, t1_ns]`. Empty windows (including
    /// inverted inputs) return `lo == hi`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from reading boundary segments — a
    /// failing disk must surface as an error, never masquerade as an
    /// empty window.
    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError>;

    /// `(first, last)` event time, if nonempty.
    fn time_range(&self) -> Option<(u64, u64)>;

    /// Flushes buffered appends out of the process (no-op in memory).
    /// This guarantees durability against a *process* crash. Disk
    /// stores deliberately do not fsync the append path (it is the hot
    /// path), so an OS crash or power loss may drop the most recent
    /// entries; owners that need stronger guarantees pair the store
    /// with an fsynced command journal and regenerate the lost tail by
    /// deterministic replay (`gmdf-server`'s durable sessions do).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Fast path: the full entry slice, when the store is memory-backed.
    /// Disk-backed stores return `None` and are read via
    /// [`TraceStore::read_into`].
    fn as_slice(&self) -> Option<&[TraceEntry]> {
        None
    }

    /// Storage footprint (segment count, on-disk bytes). Memory-backed
    /// stores keep the all-zero default.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }
}

// ---------------------------------------------------------------------------
// Shared record framing
// ---------------------------------------------------------------------------

/// Encodes one serializable record as `[u32 len BE][compact JSON]` —
/// the framing shared by trace segments, session journals and the wire
/// protocol.
pub fn encode_record<T: Serialize>(value: &T) -> Vec<u8> {
    let json = serde_json::to_string(value).expect("record serializes");
    let mut out = Vec::with_capacity(4 + json.len());
    out.extend_from_slice(&(json.len() as u32).to_be_bytes());
    out.extend_from_slice(json.as_bytes());
    out
}

/// Reads every *whole, decodable* record from `path`, stopping at the
/// first torn or corrupt one. Returns the decoded records and the byte
/// length of the valid prefix — everything past it is damage from an
/// interrupted write and safe to truncate.
///
/// # Errors
///
/// Propagates I/O failures (a missing file is an error; corruption is
/// not — it just shortens the valid prefix).
pub fn read_records<T: Deserialize>(path: &Path) -> Result<(Vec<T>, u64), StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 4 {
        let len = u32::from_be_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        if len == 0 || bytes.len() - offset - 4 < len {
            break; // torn or nonsense length: end of the valid prefix
        }
        let payload = &bytes[offset + 4..offset + 4 + len];
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(value) = serde_json::from_str::<T>(text) else {
            break;
        };
        records.push(value);
        offset += 4 + len;
    }
    Ok((records, offset as u64))
}

/// Truncates `path` to `len` bytes — recovery discarding a torn tail.
fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// The classic in-memory trace store: a `Vec` of entries. Fast,
/// unbounded, gone when the process exits — the default backend.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    entries: Vec<TraceEntry>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-filled with `entries` (used when deserializing a
    /// saved trace).
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        MemStore { entries }
    }
}

impl TraceStore for MemStore {
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError> {
        debug_assert_eq!(entry.seq, self.entries.len() as u64);
        self.entries.push(entry);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError> {
        let n = self.entries.len();
        let from = (from_seq as usize).min(n);
        let to = (to_seq as usize).min(n);
        if from < to {
            out.extend_from_slice(&self.entries[from..to]);
        }
        Ok(())
    }

    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError> {
        if t0_ns > t1_ns {
            return Ok((0, 0));
        }
        // Entries are time-ordered, so both boundaries binary-search.
        let lo = self.entries.partition_point(|e| e.event.time_ns < t0_ns);
        let hi = self.entries.partition_point(|e| e.event.time_ns <= t1_ns);
        if lo >= hi {
            Ok((0, 0))
        } else {
            Ok((lo as u64, hi as u64))
        }
    }

    fn time_range(&self) -> Option<(u64, u64)> {
        let first = self.entries.first()?.event.time_ns;
        let last = self.entries.last()?.event.time_ns;
        Some((first, last))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn as_slice(&self) -> Option<&[TraceEntry]> {
        Some(&self.entries)
    }
}

// ---------------------------------------------------------------------------
// SegmentStore
// ---------------------------------------------------------------------------

/// Default entries per segment for disk-backed traces.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 256;

/// Persisted store metadata (`meta.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreMeta {
    version: u32,
    capacity: usize,
}

/// Index entry for one sealed (full) segment.
#[derive(Debug, Clone, Copy)]
struct SegmentMeta {
    first_seq: u64,
    last_seq: u64,
    t0_ns: u64,
    t1_ns: u64,
}

/// Append-only, segmented on-disk trace store (see the module docs for
/// layout, indexing and crash-safety).
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    capacity: usize,
    /// Index over sealed (full) segments, in order.
    sealed: Vec<SegmentMeta>,
    /// The active segment's entries, cached in memory (≤ `capacity`).
    tail: Vec<TraceEntry>,
    /// Writer on the active segment file; opened lazily.
    writer: Option<BufWriter<File>>,
    /// Bytes of valid encoded records across every segment file —
    /// maintained incrementally (recovery seeds it, appends add to it)
    /// so [`TraceStore::stats`] never touches the filesystem.
    disk_bytes: u64,
}

impl SegmentStore {
    /// Opens (or creates) the store at `dir`, recovering from any torn
    /// tail left by an interrupted writer. `capacity` (entries per
    /// segment) is used when creating a fresh store; an existing store
    /// keeps the capacity recorded in its `meta.json`.
    ///
    /// Opening costs one sequential scan of the segment files (that is
    /// the recovery validation); queries afterwards are indexed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and rejects unreadable metadata.
    pub fn open(dir: impl AsRef<Path>, capacity: usize) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let meta_path = dir.join("meta.json");
        let capacity = if meta_path.exists() {
            let text = std::fs::read_to_string(&meta_path)?;
            let meta: StoreMeta = serde_json::from_str(&text)
                .map_err(|e| StoreError::new(format!("corrupt meta.json: {e}")))?;
            if meta.version != 1 {
                return Err(StoreError::new(format!(
                    "unsupported store version {}",
                    meta.version
                )));
            }
            meta.capacity.max(1)
        } else {
            let capacity = capacity.max(1);
            let meta = StoreMeta {
                version: 1,
                capacity,
            };
            // Write-fsync-rename so a kill (or power loss) mid-write
            // cannot leave a half-written meta masquerading as the
            // real one.
            let tmp = dir.join("meta.json.tmp");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(
                    serde_json::to_string(&meta)
                        .expect("meta serializes")
                        .as_bytes(),
                )?;
                f.sync_data()?;
            }
            std::fs::rename(&tmp, &meta_path)?;
            capacity
        };

        let mut store = SegmentStore {
            dir,
            capacity,
            sealed: Vec::new(),
            tail: Vec::new(),
            writer: None,
            disk_bytes: 0,
        };
        store.recover()?;
        Ok(store)
    }

    /// Entries per segment.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of segment files currently backing the store (sealed +
    /// active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.tail.is_empty())
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("seg-{index:08}.log"))
    }

    /// Scans the segment files in order, rebuilding the index and
    /// truncating at the first sign of a torn write. Everything after
    /// the damage point (later records, later segments) is removed, so
    /// the surviving store is a valid prefix of the original trace.
    fn recover(&mut self) -> Result<(), StoreError> {
        let mut index = 0usize;
        loop {
            let path = self.segment_path(index);
            if !path.exists() {
                break;
            }
            let (entries, valid_len) = read_records::<TraceEntry>(&path)?;
            // Entries must continue the dense sequence; a mismatch means
            // the file was damaged beyond framing (e.g. bytes flipped in
            // a seq field) — cut there.
            let expected_first = (index * self.capacity) as u64;
            let mut good = 0usize;
            for (i, e) in entries.iter().enumerate() {
                if e.seq != expected_first + i as u64 {
                    break;
                }
                good += 1;
            }
            let entries = if good < entries.len() {
                let mut truncated = entries;
                truncated.truncate(good);
                // Re-measure the valid byte prefix for the kept records.
                let kept: u64 = truncated
                    .iter()
                    .map(|e| encode_record(e).len() as u64)
                    .sum();
                truncate_file(&path, kept)?;
                self.disk_bytes += kept;
                truncated
            } else {
                let file_len = std::fs::metadata(&path)?.len();
                if valid_len < file_len {
                    truncate_file(&path, valid_len)?;
                }
                self.disk_bytes += valid_len;
                entries
            };
            let torn = entries.len() < self.capacity;
            if entries.is_empty() {
                // Nothing usable in this segment: delete it and stop.
                std::fs::remove_file(&path)?;
                Self::drop_segments_from(self, index + 1)?;
                break;
            }
            if torn {
                // Short segment: it becomes the active tail; later
                // segments (if any survived a bizarre crash) are stale.
                Self::drop_segments_from(self, index + 1)?;
                self.tail = entries;
                return Ok(());
            }
            self.sealed.push(SegmentMeta {
                first_seq: expected_first,
                last_seq: expected_first + entries.len() as u64 - 1,
                t0_ns: entries.first().expect("nonempty").event.time_ns,
                t1_ns: entries.last().expect("nonempty").event.time_ns,
            });
            index += 1;
        }
        Ok(())
    }

    fn drop_segments_from(&self, index: usize) -> Result<(), StoreError> {
        let mut i = index;
        loop {
            let path = self.segment_path(i);
            if !path.exists() {
                return Ok(());
            }
            std::fs::remove_file(&path)?;
            i += 1;
        }
    }

    /// Index of the segment holding `seq` (sealed or active).
    fn segment_of(&self, seq: u64) -> usize {
        (seq as usize) / self.capacity
    }

    /// Reads one sealed segment's entries from disk.
    fn load_segment(&self, index: usize) -> Result<Vec<TraceEntry>, StoreError> {
        let (entries, _) = read_records::<TraceEntry>(&self.segment_path(index))?;
        Ok(entries)
    }

    fn active_writer(&mut self) -> Result<&mut BufWriter<File>, StoreError> {
        if self.writer.is_none() {
            let path = self.segment_path(self.sealed.len());
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            self.writer = Some(BufWriter::new(file));
        }
        Ok(self.writer.as_mut().expect("just installed"))
    }
}

impl TraceStore for SegmentStore {
    fn append(&mut self, entry: TraceEntry) -> Result<(), StoreError> {
        debug_assert_eq!(entry.seq, self.len());
        let record = encode_record(&entry);
        self.active_writer()?.write_all(&record)?;
        self.disk_bytes += record.len() as u64;
        self.tail.push(entry);
        if self.tail.len() >= self.capacity {
            // Seal: flush, index, and start the next segment fresh.
            // Deliberately no fsync — appends are the hot path, and
            // owners that need power-loss durability journal commands
            // (fsynced) and regenerate lost trace bytes by
            // deterministic replay; see `TraceStore::sync`.
            if let Some(mut w) = self.writer.take() {
                w.flush()?;
            }
            let first_seq = (self.sealed.len() * self.capacity) as u64;
            self.sealed.push(SegmentMeta {
                first_seq,
                last_seq: first_seq + self.tail.len() as u64 - 1,
                t0_ns: self.tail.first().expect("full").event.time_ns,
                t1_ns: self.tail.last().expect("full").event.time_ns,
            });
            self.tail.clear();
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        (self.sealed.len() * self.capacity + self.tail.len()) as u64
    }

    fn read_into(
        &self,
        from_seq: u64,
        to_seq: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), StoreError> {
        let len = self.len();
        let from = from_seq.min(len);
        let to = to_seq.min(len);
        if from >= to {
            return Ok(());
        }
        let tail_first = (self.sealed.len() * self.capacity) as u64;
        let mut seq = from;
        // Sealed segments: one file read per touched segment.
        while seq < to && seq < tail_first {
            let seg = self.segment_of(seq);
            let meta = self.sealed[seg];
            let entries = self.load_segment(seg)?;
            let lo = (seq - meta.first_seq) as usize;
            let hi = ((to.min(meta.last_seq + 1)) - meta.first_seq) as usize;
            out.extend_from_slice(&entries[lo..hi.min(entries.len())]);
            seq = meta.first_seq + hi as u64;
        }
        // Active tail: served from the in-memory cache.
        if seq < to {
            let lo = (seq - tail_first) as usize;
            let hi = (to - tail_first) as usize;
            out.extend_from_slice(&self.tail[lo..hi]);
        }
        Ok(())
    }

    fn window_bounds(&self, t0_ns: u64, t1_ns: u64) -> Result<(u64, u64), StoreError> {
        if t0_ns > t1_ns || self.is_empty() {
            return Ok((0, 0));
        }
        let tail_first = (self.sealed.len() * self.capacity) as u64;
        // `lo`: first seq with time >= t0. Binary-search the sealed
        // index, then partition inside the one boundary segment.
        let lo = {
            let seg = self.sealed.partition_point(|m| m.t1_ns < t0_ns);
            if seg < self.sealed.len() {
                let entries = self.load_segment(seg)?;
                self.sealed[seg].first_seq
                    + entries.partition_point(|e| e.event.time_ns < t0_ns) as u64
            } else {
                tail_first + self.tail.partition_point(|e| e.event.time_ns < t0_ns) as u64
            }
        };
        // `hi`: one past the last seq with time <= t1.
        let hi = {
            let after_tail = !self.tail.is_empty()
                && self.tail.first().expect("nonempty").event.time_ns <= t1_ns;
            if after_tail {
                tail_first + self.tail.partition_point(|e| e.event.time_ns <= t1_ns) as u64
            } else {
                let seg = self.sealed.partition_point(|m| m.t0_ns <= t1_ns);
                if seg == 0 {
                    return Ok((0, 0));
                }
                let entries = self.load_segment(seg - 1)?;
                self.sealed[seg - 1].first_seq
                    + entries.partition_point(|e| e.event.time_ns <= t1_ns) as u64
            }
        };
        if lo >= hi {
            Ok((0, 0))
        } else {
            Ok((lo, hi))
        }
    }

    fn time_range(&self) -> Option<(u64, u64)> {
        let first = if let Some(m) = self.sealed.first() {
            m.t0_ns
        } else {
            self.tail.first()?.event.time_ns
        };
        let last = if let Some(e) = self.tail.last() {
            e.event.time_ns
        } else {
            self.sealed.last()?.t1_ns
        };
        Some((first, last))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            segments: self.segment_count() as u64,
            disk_bytes: self.disk_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_gdm::{EventKind, ModelEvent};

    fn entry(seq: u64, t: u64) -> TraceEntry {
        TraceEntry {
            seq,
            event: ModelEvent::new(t, EventKind::StateEnter, "A/fsm").with_to("Run"),
            reactions: vec![],
            violations: vec![],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos();
        let dir =
            std::env::temp_dir().join(format!("gmdf-store-{tag}-{}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn segment_store_round_trips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let mut s = SegmentStore::open(&dir, 4).unwrap();
            for i in 0..11 {
                s.append(entry(i, 100 * (i + 1))).unwrap();
            }
            s.sync().unwrap();
            assert_eq!(s.len(), 11);
            assert_eq!(s.segment_count(), 3);
        }
        let s = SegmentStore::open(&dir, 999).unwrap(); // capacity from meta, not arg
        assert_eq!(s.capacity(), 4);
        assert_eq!(s.len(), 11);
        let mut all = Vec::new();
        s.read_into(0, u64::MAX, &mut all).unwrap();
        assert_eq!(all.len(), 11);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.event.time_ns, 100 * (i as u64 + 1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_bounds_match_memory_semantics() {
        let dir = tmp_dir("window");
        let mut mem = MemStore::new();
        let mut disk = SegmentStore::open(&dir, 3).unwrap();
        for i in 0..10 {
            let e = entry(i, 50 * i); // times 0,50,...,450
            mem.append(e.clone()).unwrap();
            disk.append(e).unwrap();
        }
        for (t0, t1) in [
            (0, 450),
            (0, 0),
            (49, 51),
            (50, 100),
            (451, 900),
            (200, 100),
            (125, 275),
            (450, 450),
        ] {
            assert_eq!(
                mem.window_bounds(t0, t1).unwrap(),
                disk.window_bounds(t0, t1).unwrap(),
                "window [{t0},{t1}]"
            );
        }
        assert_eq!(mem.time_range(), disk.time_range());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        {
            let mut s = SegmentStore::open(&dir, 4).unwrap();
            for i in 0..6 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
        }
        // Cut the active segment mid-record.
        let tail_path = dir.join("seg-00000001.log");
        let bytes = std::fs::read(&tail_path).unwrap();
        std::fs::write(&tail_path, &bytes[..bytes.len() - 3]).unwrap();
        let mut s = SegmentStore::open(&dir, 4).unwrap();
        assert_eq!(s.len(), 5, "torn record dropped, prefix kept");
        // The store keeps appending correctly after recovery.
        s.append(entry(5, 50)).unwrap();
        s.sync().unwrap();
        let mut all = Vec::new();
        s.read_into(0, u64::MAX, &mut all).unwrap();
        assert_eq!(all.len(), 6);
        assert!(all.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_truncates_from_damage_point() {
        let dir = tmp_dir("corrupt");
        {
            let mut s = SegmentStore::open(&dir, 8).unwrap();
            for i in 0..5 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
        }
        let path = dir.join("seg-00000000.log");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third record's JSON payload.
        let rec = encode_record(&entry(0, 0)).len();
        bytes[2 * rec + 10] = b'\xff';
        std::fs::write(&path, &bytes).unwrap();
        let s = SegmentStore::open(&dir, 8).unwrap();
        assert_eq!(s.len(), 2, "valid prefix before the corrupt record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_track_segments_and_bytes_across_reopen() {
        let dir = tmp_dir("stats");
        let expected: u64 = (0..6)
            .map(|i| encode_record(&entry(i, 10 * i)).len() as u64)
            .sum();
        {
            let mut s = SegmentStore::open(&dir, 4).unwrap();
            assert_eq!(s.stats(), StoreStats::default());
            for i in 0..6 {
                s.append(entry(i, 10 * i)).unwrap();
            }
            s.sync().unwrap();
            assert_eq!(
                s.stats(),
                StoreStats {
                    segments: 2,
                    disk_bytes: expected
                }
            );
        }
        // Recovery re-seeds the byte count from the files themselves.
        let s = SegmentStore::open(&dir, 4).unwrap();
        assert_eq!(
            s.stats(),
            StoreStats {
                segments: 2,
                disk_bytes: expected
            }
        );
        assert_eq!(MemStore::new().stats(), StoreStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_queries() {
        let dir = tmp_dir("empty");
        let s = SegmentStore::open(&dir, 4).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.window_bounds(0, u64::MAX).unwrap(), (0, 0));
        assert_eq!(s.time_range(), None);
        let mut out = Vec::new();
        s.read_into(0, 10, &mut out).unwrap();
        assert!(out.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
