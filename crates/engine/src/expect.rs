//! Expectation monitors: how the debugger decides "a bug is considered to
//! be found".
//!
//! "If the actions taken are not consistent with system requirements, a
//! bug is considered to be found" (paper §II). An [`Expectation`] encodes
//! a requirement over the command stream; the engine evaluates every
//! incoming event against all expectations and records [`Violation`]s.

use gmdf_gdm::{EventKind, ModelEvent};
use gmdf_metamodel::{ElementPath, Model};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A requirement over the observed model behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expectation {
    /// Only the listed `(from, to)` transitions may occur on the state
    /// machine at `fsm_path` — usually derived from the input model, so a
    /// violation means the *code* disagrees with the *model*.
    AllowedTransitions {
        /// State machine block path.
        fsm_path: String,
        /// Permitted transitions.
        allowed: BTreeSet<(String, String)>,
    },
    /// States on `fsm_path` must be entered following `sequence`
    /// (cyclically if `cyclic`) — a requirements-level ordering, e.g.
    /// traffic lights must pass through Yellow.
    StateSequence {
        /// State machine block path.
        fsm_path: String,
        /// Expected entering order.
        sequence: Vec<String>,
        /// Wrap around after the last state.
        cyclic: bool,
    },
    /// Values written on paths starting with `path_prefix` must stay in
    /// `[min, max]`.
    SignalRange {
        /// Path prefix of the monitored outputs.
        path_prefix: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// Every `TaskEnd` on `task_path` must arrive within `max_ns` of the
    /// matching `TaskStart` — a response-time requirement (requires
    /// task-boundary instrumentation).
    ResponseWithin {
        /// Actor/task path.
        task_path: String,
        /// Maximum allowed start→end latency in nanoseconds.
        max_ns: u64,
    },
}

impl Expectation {
    /// Short human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            Expectation::AllowedTransitions { fsm_path, .. } => {
                format!("allowed-transitions({fsm_path})")
            }
            Expectation::StateSequence { fsm_path, .. } => format!("state-sequence({fsm_path})"),
            Expectation::SignalRange { path_prefix, .. } => format!("signal-range({path_prefix})"),
            Expectation::ResponseWithin { task_path, .. } => {
                format!("response-within({task_path})")
            }
        }
    }
}

/// A detected requirement violation — a found bug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Time of the offending event.
    pub time_ns: u64,
    /// Name of the violated expectation.
    pub expectation: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} ns] {} violated: {}",
            self.time_ns, self.expectation, self.message
        )
    }
}

/// Runtime state of one expectation (sequence cursor etc.).
///
/// Serializable so checkpoints capture mid-sequence cursors and open
/// response-time windows — monitor state influences future violations,
/// so a restored session must resume it exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectationMonitor {
    spec: Expectation,
    cursor: usize,
    last_start_ns: Option<u64>,
}

impl ExpectationMonitor {
    /// Wraps an expectation for evaluation.
    pub fn new(spec: Expectation) -> Self {
        ExpectationMonitor {
            spec,
            cursor: 0,
            last_start_ns: None,
        }
    }

    /// The wrapped expectation.
    pub fn spec(&self) -> &Expectation {
        &self.spec
    }

    /// Evaluates one event; returns a violation if the requirement broke.
    pub fn check(&mut self, event: &ModelEvent) -> Option<Violation> {
        match &self.spec {
            Expectation::AllowedTransitions { fsm_path, allowed } => {
                if event.kind != EventKind::StateEnter || event.path != *fsm_path {
                    return None;
                }
                let (Some(from), Some(to)) = (&event.from, &event.to) else {
                    return None;
                };
                if allowed.contains(&(from.clone(), to.clone())) {
                    None
                } else {
                    Some(Violation {
                        time_ns: event.time_ns,
                        expectation: self.spec.name(),
                        message: format!("transition {from} -> {to} is not in the model"),
                    })
                }
            }
            Expectation::StateSequence {
                fsm_path,
                sequence,
                cyclic,
            } => {
                if event.kind != EventKind::StateEnter || event.path != *fsm_path {
                    return None;
                }
                let Some(to) = &event.to else { return None };
                if sequence.is_empty() {
                    return None;
                }
                let expected = &sequence[self.cursor % sequence.len()];
                if to == expected {
                    self.cursor += 1;
                    if !cyclic && self.cursor >= sequence.len() {
                        self.cursor = sequence.len() - 1; // stay on last
                    }
                    None
                } else {
                    let v = Violation {
                        time_ns: event.time_ns,
                        expectation: self.spec.name(),
                        message: format!("entered `{to}`, requirements expect `{expected}`"),
                    };
                    // Resynchronize on the observed state if it appears in
                    // the sequence, so one slip doesn't cascade.
                    if let Some(pos) = sequence.iter().position(|s| s == to) {
                        self.cursor = pos + 1;
                    }
                    Some(v)
                }
            }
            Expectation::SignalRange {
                path_prefix,
                min,
                max,
            } => {
                if event.kind != EventKind::SignalWrite && event.kind != EventKind::WatchChange {
                    return None;
                }
                if !event.path.starts_with(path_prefix.as_str()) {
                    return None;
                }
                let v = event.value?.as_f64();
                if v < *min || v > *max {
                    Some(Violation {
                        time_ns: event.time_ns,
                        expectation: self.spec.name(),
                        message: format!("value {v} outside [{min}, {max}]"),
                    })
                } else {
                    None
                }
            }
            Expectation::ResponseWithin { task_path, max_ns } => {
                if event.path != *task_path {
                    return None;
                }
                match event.kind {
                    EventKind::TaskStart => {
                        self.last_start_ns = Some(event.time_ns);
                        None
                    }
                    EventKind::TaskEnd => {
                        let start = self.last_start_ns.take()?;
                        let elapsed = event.time_ns.saturating_sub(start);
                        if elapsed > *max_ns {
                            Some(Violation {
                                time_ns: event.time_ns,
                                expectation: self.spec.name(),
                                message: format!(
                                    "activation took {elapsed} ns, limit is {max_ns} ns"
                                ),
                            })
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
        }
    }
}

/// Derives [`Expectation::AllowedTransitions`] monitors from an exported
/// input model: every object of `transition_class` contributes its
/// `(source, target)` state names, grouped by the owning machine's path.
///
/// For COMDES exports call it as
/// `allowed_transitions(&model, "Transition", "source", "target", skip)`
/// where `skip` trims leading path segments the runtime does not report
/// (the COMDES export prefixes `system/node/`, while events start at the
/// actor).
pub fn allowed_transitions(
    model: &Model,
    transition_class: &str,
    source_ref: &str,
    target_ref: &str,
    skip_segments: usize,
) -> Vec<Expectation> {
    use std::collections::BTreeMap;
    let mut by_fsm: BTreeMap<String, BTreeSet<(String, String)>> = BTreeMap::new();
    for t in model.objects_of_class(transition_class) {
        let (Ok(Some(s)), Ok(Some(d))) =
            (model.ref_one(t, source_ref), model.ref_one(t, target_ref))
        else {
            continue;
        };
        let (Some(sn), Some(dn)) = (model.name_of(s), model.name_of(d)) else {
            continue;
        };
        // The machine owns the transition.
        let Some((fsm, _)) = model.object(t).ok().and_then(|o| o.container()) else {
            continue;
        };
        let Some(path) = ElementPath::of(model, fsm) else {
            continue;
        };
        let segs = path.segments();
        let trimmed = segs[skip_segments.min(segs.len().saturating_sub(1))..].join("/");
        by_fsm
            .entry(trimmed)
            .or_default()
            .insert((sn.to_owned(), dn.to_owned()));
    }
    by_fsm
        .into_iter()
        .map(|(fsm_path, allowed)| Expectation::AllowedTransitions { fsm_path, allowed })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_gdm::EventValue;

    fn enter(t: u64, path: &str, from: &str, to: &str) -> ModelEvent {
        ModelEvent::new(t, EventKind::StateEnter, path)
            .with_from(from)
            .with_to(to)
    }

    #[test]
    fn allowed_transitions_flags_unknown_pairs() {
        let mut m = ExpectationMonitor::new(Expectation::AllowedTransitions {
            fsm_path: "A/fsm".into(),
            allowed: [("Idle".to_owned(), "Run".to_owned())]
                .into_iter()
                .collect(),
        });
        assert!(m.check(&enter(1, "A/fsm", "Idle", "Run")).is_none());
        let v = m.check(&enter(2, "A/fsm", "Run", "Idle")).unwrap();
        assert!(v.message.contains("Run -> Idle"));
        // Other machines are ignored.
        assert!(m.check(&enter(3, "B/fsm", "X", "Y")).is_none());
    }

    #[test]
    fn state_sequence_cyclic() {
        let mut m = ExpectationMonitor::new(Expectation::StateSequence {
            fsm_path: "L/ctl".into(),
            sequence: vec!["Green".into(), "Yellow".into(), "Red".into()],
            cyclic: true,
        });
        for (i, s) in ["Green", "Yellow", "Red", "Green", "Yellow"]
            .iter()
            .enumerate()
        {
            assert!(m.check(&enter(i as u64, "L/ctl", "", s)).is_none(), "{s}");
        }
        // Skipping Yellow is the classic traffic-light design error.
        let v = m.check(&enter(9, "L/ctl", "Red", "Green")).unwrap();
        assert!(v.message.contains("expect `Red`"));
    }

    #[test]
    fn state_sequence_resynchronizes_after_violation() {
        let mut m = ExpectationMonitor::new(Expectation::StateSequence {
            fsm_path: "p".into(),
            sequence: vec!["A".into(), "B".into(), "C".into()],
            cyclic: true,
        });
        assert!(m.check(&enter(0, "p", "", "A")).is_none());
        assert!(m.check(&enter(1, "p", "", "C")).is_some()); // skipped B
                                                             // Cursor resynced after C → next expected is A.
        assert!(m.check(&enter(2, "p", "", "A")).is_none());
    }

    #[test]
    fn signal_range_checks_values() {
        let mut m = ExpectationMonitor::new(Expectation::SignalRange {
            path_prefix: "A/out".into(),
            min: -1.0,
            max: 1.0,
        });
        let ok =
            ModelEvent::new(0, EventKind::SignalWrite, "A/out/u").with_value(EventValue::Real(0.5));
        assert!(m.check(&ok).is_none());
        let bad =
            ModelEvent::new(1, EventKind::SignalWrite, "A/out/u").with_value(EventValue::Real(3.0));
        let v = m.check(&bad).unwrap();
        assert!(v.message.contains("outside"));
        // Foreign paths ignored.
        let other =
            ModelEvent::new(2, EventKind::SignalWrite, "B/out/u").with_value(EventValue::Real(9.0));
        assert!(m.check(&other).is_none());
    }

    #[test]
    fn response_within_tracks_start_end_pairs() {
        let mut m = ExpectationMonitor::new(Expectation::ResponseWithin {
            task_path: "A".into(),
            max_ns: 100,
        });
        let start = |t| ModelEvent::new(t, EventKind::TaskStart, "A");
        let end = |t| ModelEvent::new(t, EventKind::TaskEnd, "A");
        assert!(m.check(&start(0)).is_none());
        assert!(m.check(&end(80)).is_none()); // within budget
        assert!(m.check(&start(1000)).is_none());
        let v = m.check(&end(1200)).unwrap();
        assert!(v.message.contains("200 ns"));
        // End without a start is ignored (lost frame tolerance).
        assert!(m.check(&end(1300)).is_none());
        // Other tasks ignored.
        assert!(m
            .check(&ModelEvent::new(2, EventKind::TaskEnd, "B"))
            .is_none());
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            time_ns: 5,
            expectation: "x".into(),
            message: "boom".into(),
        };
        assert_eq!(v.to_string(), "[5 ns] x violated: boom");
    }

    #[test]
    fn derive_allowed_transitions_from_model() {
        use gmdf_metamodel::{DataType, MetamodelBuilder};
        use std::sync::Arc;
        let mut b = MetamodelBuilder::new("fsm");
        b.class("Machine")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .containment_many("states", "State")
            .unwrap()
            .containment_many("transitions", "Transition")
            .unwrap();
        b.class("State")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap();
        b.class("Transition")
            .unwrap()
            .cross_required("source", "State")
            .unwrap()
            .cross_required("target", "State")
            .unwrap();
        let mm = Arc::new(b.build().unwrap());
        let mut model = gmdf_metamodel::Model::new(mm);
        let mach = model.create("Machine").unwrap();
        model.set_attr(mach, "name", "ctl".into()).unwrap();
        let a = model.create("State").unwrap();
        model.set_attr(a, "name", "A".into()).unwrap();
        let c = model.create("State").unwrap();
        model.set_attr(c, "name", "B".into()).unwrap();
        model.add_child(mach, "states", a).unwrap();
        model.add_child(mach, "states", c).unwrap();
        let t = model.create("Transition").unwrap();
        model.add_ref(t, "source", a).unwrap();
        model.add_ref(t, "target", c).unwrap();
        model.add_child(mach, "transitions", t).unwrap();

        let exps = allowed_transitions(&model, "Transition", "source", "target", 0);
        assert_eq!(exps.len(), 1);
        let Expectation::AllowedTransitions { fsm_path, allowed } = &exps[0] else {
            panic!("wrong kind");
        };
        assert_eq!(fsm_path, "ctl");
        assert!(allowed.contains(&("A".to_owned(), "B".to_owned())));
    }
}
