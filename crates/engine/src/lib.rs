//! # gmdf-engine — the GMDF runtime engine
//!
//! "A runtime engine first takes a debug model as input and displays it
//! graphically … waits for commands sent by the target embedded code"
//! (paper §II). This crate provides:
//!
//! * [`DebuggerEngine`] — the event-driven machine: reactions, model-level
//!   breakpoints, step-wise execution;
//! * [`ExecutionTrace`] — the always-on execution record, over a
//!   pluggable [`TraceStore`] backend ([`MemStore`] by default, the
//!   segmented on-disk [`SegmentStore`] for traces that outlive the
//!   process — see [`store`]);
//! * [`Replayer`] / [`timing_diagram`] — the replay function with its
//!   timing diagram;
//! * [`Expectation`] monitors — requirement checks that turn inconsistent
//!   behaviour into found bugs;
//! * [`classify`] — the design-vs-implementation error differentiation the
//!   paper lists as future work, implemented here against the reference
//!   interpreter's event stream.
//!
//! ```
//! use gmdf_engine::DebuggerEngine;
//! use gmdf_gdm::{default_bindings, DebuggerModel, EventKind, GdmElement, GdmPattern,
//!                ModelEvent};
//! use gmdf_render::Rect;
//!
//! let mut gdm = DebuggerModel::new("demo");
//! gdm.bindings = default_bindings();
//! gdm.elements.push(GdmElement {
//!     path: "A/fsm/Run".into(),
//!     label: "Run".into(),
//!     metaclass: "State".into(),
//!     pattern: GdmPattern::Circle,
//!     parent: None,
//!     bounds: Rect::new(0.0, 0.0, 110.0, 46.0),
//! });
//! let mut engine = DebuggerEngine::new(gdm);
//! engine.feed(ModelEvent::new(10, EventKind::StateEnter, "A/fsm").with_to("Run"));
//! assert!(engine.visual()["A/fsm/Run"].highlighted);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod classify;
mod engine;
mod expect;
pub mod metrics;
mod replay;
pub mod store;
mod trace;

pub use classify::{classify, compare_behavior, BugClass, Divergence};
pub use engine::{
    apply_reaction, Breakpoint, DebuggerEngine, EngineCheckpoint, EngineNotice, EngineState,
    EngineStats, FeedOutcome,
};
pub use expect::{allowed_transitions, Expectation, ExpectationMonitor, Violation};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, RecentSeries, StoreMetrics};
pub use replay::{timing_diagram, Replayer};
pub use store::{
    CheckpointMeta, CheckpointStore, Codec, MaintenanceReport, MemStore, OffsetMemStore, Retention,
    SegmentConfig, SegmentStore, StoreError, StoreStats, TraceStore,
};
pub use trace::{ExecutionTrace, TraceEntry};
